//! Batch maintenance: applying *streams* of updates to a canonical NFR.
//!
//! §4 gives per-tuple insertion and deletion. Real workloads arrive in
//! batches, and the interesting engineering question the paper leaves
//! open is when incremental maintenance (one `recons` cascade per
//! operation) beats re-nesting from scratch (one `ν_P` over the updated
//! `R*`). This module provides both paths with identical semantics —
//! property-tested against each other — plus the delete+insert `modify`
//! the paper's Fig. 2 scenario performs, and a crossover heuristic the
//! E10 experiment calibrates.

use crate::error::Result;
use crate::kernel::NestKernel;
use crate::maintenance::{CanonicalRelation, CostCounter};
use crate::relation::FlatRelation;
use crate::tuple::FlatTuple;

/// One flat-row mutation in an update stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Insert a flat tuple (no-op if present).
    Insert(FlatTuple),
    /// Delete a flat tuple (no-op if absent).
    Delete(FlatTuple),
}

impl Op {
    /// The affected row.
    pub fn row(&self) -> &FlatTuple {
        match self {
            Op::Insert(r) | Op::Delete(r) => r,
        }
    }
}

/// Counts of effective operations in a batch.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BatchSummary {
    /// Inserts that added a new row.
    pub inserted: usize,
    /// Deletes that removed an existing row.
    pub deleted: usize,
    /// Operations that were no-ops (duplicate insert / absent delete).
    pub noops: usize,
}

/// Applies `ops` in order through §4 incremental maintenance,
/// accumulating structural costs into `cost`.
pub fn apply_batch(
    canon: &mut CanonicalRelation,
    ops: &[Op],
    cost: &mut CostCounter,
) -> Result<BatchSummary> {
    let mut summary = BatchSummary::default();
    for op in ops {
        let effective = match op {
            Op::Insert(row) => {
                let hit = canon.insert_counted(row.clone(), cost)?;
                if hit {
                    summary.inserted += 1;
                }
                hit
            }
            Op::Delete(row) => {
                let hit = canon.delete_counted(row, cost)?;
                if hit {
                    summary.deleted += 1;
                }
                hit
            }
        };
        if !effective {
            summary.noops += 1;
        }
    }
    Ok(summary)
}

/// The re-nest baseline: applies `ops` to `R*` and rebuilds the
/// canonical form from scratch through the single-pass nest kernel.
/// Semantically identical to [`apply_batch`] (ops are order-sensitive
/// only through set semantics, which `FlatRelation` reproduces exactly).
pub fn rebuild_batch(canon: &CanonicalRelation, ops: &[Op]) -> Result<CanonicalRelation> {
    rebuild_batch_with(&mut NestKernel::new(), canon, ops)
}

/// [`rebuild_batch`] reusing a caller-provided kernel across calls.
pub fn rebuild_batch_with(
    kernel: &mut NestKernel,
    canon: &CanonicalRelation,
    ops: &[Op],
) -> Result<CanonicalRelation> {
    let mut flat: FlatRelation = canon.relation().expand();
    for op in ops {
        match op {
            Op::Insert(row) => {
                flat.insert(row.clone())?;
            }
            Op::Delete(row) => {
                flat.remove(row);
            }
        }
    }
    CanonicalRelation::from_flat_with(kernel, &flat, canon.order().clone())
}

/// Whether a batch of `ops_len` operations against a relation of
/// `flat_count` rows should rebuild rather than maintain incrementally.
///
/// Incremental cost is `O(ops · f(n))` (Theorem A-4: independent of the
/// relation size but with a candidate-search scan per recons); the
/// rebuild costs one expansion plus one `ν_P` over `flat_count ± ops`
/// rows. The breakeven is workload-dependent; the default threshold
/// (batch ≥ half the relation) is calibrated by experiment E10 and is
/// deliberately conservative — incremental wins on everything smaller.
pub fn should_rebuild(ops_len: usize, flat_count: u128) -> bool {
    ops_len as u128 * 2 >= flat_count.max(1)
}

/// Applies a batch by whichever strategy [`should_rebuild`] selects.
/// Returns the summary and whether the rebuild path ran.
pub fn apply_batch_auto(
    canon: &mut CanonicalRelation,
    ops: &[Op],
    cost: &mut CostCounter,
) -> Result<(BatchSummary, bool)> {
    apply_batch_auto_with(&mut NestKernel::new(), canon, ops, cost)
}

/// [`apply_batch_auto`] reusing a caller-provided kernel, so a stream of
/// batches (the E16 ingest workload, `NfTable::append_batch` in
/// `nf2-storage`) pays the rebuild arm's sort/intern allocations once.
pub fn apply_batch_auto_with(
    kernel: &mut NestKernel,
    canon: &mut CanonicalRelation,
    ops: &[Op],
    cost: &mut CostCounter,
) -> Result<(BatchSummary, bool)> {
    if should_rebuild(ops.len(), canon.flat_count()) {
        // Compute effect counts against the pre-state for an honest
        // summary, then swap in the rebuilt relation.
        let mut summary = BatchSummary::default();
        let mut flat = canon.relation().expand();
        for op in ops {
            match op {
                Op::Insert(row) => {
                    if flat.insert(row.clone())? {
                        summary.inserted += 1;
                    } else {
                        summary.noops += 1;
                    }
                }
                Op::Delete(row) => {
                    if flat.remove(row) {
                        summary.deleted += 1;
                    } else {
                        summary.noops += 1;
                    }
                }
            }
        }
        *canon = CanonicalRelation::from_flat_with(kernel, &flat, canon.order().clone())?;
        Ok((summary, true))
    } else {
        apply_batch(canon, ops, cost).map(|s| (s, false))
    }
}

/// Replays a long operation stream in adaptive batches through
/// [`apply_batch_auto_with`]: each batch grows with the relation
/// (`max(min_batch, |R*|)`, with the tail merged into the last batch), so
/// on insert-heavy streams every batch stays at or above the
/// [`should_rebuild`] threshold and the auto strategy keeps choosing the
/// kernel rebuild. The batching policy behind the E16 ingest experiment
/// and its benchmark. Returns `(batches, rebuild_batches)`.
pub fn replay_adaptive_with(
    kernel: &mut NestKernel,
    canon: &mut CanonicalRelation,
    stream: &[Op],
    min_batch: usize,
    cost: &mut CostCounter,
) -> Result<(usize, usize)> {
    let min_batch = min_batch.max(1);
    let (mut batches, mut rebuilds) = (0usize, 0usize);
    let mut pos = 0usize;
    while pos < stream.len() {
        let flat = canon.flat_count().min(usize::MAX as u128) as usize;
        let target = flat.max(min_batch);
        let remaining = stream.len() - pos;
        let take = if remaining < 2 * target {
            remaining
        } else {
            target
        };
        let (_, rebuilt) = apply_batch_auto_with(kernel, canon, &stream[pos..pos + take], cost)?;
        batches += 1;
        rebuilds += usize::from(rebuilt);
        pos += take;
    }
    Ok((batches, rebuilds))
}

/// Rewrites one flat row (the paper's Fig. 2 "student stops taking a
/// course" scenario is a delete; a correction is delete + insert).
///
/// Returns `false` (and leaves the relation untouched) when `old` is
/// absent. When `new` already exists, the net effect is just the delete
/// — set semantics absorb the insert.
pub fn modify(
    canon: &mut CanonicalRelation,
    old: &[crate::value::Atom],
    new: FlatTuple,
    cost: &mut CostCounter,
) -> Result<bool> {
    if !canon.contains(old) {
        return Ok(false);
    }
    canon.delete_counted(old, cost)?;
    canon.insert_counted(new, cost)?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{NestOrder, Schema};
    use crate::value::Atom;
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::new("R", &["A", "B"]).unwrap()
    }

    fn row(vals: &[u32]) -> FlatTuple {
        vals.iter().map(|&v| Atom(v)).collect()
    }

    fn seeded() -> CanonicalRelation {
        let flat = FlatRelation::from_rows(
            schema(),
            [&[1u32, 11], &[2, 11], &[2, 12], &[3, 12]]
                .iter()
                .map(|r| row(*r)),
        )
        .unwrap();
        CanonicalRelation::from_flat(&flat, NestOrder::identity(2)).unwrap()
    }

    fn mixed_ops() -> Vec<Op> {
        vec![
            Op::Insert(row(&[4, 11])),
            Op::Delete(row(&[2, 12])),
            Op::Insert(row(&[1, 11])), // duplicate: no-op
            Op::Delete(row(&[9, 99])), // absent: no-op
            Op::Insert(row(&[4, 12])),
        ]
    }

    #[test]
    fn batch_counts_effective_operations() {
        let mut canon = seeded();
        let mut cost = CostCounter::new();
        let summary = apply_batch(&mut canon, &mixed_ops(), &mut cost).unwrap();
        assert_eq!(
            summary,
            BatchSummary {
                inserted: 2,
                deleted: 1,
                noops: 2
            }
        );
        assert_eq!(canon.flat_count(), 5);
        canon.verify().unwrap();
        assert!(cost.recons_calls > 0);
    }

    #[test]
    fn batch_equals_rebuild() {
        let base = seeded();
        let mut incremental = base.clone();
        let mut cost = CostCounter::new();
        apply_batch(&mut incremental, &mixed_ops(), &mut cost).unwrap();
        let rebuilt = rebuild_batch(&base, &mixed_ops()).unwrap();
        assert_eq!(incremental.relation(), rebuilt.relation());
    }

    #[test]
    fn batch_equals_rebuild_for_all_orders() {
        for order in NestOrder::all(2) {
            let flat = FlatRelation::from_rows(
                schema(),
                [&[1u32, 11], &[2, 11], &[2, 12]].iter().map(|r| row(*r)),
            )
            .unwrap();
            let base = CanonicalRelation::from_flat(&flat, order).unwrap();
            let mut inc = base.clone();
            let mut cost = CostCounter::new();
            apply_batch(&mut inc, &mixed_ops(), &mut cost).unwrap();
            let rebuilt = rebuild_batch(&base, &mixed_ops()).unwrap();
            assert_eq!(inc.relation(), rebuilt.relation());
            inc.verify().unwrap();
        }
    }

    #[test]
    fn insert_then_delete_of_same_row_cancels() {
        let mut canon = seeded();
        let before = canon.relation().clone();
        let ops = vec![Op::Insert(row(&[7, 70])), Op::Delete(row(&[7, 70]))];
        let mut cost = CostCounter::new();
        let summary = apply_batch(&mut canon, &ops, &mut cost).unwrap();
        assert_eq!(summary.inserted, 1);
        assert_eq!(summary.deleted, 1);
        assert_eq!(canon.relation(), &before);
    }

    #[test]
    fn auto_strategy_picks_rebuild_for_large_batches() {
        let mut canon = seeded(); // 4 rows
        let ops: Vec<Op> = (0..8).map(|i| Op::Insert(row(&[10 + i, 30]))).collect();
        let mut cost = CostCounter::new();
        let (summary, rebuilt) = apply_batch_auto(&mut canon, &ops, &mut cost).unwrap();
        assert!(rebuilt, "8 ops vs 4 rows must rebuild");
        assert_eq!(summary.inserted, 8);
        canon.verify().unwrap();
    }

    #[test]
    fn auto_strategy_picks_incremental_for_small_batches() {
        let mut canon = seeded();
        let ops = vec![Op::Insert(row(&[9, 11]))];
        let mut cost = CostCounter::new();
        let (summary, rebuilt) = apply_batch_auto(&mut canon, &ops, &mut cost).unwrap();
        assert!(!rebuilt);
        assert_eq!(summary.inserted, 1);
        assert!(cost.recons_calls >= 1, "incremental path was exercised");
    }

    #[test]
    fn auto_rebuild_summary_matches_incremental_summary() {
        let base = seeded();
        let ops = mixed_ops();
        let mut a = base.clone();
        let mut cost = CostCounter::new();
        let incremental = apply_batch(&mut a, &ops, &mut cost).unwrap();
        let mut b = base.clone();
        // Force the rebuild path by repeating the batch until the
        // threshold trips; the second cycle is pure no-ops.
        let big: Vec<Op> = ops.iter().cloned().cycle().take(10).collect();
        let (via_rebuild, rebuilt) = apply_batch_auto(&mut b, &big, &mut cost).unwrap();
        assert!(rebuilt);
        assert_eq!(via_rebuild.inserted, incremental.inserted);
        assert_eq!(via_rebuild.deleted, incremental.deleted);
        assert_eq!(via_rebuild.noops, incremental.noops + ops.len());
        assert_eq!(a.relation(), b.relation());
    }

    #[test]
    fn modify_rewrites_one_row() {
        let mut canon = seeded();
        let mut cost = CostCounter::new();
        assert!(modify(&mut canon, &row(&[1, 11]), row(&[1, 13]), &mut cost).unwrap());
        assert!(!canon.contains(&row(&[1, 11])));
        assert!(canon.contains(&row(&[1, 13])));
        assert_eq!(canon.flat_count(), 4);
        canon.verify().unwrap();
    }

    #[test]
    fn modify_of_absent_row_is_untouched_noop() {
        let mut canon = seeded();
        let before = canon.relation().clone();
        let mut cost = CostCounter::new();
        assert!(!modify(&mut canon, &row(&[9, 99]), row(&[1, 13]), &mut cost).unwrap());
        assert_eq!(canon.relation(), &before);
    }

    #[test]
    fn modify_onto_existing_row_collapses() {
        let mut canon = seeded();
        let mut cost = CostCounter::new();
        // (2,12) → (2,11), which already exists: net row count drops.
        assert!(modify(&mut canon, &row(&[2, 12]), row(&[2, 11]), &mut cost).unwrap());
        assert_eq!(canon.flat_count(), 3);
        canon.verify().unwrap();
    }

    #[test]
    fn replay_adaptive_rebuilds_on_insert_streams() {
        use crate::kernel::NestKernel;
        let rows: Vec<FlatTuple> = (0..40u32).map(|i| row(&[i % 8, 10 + i % 5])).collect();
        let flat = FlatRelation::from_rows(schema(), rows.clone()).unwrap();
        let stream: Vec<Op> = flat.rows().cloned().map(Op::Insert).collect();
        let mut canon =
            CanonicalRelation::new(flat.schema().clone(), NestOrder::identity(2)).unwrap();
        let mut kernel = NestKernel::new();
        let mut cost = CostCounter::new();
        let (batches, rebuilds) =
            replay_adaptive_with(&mut kernel, &mut canon, &stream, 4, &mut cost).unwrap();
        assert!(batches >= 2, "the stream splits into several batches");
        assert_eq!(
            batches, rebuilds,
            "pure inserts always trip the rebuild arm"
        );
        assert_eq!(
            canon,
            CanonicalRelation::from_flat(&flat, NestOrder::identity(2)).unwrap()
        );
    }

    #[test]
    fn should_rebuild_threshold() {
        assert!(should_rebuild(50, 100));
        assert!(!should_rebuild(49, 100));
        assert!(should_rebuild(1, 0), "empty relation: rebuild is free");
    }

    /// Deterministic randomized agreement between the two strategies on
    /// longer op streams (the proptest suite widens this further).
    #[test]
    fn random_streams_agree_across_strategies() {
        let mut state = 0xfeedu64;
        let mut ops = Vec::new();
        for _ in 0..120 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let r = row(&[(state >> 16) as u32 % 6, 10 + (state >> 40) as u32 % 5]);
            if state.is_multiple_of(3) {
                ops.push(Op::Delete(r));
            } else {
                ops.push(Op::Insert(r));
            }
        }
        let base = seeded();
        let mut inc = base.clone();
        let mut cost = CostCounter::new();
        apply_batch(&mut inc, &ops, &mut cost).unwrap();
        let rebuilt = rebuild_batch(&base, &ops).unwrap();
        assert_eq!(inc.relation(), rebuilt.relation());
        assert_eq!(ops[0].row(), ops[0].row());
    }
}
