//! Error type shared by all `nf2-core` operations.

use std::fmt;

/// Errors raised by NF² model operations.
///
/// The model is strict: every constructor validates its inputs so that the
/// partition invariant (DESIGN.md D1) can never be silently violated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NfError {
    /// A tuple had a different number of components than its schema.
    ArityMismatch { expected: usize, got: usize },
    /// A value set was empty. Every component of an NF² tuple must carry at
    /// least one atomic value (Def. 1 operates on non-empty sets).
    EmptyValueSet { attr: usize },
    /// Two relations (or a relation and a tuple) had incompatible schemas.
    SchemaMismatch { left: String, right: String },
    /// An attribute name was not found in the schema.
    UnknownAttribute(String),
    /// An attribute index was out of bounds for the schema.
    AttrOutOfBounds { attr: usize, arity: usize },
    /// Two tuples could not be composed over the requested attribute
    /// because they disagree on some other attribute (Def. 1).
    NotComposable { attr: usize },
    /// A decomposition was requested for a value absent from the component
    /// (Def. 2 requires `ex` to be a member of the `Ed` component).
    ValueNotInComponent { attr: usize },
    /// The relation would contain two tuples whose expansions overlap,
    /// violating the partition invariant (DESIGN.md D1).
    OverlappingTuples,
    /// The flat tuple already exists in the relation (`R*` is a set).
    DuplicateFlatTuple,
    /// The flat tuple was not found in the relation.
    FlatTupleNotFound,
    /// A permutation/nest order did not cover the schema exactly once.
    InvalidNestOrder(String),
    /// A shard specification was malformed, or a sharded relation's
    /// routing invariant was found violated.
    InvalidShardSpec(String),
}

impl fmt::Display for NfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NfError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "arity mismatch: schema has {expected} attributes, tuple has {got}"
                )
            }
            NfError::EmptyValueSet { attr } => {
                write!(f, "empty value set for attribute #{attr}")
            }
            NfError::SchemaMismatch { left, right } => {
                write!(f, "schema mismatch: {left} vs {right}")
            }
            NfError::UnknownAttribute(name) => write!(f, "unknown attribute: {name}"),
            NfError::AttrOutOfBounds { attr, arity } => {
                write!(f, "attribute index {attr} out of bounds for arity {arity}")
            }
            NfError::NotComposable { attr } => {
                write!(f, "tuples are not composable over attribute #{attr}")
            }
            NfError::ValueNotInComponent { attr } => {
                write!(f, "value not present in component of attribute #{attr}")
            }
            NfError::OverlappingTuples => {
                write!(
                    f,
                    "tuple expansions overlap: relation is not a partition of R*"
                )
            }
            NfError::DuplicateFlatTuple => write!(f, "flat tuple already present in R*"),
            NfError::FlatTupleNotFound => write!(f, "flat tuple not found in R*"),
            NfError::InvalidNestOrder(msg) => write!(f, "invalid nest order: {msg}"),
            NfError::InvalidShardSpec(msg) => write!(f, "invalid shard spec: {msg}"),
        }
    }
}

impl std::error::Error for NfError {}

/// Convenience alias used throughout the workspace.
pub type Result<T, E = NfError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(NfError, &str)> = vec![
            (
                NfError::ArityMismatch {
                    expected: 3,
                    got: 2,
                },
                "arity mismatch",
            ),
            (NfError::EmptyValueSet { attr: 1 }, "empty value set"),
            (
                NfError::SchemaMismatch {
                    left: "R".into(),
                    right: "S".into(),
                },
                "schema mismatch",
            ),
            (NfError::UnknownAttribute("X".into()), "unknown attribute"),
            (
                NfError::AttrOutOfBounds { attr: 9, arity: 3 },
                "out of bounds",
            ),
            (NfError::NotComposable { attr: 0 }, "not composable"),
            (NfError::ValueNotInComponent { attr: 0 }, "not present"),
            (NfError::OverlappingTuples, "overlap"),
            (NfError::DuplicateFlatTuple, "already present"),
            (NfError::FlatTupleNotFound, "not found"),
            (NfError::InvalidNestOrder("dup".into()), "nest order"),
            (NfError::InvalidShardSpec("zero".into()), "shard spec"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&NfError::OverlappingTuples);
    }
}
