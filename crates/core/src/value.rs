//! Atomic values and the interning dictionary.
//!
//! The paper defines NFRs over *simple domains* — sets of atomic elements
//! (§3.1). We represent an atomic element as an [`Atom`]: a dense `u32`
//! identifier interned through a [`Dictionary`]. All set operations in the
//! model then work on integers; human-readable names only matter at the
//! presentation boundary.

use std::collections::HashMap;
use std::fmt;

/// An interned atomic value (an element of a simple domain).
///
/// `Atom`s are plain identifiers: equality and ordering are on the id, which
/// matches the paper's treatment of domain elements as opaque symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Atom(pub u32);

impl Atom {
    /// The raw identifier.
    #[inline]
    pub fn id(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// A bidirectional mapping between strings and [`Atom`]s.
///
/// Interning is append-only; an atom, once issued, never changes meaning.
/// This is the single-threaded dictionary used by the core model and the
/// examples; `nf2-storage` wraps it in a lock for concurrent use.
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    names: Vec<String>,
    index: HashMap<String, Atom>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its atom. Idempotent.
    pub fn intern(&mut self, name: &str) -> Atom {
        if let Some(&atom) = self.index.get(name) {
            return atom;
        }
        let atom = Atom(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), atom);
        atom
    }

    /// Interns every name in `names`, preserving order.
    pub fn intern_all<'a, I>(&mut self, names: I) -> Vec<Atom>
    where
        I: IntoIterator<Item = &'a str>,
    {
        names.into_iter().map(|n| self.intern(n)).collect()
    }

    /// Looks up a previously interned name.
    pub fn lookup(&self, name: &str) -> Option<Atom> {
        self.index.get(name).copied()
    }

    /// Resolves an atom back to its name, if it was issued by this
    /// dictionary.
    pub fn resolve(&self, atom: Atom) -> Option<&str> {
        self.names.get(atom.0 as usize).map(String::as_str)
    }

    /// Resolves an atom, falling back to its numeric display form.
    pub fn resolve_or_id(&self, atom: Atom) -> String {
        match self.resolve(atom) {
            Some(name) => name.to_owned(),
            None => atom.to_string(),
        }
    }

    /// Number of interned values.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern("s1");
        let b = d.intern("s1");
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn intern_issues_dense_ids() {
        let mut d = Dictionary::new();
        let atoms = d.intern_all(["a", "b", "c"]);
        assert_eq!(atoms, vec![Atom(0), Atom(1), Atom(2)]);
    }

    #[test]
    fn resolve_round_trips() {
        let mut d = Dictionary::new();
        let a = d.intern("course-1");
        assert_eq!(d.resolve(a), Some("course-1"));
        assert_eq!(d.lookup("course-1"), Some(a));
        assert_eq!(d.lookup("missing"), None);
        assert_eq!(d.resolve(Atom(99)), None);
    }

    #[test]
    fn resolve_or_id_falls_back() {
        let d = Dictionary::new();
        assert_eq!(d.resolve_or_id(Atom(7)), "@7");
    }

    #[test]
    fn atom_ordering_is_by_id() {
        assert!(Atom(1) < Atom(2));
        assert_eq!(Atom(3).id(), 3);
    }
}
