//! Atomic values and the interning dictionary.
//!
//! The paper defines NFRs over *simple domains* — sets of atomic elements
//! (§3.1). We represent an atomic element as an [`Atom`]: a dense `u32`
//! identifier interned through a [`Dictionary`]. All set operations in the
//! model then work on integers; human-readable names only matter at the
//! presentation boundary.

use std::collections::HashMap;
use std::fmt;

/// An interned atomic value (an element of a simple domain).
///
/// `Atom`s are plain identifiers: equality and ordering are on the id, which
/// matches the paper's treatment of domain elements as opaque symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Atom(pub u32);

impl Atom {
    /// The raw identifier.
    #[inline]
    pub fn id(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// A bidirectional mapping between strings and [`Atom`]s.
///
/// Interning is append-only; an atom, once issued, never changes meaning.
/// This is the single-threaded dictionary used by the core model and the
/// examples; `nf2-storage` wraps it in a lock for concurrent use.
#[derive(Debug, Clone)]
pub struct Dictionary {
    names: Vec<String>,
    index: HashMap<String, Atom>,
    /// Maintained incrementally by [`intern`](Self::intern): `true`
    /// while every interned name compared strictly greater than its
    /// predecessor, i.e. atom-id order coincides with lexicographic
    /// string order.
    id_ordered: bool,
}

impl Default for Dictionary {
    fn default() -> Self {
        Dictionary {
            names: Vec::new(),
            index: HashMap::new(),
            id_ordered: true,
        }
    }
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its atom. Idempotent.
    pub fn intern(&mut self, name: &str) -> Atom {
        if let Some(&atom) = self.index.get(name) {
            return atom;
        }
        if self.names.last().is_some_and(|last| name < last.as_str()) {
            self.id_ordered = false;
        }
        let atom = Atom(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), atom);
        atom
    }

    /// Whether atom-id order agrees with lexicographic string order for
    /// every interned pair — true exactly when names were interned in
    /// strictly ascending order. While this holds, comparing atoms by
    /// their dense ids (the segment storage order) ranks values the
    /// same way the query layer's resolved-string comparator does,
    /// which is the soundness condition for serving `ORDER BY` straight
    /// off sorted segments. The flag only ever goes from `true` to
    /// `false`; interning is append-only.
    pub fn is_id_ordered(&self) -> bool {
        self.id_ordered
    }

    /// Interns every name in `names`, preserving order.
    pub fn intern_all<'a, I>(&mut self, names: I) -> Vec<Atom>
    where
        I: IntoIterator<Item = &'a str>,
    {
        names.into_iter().map(|n| self.intern(n)).collect()
    }

    /// Looks up a previously interned name.
    pub fn lookup(&self, name: &str) -> Option<Atom> {
        self.index.get(name).copied()
    }

    /// Resolves an atom back to its name, if it was issued by this
    /// dictionary.
    pub fn resolve(&self, atom: Atom) -> Option<&str> {
        self.names.get(atom.0 as usize).map(String::as_str)
    }

    /// Resolves an atom, falling back to its numeric display form.
    pub fn resolve_or_id(&self, atom: Atom) -> String {
        match self.resolve(atom) {
            Some(name) => name.to_owned(),
            None => atom.to_string(),
        }
    }

    /// Number of interned values.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern("s1");
        let b = d.intern("s1");
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn intern_issues_dense_ids() {
        let mut d = Dictionary::new();
        let atoms = d.intern_all(["a", "b", "c"]);
        assert_eq!(atoms, vec![Atom(0), Atom(1), Atom(2)]);
    }

    #[test]
    fn resolve_round_trips() {
        let mut d = Dictionary::new();
        let a = d.intern("course-1");
        assert_eq!(d.resolve(a), Some("course-1"));
        assert_eq!(d.lookup("course-1"), Some(a));
        assert_eq!(d.lookup("missing"), None);
        assert_eq!(d.resolve(Atom(99)), None);
    }

    #[test]
    fn resolve_or_id_falls_back() {
        let d = Dictionary::new();
        assert_eq!(d.resolve_or_id(Atom(7)), "@7");
    }

    #[test]
    fn atom_ordering_is_by_id() {
        assert!(Atom(1) < Atom(2));
        assert_eq!(Atom(3).id(), 3);
    }

    #[test]
    fn id_order_tracks_interning_order() {
        let mut d = Dictionary::new();
        assert!(
            d.is_id_ordered(),
            "empty dictionaries are trivially ordered"
        );
        d.intern_all(["a1", "a2", "b9"]);
        assert!(d.is_id_ordered());
        d.intern("a2"); // idempotent re-intern does not break order
        assert!(d.is_id_ordered());
        d.intern("a5"); // out of order: a5 < b9
        assert!(!d.is_id_ordered());
        d.intern("zz");
        assert!(!d.is_id_ordered(), "the flag never recovers");
    }
}
