//! Sorted immutable columnar segments over a shard's canonical tuples.
//!
//! The nest kernel already pays one global sort per rebuild
//! ([`NestKernel::canonical_of_flat`](crate::kernel::NestKernel)): with
//! the last-nested attribute `P(n−1)` outermost, the emitted NF² tuples
//! come out ordered by the componentwise-minimum representative
//! `(min P(n−1), min P(n−2), …, min P(0))` — stage-`j` grouping requires
//! set-equality on every earlier position, so the row carrying the
//! minimum outer value of a tuple spans the tuple's full inner sets.
//! Segments make that order *be* the storage order: each shard of a
//! [`ShardedCanonical`](crate::shard::ShardedCanonical) slices its
//! freshly rebuilt tuple vector into fixed-size immutable
//! [`Segment`]s, each carrying
//!
//! * **dictionary-coded columns** — components are stored as the
//!   [`Atom`] codes already interned through the shared dictionary, one
//!   offsets+values pair per non-outer attribute;
//! * **run-length encoding on the outer attribute** — consecutive
//!   tuples sharing the same `P(n−1)` set collapse into one run, which
//!   is exactly where the canonical form concentrates repetition;
//! * **zone-map metadata** — per-attribute min/max codes (over all set
//!   members) and the run count as a distinct-count estimate, so range
//!   and equality predicates can refute whole segments without probing
//!   a single tuple.
//!
//! Segments are immutable. §4 point maintenance mutates the tuple store
//! in place and merely marks the shard's segments *stale*
//! ([`ShardSegments::note_delta`]); the accumulated delta is absorbed
//! the next time a batch rebuild re-nests the shard, which re-emits
//! segments from the kernel's sorted output at no extra sorting cost.
//! Consumers (ordered scans, zone-map skipping) must check
//! [`ShardSegments::is_fresh`] and fall back to the plain tuple scan
//! when the delta has broken the sorted order.

use crate::tuple::{NfTuple, ValueSet};
use crate::value::Atom;

/// Default number of canonical NF² tuples per segment. Small enough
/// that skipping a segment saves real work at E-scale row counts, large
/// enough that per-segment metadata stays negligible.
pub const DEFAULT_SEGMENT_ROWS: usize = 512;

/// A dictionary-coded column for one (non-outer) attribute: the sets of
/// `rows` consecutive tuples, stored as one concatenated atom vector
/// with row offsets. Offsets are `u32`: a segment holds at most
/// [`DEFAULT_SEGMENT_ROWS`] tuples, far below the offset range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrColumn {
    /// `rows + 1` offsets into `values`; row `i` owns
    /// `values[offsets[i]..offsets[i+1]]`.
    offsets: Vec<u32>,
    /// Concatenated set members, each row's slice strictly ascending.
    values: Vec<Atom>,
}

impl AttrColumn {
    fn encode(tuples: &[NfTuple], attr: usize) -> Self {
        let mut offsets = Vec::with_capacity(tuples.len() + 1);
        let mut values = Vec::new();
        offsets.push(0u32);
        for t in tuples {
            values.extend_from_slice(t.component(attr).as_slice());
            offsets.push(values.len() as u32);
        }
        AttrColumn { offsets, values }
    }

    /// Number of rows encoded.
    pub fn rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The set slice of one row (sorted ascending).
    pub fn set(&self, row: usize) -> &[Atom] {
        &self.values[self.offsets[row] as usize..self.offsets[row + 1] as usize]
    }

    /// Total atoms stored.
    pub fn atom_count(&self) -> usize {
        self.values.len()
    }
}

/// The run-length-encoded outer column: consecutive tuples whose
/// `P(n−1)` sets are identical share one stored copy of the set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RleColumn {
    /// Tuples per run.
    run_lens: Vec<u32>,
    /// `runs + 1` offsets into `values`; run `r` owns
    /// `values[offsets[r]..offsets[r+1]]`.
    offsets: Vec<u32>,
    /// Concatenated run sets, each strictly ascending.
    values: Vec<Atom>,
}

impl RleColumn {
    fn encode(tuples: &[NfTuple], attr: usize) -> Self {
        let mut run_lens: Vec<u32> = Vec::new();
        let mut offsets = vec![0u32];
        let mut values: Vec<Atom> = Vec::new();
        for t in tuples {
            let set = t.component(attr).as_slice();
            let prev = offsets
                .len()
                .checked_sub(2)
                .map(|r| &values[offsets[r] as usize..offsets[r + 1] as usize]);
            if prev == Some(set) {
                let last = run_lens
                    .last_mut()
                    .expect("a previous run exists whenever prev matched");
                *last += 1;
            } else {
                values.extend_from_slice(set);
                offsets.push(values.len() as u32);
                run_lens.push(1);
            }
        }
        RleColumn {
            run_lens,
            offsets,
            values,
        }
    }

    /// Number of runs (= distinct consecutive outer sets).
    pub fn runs(&self) -> usize {
        self.run_lens.len()
    }

    /// Tuples in run `r`.
    pub fn run_len(&self, r: usize) -> usize {
        self.run_lens[r] as usize
    }

    /// The shared set slice of run `r` (sorted ascending).
    pub fn run_set(&self, r: usize) -> &[Atom] {
        &self.values[self.offsets[r] as usize..self.offsets[r + 1] as usize]
    }

    /// Total rows across runs.
    pub fn rows(&self) -> usize {
        self.run_lens.iter().map(|&l| l as usize).sum()
    }

    /// Atoms stored after run-length collapsing.
    pub fn atom_count(&self) -> usize {
        self.values.len()
    }
}

/// One sorted immutable columnar segment: a contiguous slice
/// `[start, start + rows)` of a shard's canonical tuple vector, stored
/// column-wise with zone-map metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    start: usize,
    rows: usize,
    outer_attr: usize,
    /// Per-attribute minimum atom code over all set members of all rows.
    mins: Vec<Atom>,
    /// Per-attribute maximum atom code over all set members of all rows.
    maxs: Vec<Atom>,
    /// One dictionary-coded column per attribute; `None` at
    /// `outer_attr`, whose data lives in `outer`.
    columns: Vec<Option<AttrColumn>>,
    /// The run-length-encoded outer (`P(n−1)`) column.
    outer: RleColumn,
}

impl Segment {
    /// Encodes `tuples` (non-empty, all of the same arity ≥ 1) as a
    /// segment beginning at tuple index `start` of its shard. The
    /// caller guarantees the slice comes from a kernel rebuild, i.e. is
    /// in canonical sorted order; encoding itself never re-sorts.
    pub fn encode(tuples: &[NfTuple], start: usize, outer_attr: usize) -> Self {
        debug_assert!(!tuples.is_empty(), "segments hold at least one tuple");
        let arity = tuples[0].arity();
        debug_assert!(outer_attr < arity, "outer attribute must be in-schema");
        let mut mins = vec![Atom(u32::MAX); arity];
        let mut maxs = vec![Atom(0); arity];
        for t in tuples {
            for (a, comp) in t.components().iter().enumerate() {
                let s = comp.as_slice();
                // invariant: ValueSet slices are non-empty and sorted
                let lo = *s.first().expect("value sets are non-empty");
                let hi = *s.last().expect("value sets are non-empty");
                if lo < mins[a] {
                    mins[a] = lo;
                }
                if hi > maxs[a] {
                    maxs[a] = hi;
                }
            }
        }
        let columns = (0..arity)
            .map(|a| (a != outer_attr).then(|| AttrColumn::encode(tuples, a)))
            .collect();
        let seg = Segment {
            start,
            rows: tuples.len(),
            outer_attr,
            mins,
            maxs,
            columns,
            outer: RleColumn::encode(tuples, outer_attr),
        };
        debug_assert_eq!(
            seg.decode(),
            tuples,
            "columnar round-trip must reproduce the encoded tuples"
        );
        seg
    }

    /// First tuple index (within the shard) this segment covers.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Number of tuples covered.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The covered index range within the shard's tuple vector.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.start + self.rows
    }

    /// The attribute stored run-length encoded (`P(n−1)`).
    pub fn outer_attr(&self) -> usize {
        self.outer_attr
    }

    /// Zone-map minimum code for `attr`.
    pub fn min(&self, attr: usize) -> Atom {
        self.mins[attr]
    }

    /// Zone-map maximum code for `attr`.
    pub fn max(&self, attr: usize) -> Atom {
        self.maxs[attr]
    }

    /// Distinct-count estimate for the outer attribute: the RLE run
    /// count. Exact when equal outer sets are always adjacent (an upper
    /// bound otherwise, since ties on the outer minimum can interleave
    /// distinct sets).
    pub fn distinct_outer(&self) -> usize {
        self.outer.runs()
    }

    /// The run-length-encoded outer column.
    pub fn outer_column(&self) -> &RleColumn {
        &self.outer
    }

    /// The dictionary-coded column of a non-outer attribute.
    pub fn column(&self, attr: usize) -> Option<&AttrColumn> {
        self.columns[attr].as_ref()
    }

    /// Whether any value in `values` falls inside this segment's
    /// `[min, max]` zone for `attr` — the zone-map test: `false` proves
    /// no tuple in the segment can intersect `values` on `attr`, so the
    /// whole segment can be skipped without probing it.
    pub fn admits(&self, attr: usize, values: &ValueSet) -> bool {
        let s = values.as_slice();
        let i = s.partition_point(|&v| v < self.mins[attr]);
        i < s.len() && s[i] <= self.maxs[attr]
    }

    /// Atoms stored across all columns after encoding (RLE savings
    /// included) — the numerator of the compression ratio.
    pub fn encoded_atoms(&self) -> usize {
        self.outer.atom_count()
            + self
                .columns
                .iter()
                .flatten()
                .map(AttrColumn::atom_count)
                .sum::<usize>()
    }

    /// Reconstructs the covered tuples from the columns. Test and
    /// verification helper: the result must equal the tuple-store slice
    /// the segment was encoded from.
    pub fn decode(&self) -> Vec<NfTuple> {
        let arity = self.columns.len();
        let mut out = Vec::with_capacity(self.rows);
        let mut run = 0usize;
        let mut left_in_run = self.outer.run_len(0);
        for row in 0..self.rows {
            if left_in_run == 0 {
                run += 1;
                left_in_run = self.outer.run_len(run);
            }
            left_in_run -= 1;
            let comps = (0..arity)
                .map(|a| {
                    let slice = match &self.columns[a] {
                        Some(col) => col.set(row),
                        None => self.outer.run_set(run),
                    };
                    ValueSet::from_sorted_unchecked(slice.to_vec())
                })
                .collect();
            out.push(NfTuple::new(comps));
        }
        out
    }
}

/// The segment state of one shard: the immutable segment list plus the
/// mutable-delta bookkeeping that tracks whether the list still
/// describes the live tuple store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSegments {
    segments: Vec<Segment>,
    /// §4 point/incremental ops applied since the last rebuild — the
    /// size of the mutable delta awaiting absorption.
    delta_ops: usize,
    /// `true` while the segments exactly tile the shard's tuple vector
    /// in canonical sorted order. Point maintenance clears it; only a
    /// kernel rebuild sets it again.
    fresh: bool,
}

impl ShardSegments {
    /// The segment state of an empty, never-mutated shard: zero
    /// segments exactly tile zero tuples, so it is fresh.
    pub fn fresh_empty() -> Self {
        ShardSegments {
            segments: Vec::new(),
            delta_ops: 0,
            fresh: true,
        }
    }

    /// Re-emits segments from a freshly rebuilt (kernel-sorted) tuple
    /// vector, absorbing any pending delta. `outer_attr` is the routing
    /// attribute `P(n−1)`; a zero-arity schema has none, and its
    /// (degenerate) tuples stay unsegmented.
    pub fn rebuild(&mut self, tuples: &[NfTuple], outer_attr: Option<usize>, target_rows: usize) {
        self.segments.clear();
        self.delta_ops = 0;
        let Some(outer) = outer_attr else {
            self.fresh = tuples.is_empty();
            return;
        };
        let target = target_rows.max(1);
        let mut start = 0usize;
        while start < tuples.len() {
            let take = target.min(tuples.len() - start);
            self.segments
                .push(Segment::encode(&tuples[start..start + take], start, outer));
            start += take;
        }
        self.fresh = true;
    }

    /// Records `ops` point/incremental maintenance operations: the
    /// tuple store has diverged from the segments, so ordered scans and
    /// zone maps must fall back until the next rebuild absorbs the
    /// delta.
    pub fn note_delta(&mut self, ops: usize) {
        self.fresh = false;
        self.delta_ops += ops;
    }

    /// Whether the segments still exactly describe the tuple store.
    pub fn is_fresh(&self) -> bool {
        self.fresh
    }

    /// Pending delta operations since the last rebuild.
    pub fn delta_ops(&self) -> usize {
        self.delta_ops
    }

    /// The immutable segments, in tuple order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Number of segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Total tuples the segments cover.
    pub fn covered_rows(&self) -> usize {
        self.segments.iter().map(Segment::rows).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(vals: &[u32]) -> ValueSet {
        ValueSet::new(vals.iter().map(|&v| Atom(v)).collect()).expect("test sets are non-empty")
    }

    fn tuple(comps: &[&[u32]]) -> NfTuple {
        NfTuple::new(comps.iter().map(|c| set(c)).collect())
    }

    fn sample() -> Vec<NfTuple> {
        vec![
            tuple(&[&[1, 3], &[10]]),
            tuple(&[&[2], &[10]]),
            tuple(&[&[5], &[11, 12]]),
            tuple(&[&[4, 9], &[11, 12]]),
            tuple(&[&[7], &[20]]),
        ]
    }

    #[test]
    fn encode_decode_round_trips() {
        let tuples = sample();
        let seg = Segment::encode(&tuples, 3, 1);
        assert_eq!(seg.start(), 3);
        assert_eq!(seg.rows(), 5);
        assert_eq!(seg.range(), 3..8);
        assert_eq!(seg.decode(), tuples);
    }

    #[test]
    fn rle_collapses_consecutive_outer_sets() {
        let tuples = sample();
        let seg = Segment::encode(&tuples, 0, 1);
        // Outer sets: {10},{10},{11,12},{11,12},{20} → 3 runs.
        assert_eq!(seg.distinct_outer(), 3);
        assert_eq!(seg.outer_column().run_len(0), 2);
        assert_eq!(seg.outer_column().run_set(1), &[Atom(11), Atom(12)]);
        // 4 distinct outer atoms stored instead of 7 expanded.
        assert_eq!(seg.outer_column().atom_count(), 4);
        assert_eq!(seg.outer_column().rows(), 5);
        // Column 0 keeps every atom (7), outer stores 4: 11 total.
        assert_eq!(seg.encoded_atoms(), 11);
    }

    #[test]
    fn zone_maps_bound_all_set_members() {
        let seg = Segment::encode(&sample(), 0, 1);
        assert_eq!(seg.min(0), Atom(1));
        assert_eq!(seg.max(0), Atom(9));
        assert_eq!(seg.min(1), Atom(10));
        assert_eq!(seg.max(1), Atom(20));
    }

    #[test]
    fn admits_refutes_out_of_zone_predicates() {
        let seg = Segment::encode(&sample(), 0, 1);
        assert!(seg.admits(0, &set(&[5])));
        assert!(seg.admits(0, &set(&[0, 9])));
        assert!(!seg.admits(0, &set(&[0])));
        assert!(!seg.admits(0, &set(&[10, 99])));
        assert!(seg.admits(1, &set(&[15])), "zones are ranges, not sets");
        assert!(!seg.admits(1, &set(&[21])));
    }

    #[test]
    fn shard_segments_tile_and_absorb() {
        let tuples: Vec<NfTuple> = (0..10u32).map(|i| tuple(&[&[i], &[100 + i / 3]])).collect();
        let mut ss = ShardSegments::fresh_empty();
        assert!(ss.is_fresh());
        assert_eq!(ss.segment_count(), 0);
        ss.rebuild(&tuples, Some(1), 4);
        assert!(ss.is_fresh());
        assert_eq!(ss.segment_count(), 3, "10 rows at target 4 → 4+4+2");
        assert_eq!(ss.covered_rows(), 10);
        let starts: Vec<usize> = ss.segments().iter().map(Segment::start).collect();
        assert_eq!(starts, vec![0, 4, 8]);
        ss.note_delta(2);
        assert!(!ss.is_fresh());
        assert_eq!(ss.delta_ops(), 2);
        ss.rebuild(&tuples, Some(1), DEFAULT_SEGMENT_ROWS);
        assert!(ss.is_fresh());
        assert_eq!(ss.delta_ops(), 0);
        assert_eq!(ss.segment_count(), 1);
    }

    #[test]
    fn zero_arity_shards_stay_unsegmented() {
        let mut ss = ShardSegments::fresh_empty();
        ss.rebuild(&[], None, DEFAULT_SEGMENT_ROWS);
        assert!(ss.is_fresh());
        ss.rebuild(&[NfTuple::new(vec![])], None, DEFAULT_SEGMENT_ROWS);
        assert!(!ss.is_fresh(), "unsegmentable tuples must read as stale");
    }
}
