//! Composition and decomposition of tuples (Definitions 1 and 2).
//!
//! *Composition* `∨_{Ec}(r, s)` merges two tuples that are set-equal on
//! every attribute but `Ec` into one tuple whose `Ec` component is the
//! union. *Decomposition* `u_{Ed(ex)}(t)` splits a tuple on attribute `Ed`
//! into the part carrying `ex` and the remainder. Composition is the move
//! from 1NF towards NF²; decomposition is its inverse. Both are purely
//! syntactic: neither loses nor adds information (Theorem 1 builds on
//! this).

use crate::error::{NfError, Result};
use crate::tuple::{NfTuple, ValueSet};

/// Def. 1 — composes `r` and `s` over attribute `attr`.
///
/// Requires `r` and `s` to be set-theoretically equal on every attribute
/// except `attr`. Returns the merged tuple whose `attr` component is the
/// union of the two `attr` components.
///
/// Inside a valid NFR (pairwise-disjoint expansions) the two `attr`
/// components are automatically disjoint; this is asserted in debug builds
/// but not required by the definition itself.
pub fn compose(r: &NfTuple, s: &NfTuple, attr: usize) -> Result<NfTuple> {
    if !r.agrees_except(s, attr) {
        return Err(NfError::NotComposable { attr });
    }
    debug_assert!(
        r.component(attr).is_disjoint_from(s.component(attr))
            || r.component(attr) == s.component(attr),
        "composition inside a valid NFR merges disjoint {attr}-components"
    );
    Ok(r.with_component(attr, r.component(attr).union(s.component(attr))))
}

/// Whether Def. 1 applies to `r`, `s` over `attr`.
pub fn composable(r: &NfTuple, s: &NfTuple, attr: usize) -> bool {
    r.agrees_except(s, attr)
}

/// Finds some attribute over which `r` and `s` are composable.
///
/// Distinct tuples of a relation differ on at least one attribute, so at
/// most one attribute can qualify unless the tuples are identical (in which
/// case every attribute qualifies trivially; callers operate on duplicate-
/// free relations so that case does not arise).
pub fn composable_over(r: &NfTuple, s: &NfTuple) -> Option<usize> {
    let n = r.arity();
    debug_assert_eq!(n, s.arity());
    let mut differing = None;
    for i in 0..n {
        if r.component(i) != s.component(i) {
            if differing.is_some() {
                return None; // differ on ≥ 2 attributes: not composable
            }
            differing = Some(i);
        }
    }
    differing
}

/// The result of a decomposition: the isolated part and, when the component
/// had more than the isolated values, the remainder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    /// `te` in Def. 2 — the tuple carrying exactly the isolated values.
    pub isolated: NfTuple,
    /// `tr` in Def. 2 — the tuple carrying the rest, absent when the whole
    /// component was isolated.
    pub remainder: Option<NfTuple>,
}

/// Def. 2 — decomposes `t` on attribute `attr`, isolating the single value
/// `value`.
///
/// Returns `te` (with `Ed = {value}`) and `tr` (with the remaining values),
/// or an error if `value` is not in the component. When the component *is*
/// `{value}` the remainder is `None` and the isolated part equals `t`.
pub fn decompose(t: &NfTuple, attr: usize, value: crate::value::Atom) -> Result<Split> {
    decompose_set(t, attr, &ValueSet::singleton(value))
}

/// Generalised decomposition (DESIGN.md D5): isolates the subset `values`
/// of `t`'s `attr` component via a sequence of Def. 2 steps.
///
/// Errors unless `values ⊆ t.Ed`.
pub fn decompose_set(t: &NfTuple, attr: usize, values: &ValueSet) -> Result<Split> {
    let comp = t.component(attr);
    if !values.is_subset_of(comp) {
        return Err(NfError::ValueNotInComponent { attr });
    }
    let isolated = t.with_component(attr, values.clone());
    let remainder = comp
        .difference(values)
        .map(|rest| t.with_component(attr, rest));
    Ok(Split {
        isolated,
        remainder,
    })
}

/// Scans a slice of tuples for the first composable pair, returning
/// `(i, j, attr)` with `i < j`.
///
/// Used by irreducibility checking and by the pairwise nest used to test
/// Theorem 2. Quadratic; the production path ([`crate::nest::nest`]) uses
/// hashing instead.
pub fn find_composable_pair(tuples: &[NfTuple]) -> Option<(usize, usize, usize)> {
    for i in 0..tuples.len() {
        for j in (i + 1)..tuples.len() {
            if let Some(attr) = composable_over(&tuples[i], &tuples[j]) {
                return Some((i, j, attr));
            }
        }
    }
    None
}

/// Like [`find_composable_pair`] but restricted to composition over a
/// single attribute.
pub fn find_composable_pair_over(tuples: &[NfTuple], attr: usize) -> Option<(usize, usize)> {
    for i in 0..tuples.len() {
        for j in (i + 1)..tuples.len() {
            if composable(&tuples[i], &tuples[j], attr) {
                return Some((i, j));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Atom;

    fn vs(ids: &[u32]) -> ValueSet {
        ValueSet::new(ids.iter().map(|&i| Atom(i)).collect()).unwrap()
    }

    fn t(comps: &[&[u32]]) -> NfTuple {
        NfTuple::new(comps.iter().map(|c| vs(c)).collect())
    }

    #[test]
    fn paper_example_composition_over_b() {
        // t1 = [A(a1,a2) B(b1,b2) C(c1)], t2 = [A(a1,a2) B(b3) C(c1)]
        // ∨_B(t1, t2) = [A(a1,a2) B(b1,b2,b3) C(c1)]  (§3.2)
        let t1 = t(&[&[1, 2], &[11, 12], &[21]]);
        let t2 = t(&[&[1, 2], &[13], &[21]]);
        let t3 = compose(&t1, &t2, 1).unwrap();
        assert_eq!(t3, t(&[&[1, 2], &[11, 12, 13], &[21]]));
    }

    #[test]
    fn composition_requires_agreement_elsewhere() {
        let t1 = t(&[&[1], &[11]]);
        let t2 = t(&[&[2], &[12]]);
        assert_eq!(
            compose(&t1, &t2, 0),
            Err(NfError::NotComposable { attr: 0 })
        );
        assert!(!composable(&t1, &t2, 0));
    }

    #[test]
    fn composition_is_commutative() {
        let t1 = t(&[&[1], &[11]]);
        let t2 = t(&[&[2], &[11]]);
        assert_eq!(compose(&t1, &t2, 0).unwrap(), compose(&t2, &t1, 0).unwrap());
    }

    #[test]
    fn composable_over_finds_the_single_differing_attr() {
        let t1 = t(&[&[1, 2], &[11]]);
        let t2 = t(&[&[1, 2], &[12]]);
        assert_eq!(composable_over(&t1, &t2), Some(1));
        let t3 = t(&[&[3], &[12]]);
        assert_eq!(composable_over(&t1, &t3), None);
    }

    #[test]
    fn paper_example_decomposition_on_b() {
        // u_{B(b3)}(t3) recovers t1 and t2 from the §3.2 example.
        let t3 = t(&[&[1, 2], &[11, 12, 13], &[21]]);
        let split = decompose(&t3, 1, Atom(13)).unwrap();
        assert_eq!(split.isolated, t(&[&[1, 2], &[13], &[21]]));
        assert_eq!(split.remainder, Some(t(&[&[1, 2], &[11, 12], &[21]])));
    }

    #[test]
    fn paper_example_decomposition_on_a() {
        // u_{A(a1)}(t3) gives [A(a1) B(b1,b2,b3) C(c1)] and
        // [A(a2) B(b1,b2,b3) C(c1)]  (§3.2).
        let t3 = t(&[&[1, 2], &[11, 12, 13], &[21]]);
        let split = decompose(&t3, 0, Atom(1)).unwrap();
        assert_eq!(split.isolated, t(&[&[1], &[11, 12, 13], &[21]]));
        assert_eq!(split.remainder, Some(t(&[&[2], &[11, 12, 13], &[21]])));
    }

    #[test]
    fn decompose_whole_component_has_no_remainder() {
        let t1 = t(&[&[1], &[11]]);
        let split = decompose(&t1, 0, Atom(1)).unwrap();
        assert_eq!(split.isolated, t1);
        assert_eq!(split.remainder, None);
    }

    #[test]
    fn decompose_missing_value_errors() {
        let t1 = t(&[&[1], &[11]]);
        assert_eq!(
            decompose(&t1, 0, Atom(9)),
            Err(NfError::ValueNotInComponent { attr: 0 })
        );
    }

    #[test]
    fn decompose_set_isolates_subsets() {
        let t1 = t(&[&[1, 2, 3, 4], &[11]]);
        let split = decompose_set(&t1, 0, &vs(&[2, 4])).unwrap();
        assert_eq!(split.isolated, t(&[&[2, 4], &[11]]));
        assert_eq!(split.remainder, Some(t(&[&[1, 3], &[11]])));
    }

    #[test]
    fn compose_then_decompose_round_trips() {
        let t1 = t(&[&[1, 2], &[11, 12], &[21]]);
        let t2 = t(&[&[1, 2], &[13], &[21]]);
        let merged = compose(&t1, &t2, 1).unwrap();
        let split = decompose_set(&merged, 1, t2.component(1)).unwrap();
        assert_eq!(split.isolated, t2);
        assert_eq!(split.remainder, Some(t1));
    }

    #[test]
    fn find_composable_pair_scans_in_order() {
        let tuples = vec![
            t(&[&[1], &[11]]),
            t(&[&[2], &[12]]),
            t(&[&[1], &[12]]), // composable with both (over B with #0, over A with #1)
        ];
        assert_eq!(find_composable_pair(&tuples), Some((0, 2, 1)));
        assert_eq!(find_composable_pair_over(&tuples, 0), Some((1, 2)));
        assert_eq!(find_composable_pair_over(&tuples, 1), Some((0, 2)));
    }

    #[test]
    fn find_composable_pair_none_when_irreducible() {
        let tuples = vec![t(&[&[1], &[11]]), t(&[&[2], &[12]])];
        assert_eq!(find_composable_pair(&tuples), None);
    }
}
