//! Cardinality classes and fixedness (Definitions 6–7, Fig. 3).
//!
//! Def. 6 classifies how values of an attribute relate to tuples: whether a
//! value appears in at most one tuple or several, and whether it appears as
//! a singleton component or inside a compound set. Def. 7's *fixedness* is
//! the paper's key notion on NFRs: `R` is fixed on `F1 … Fk` when every
//! combination of values drawn from those attributes is contained in at
//! most one tuple.

use std::collections::HashMap;

use crate::relation::NfRelation;
use crate::schema::{AttrId, NestOrder};
use crate::value::Atom;

/// Def. 6 — the correspondence class of an attribute in a relation.
///
/// The first axis is tuple multiplicity (does some value appear in more
/// than one tuple?), the second is component compoundness (does some value
/// appear inside a non-singleton set?). The class of the attribute is the
/// least upper bound over all its values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CardinalityClass {
    /// `1:1` — every value appears in at most one tuple, always as a
    /// singleton component.
    OneToOne,
    /// `n:1` — every value appears in at most one tuple, some inside a
    /// compound set.
    NToOne,
    /// `1:n` — some value appears in several tuples, all occurrences are
    /// singleton components.
    OneToN,
    /// `m:n` — some value appears in several tuples and some occurrence is
    /// inside a compound set.
    MToN,
}

impl std::fmt::Display for CardinalityClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CardinalityClass::OneToOne => "1:1",
            CardinalityClass::NToOne => "n:1",
            CardinalityClass::OneToN => "1:n",
            CardinalityClass::MToN => "m:n",
        };
        write!(f, "{s}")
    }
}

/// Def. 6 — classifies attribute `attr` in `rel`.
///
/// An empty relation (or an attribute with no values) is vacuously `1:1`.
pub fn cardinality_class(rel: &NfRelation, attr: AttrId) -> CardinalityClass {
    let mut tuple_count: HashMap<Atom, usize> = HashMap::new();
    let mut in_compound: HashMap<Atom, bool> = HashMap::new();
    for t in rel.tuples() {
        let comp = t.component(attr);
        let compound = !comp.is_singleton();
        for v in comp.iter() {
            *tuple_count.entry(v).or_insert(0) += 1;
            let e = in_compound.entry(v).or_insert(false);
            *e = *e || compound;
        }
    }
    let multi = tuple_count.values().any(|&c| c > 1);
    let compound = in_compound.values().any(|&c| c);
    match (multi, compound) {
        (false, false) => CardinalityClass::OneToOne,
        (false, true) => CardinalityClass::NToOne,
        (true, false) => CardinalityClass::OneToN,
        (true, true) => CardinalityClass::MToN,
    }
}

/// Def. 7 — whether `rel` is fixed on the attribute set `attrs`: every
/// combination `(f1, …, fk)` with `fi` drawn from each tuple's `Fi`
/// component appears in at most one tuple.
///
/// Equivalently: no two distinct tuples intersect on *all* of `attrs` —
/// checked pairwise in `O(T² · k)` set operations.
pub fn is_fixed_on(rel: &NfRelation, attrs: &[AttrId]) -> bool {
    if attrs.is_empty() {
        // A 0-attribute combination (the empty tuple) is "contained" in
        // every tuple: only relations with ≤ 1 tuple are fixed on ∅.
        return rel.tuple_count() <= 1;
    }
    let ts = rel.tuples();
    for i in 0..ts.len() {
        for j in (i + 1)..ts.len() {
            let share_all = attrs
                .iter()
                .all(|&a| !ts[i].component(a).is_disjoint_from(ts[j].component(a)));
            if share_all {
                return false;
            }
        }
    }
    true
}

/// All minimal attribute subsets on which `rel` is fixed.
///
/// Enumerates subsets (exponential in arity — intended for the paper's
/// small degrees). A subset is reported only if no proper subset of it is
/// fixed.
pub fn minimal_fixed_sets(rel: &NfRelation) -> Vec<Vec<AttrId>> {
    let n = rel.arity();
    assert!(
        n <= 16,
        "minimal_fixed_sets enumerates 2^n subsets; arity {n} too large"
    );
    let mut fixed_masks: Vec<u32> = Vec::new();
    for mask in 1u32..(1 << n) {
        let attrs: Vec<AttrId> = (0..n).filter(|&a| mask & (1 << a) != 0).collect();
        if is_fixed_on(rel, &attrs) {
            fixed_masks.push(mask);
        }
    }
    let minimal: Vec<u32> = fixed_masks
        .iter()
        .copied()
        .filter(|&m| !fixed_masks.iter().any(|&o| o != m && o & m == o))
        .collect();
    minimal
        .into_iter()
        .map(|m| (0..n).filter(|&a| m & (1 << a) != 0).collect())
        .collect()
}

/// A point in Fig. 3's diagram: how one NFR relates to the canonical /
/// irreducible / fixed regions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Classification {
    /// Whether no composition applies (Def. 3).
    pub irreducible: bool,
    /// The nest orders whose canonical form equals this relation (empty if
    /// the relation is not canonical for any order).
    pub canonical_for: Vec<NestOrder>,
    /// Minimal attribute sets on which the relation is fixed (Def. 7).
    pub fixed_on: Vec<Vec<AttrId>>,
}

impl Classification {
    /// Whether the relation is canonical for at least one order.
    pub fn is_canonical(&self) -> bool {
        !self.canonical_for.is_empty()
    }

    /// Whether the relation is fixed on at least one attribute set.
    pub fn is_fixed(&self) -> bool {
        !self.fixed_on.is_empty()
    }
}

/// Classifies `rel` for Fig. 3: irreducibility, the set of nest orders it
/// is canonical for, and its minimal fixed attribute sets.
///
/// Tries all `n!` orders — small arities only.
pub fn classify(rel: &NfRelation) -> Classification {
    let flat = rel.expand();
    let canonical_for = NestOrder::all(rel.arity())
        .into_iter()
        .filter(|order| crate::nest::canonical_of_flat(&flat, order) == *rel)
        .collect();
    Classification {
        irreducible: crate::irreducible::is_irreducible(rel),
        canonical_for,
        fixed_on: minimal_fixed_sets(rel),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::FlatRelation;
    use crate::schema::Schema;
    use crate::tuple::{NfTuple, ValueSet};
    use std::sync::Arc;

    fn schema(attrs: &[&str]) -> Arc<Schema> {
        Schema::new("R", attrs).unwrap()
    }

    fn vs(ids: &[u32]) -> ValueSet {
        ValueSet::new(ids.iter().map(|&i| Atom(i)).collect()).unwrap()
    }

    fn t(comps: &[&[u32]]) -> NfTuple {
        NfTuple::new(comps.iter().map(|c| vs(c)).collect())
    }

    fn rel(attrs: &[&str], tuples: Vec<NfTuple>) -> NfRelation {
        NfRelation::from_tuples(schema(attrs), tuples).unwrap()
    }

    #[test]
    fn cardinality_one_to_one() {
        let r = rel(&["A", "B"], vec![t(&[&[1], &[11]]), t(&[&[2], &[12]])]);
        assert_eq!(cardinality_class(&r, 0), CardinalityClass::OneToOne);
    }

    #[test]
    fn cardinality_n_to_one() {
        // a1, a2 live inside one compound component of a single tuple.
        let r = rel(&["A", "B"], vec![t(&[&[1, 2], &[11]])]);
        assert_eq!(cardinality_class(&r, 0), CardinalityClass::NToOne);
    }

    #[test]
    fn cardinality_one_to_n() {
        // b11 appears as a singleton in two tuples.
        let r = rel(&["A", "B"], vec![t(&[&[1], &[11]]), t(&[&[2], &[11]])]);
        assert_eq!(cardinality_class(&r, 1), CardinalityClass::OneToN);
    }

    #[test]
    fn cardinality_m_to_n() {
        // b11 appears in two tuples, once inside a compound set.
        let r = rel(&["A", "B"], vec![t(&[&[1], &[11, 12]]), t(&[&[2], &[11]])]);
        assert_eq!(cardinality_class(&r, 1), CardinalityClass::MToN);
    }

    #[test]
    fn cardinality_display() {
        assert_eq!(CardinalityClass::MToN.to_string(), "m:n");
        assert_eq!(CardinalityClass::OneToOne.to_string(), "1:1");
    }

    #[test]
    fn example1_fixedness_under_def7() {
        // Example 1's narrative says "R1 is fixed on A and R2 on B", but
        // under Def. 7 (each value combination contained in at most one
        // tuple — the reading Example 3 and Theorems 3-5 require) the
        // attributes are swapped: composing over A leaves a2 in both
        // tuples of R1, so R1 is fixed on B = U - {A}, exactly as
        // Theorem 5 predicts for a nest on A. See DESIGN.md D8.
        let r = rel(
            &["A", "B"],
            vec![
                t(&[&[1], &[11]]),
                t(&[&[2], &[11]]),
                t(&[&[2], &[12]]),
                t(&[&[3], &[12]]),
            ],
        );
        assert!(!is_fixed_on(&r, &[0]));
        assert!(!is_fixed_on(&r, &[1]));

        let r1 = rel(
            &["A", "B"],
            vec![t(&[&[1, 2], &[11]]), t(&[&[2, 3], &[12]])],
        );
        assert!(is_fixed_on(&r1, &[1]), "R1 (nested on A) is fixed on B");
        assert!(!is_fixed_on(&r1, &[0]), "a2 appears in both tuples of R1");

        let r2 = rel(
            &["A", "B"],
            vec![t(&[&[1], &[11]]), t(&[&[2], &[11, 12]]), t(&[&[3], &[12]])],
        );
        assert!(is_fixed_on(&r2, &[0]), "R2 (nested on B) is fixed on A");
        assert!(!is_fixed_on(&r2, &[1]), "b1 appears in two tuples of R2");
    }

    #[test]
    fn example3_fixedness_matches_paper() {
        // Example 3: R7 is fixed on A, R8 is not — this example pins the
        // per-value reading of Def. 7.
        let r7 = rel(
            &["A", "B", "C"],
            vec![t(&[&[1], &[11, 12], &[21]]), t(&[&[2], &[11], &[21, 22]])],
        );
        assert!(is_fixed_on(&r7, &[0]), "R7 is fixed on A");

        let r8 = rel(
            &["A", "B", "C"],
            vec![
                t(&[&[1, 2], &[11], &[21]]),
                t(&[&[1], &[12], &[21]]),
                t(&[&[2], &[11], &[22]]),
            ],
        );
        assert!(!is_fixed_on(&r8, &[0]), "a1 appears in two tuples of R8");
    }

    #[test]
    fn fixed_on_all_attrs_iff_partition_of_distinct_rectangles() {
        // Fixedness on the full attribute set holds iff no two tuples
        // overlap on every attribute — always true for a valid NFR.
        let r = rel(&["A", "B"], vec![t(&[&[1, 2], &[11]]), t(&[&[2], &[12]])]);
        assert!(is_fixed_on(&r, &[0, 1]));
    }

    #[test]
    fn fixed_on_empty_set() {
        let one = rel(&["A", "B"], vec![t(&[&[1], &[11]])]);
        assert!(is_fixed_on(&one, &[]));
        let two = rel(&["A", "B"], vec![t(&[&[1], &[11]]), t(&[&[2], &[12]])]);
        assert!(!is_fixed_on(&two, &[]));
    }

    #[test]
    fn minimal_fixed_sets_are_minimal() {
        // R1 from Example 1: A-sets {a1,a2} and {a2,a3} share a2, so {A}
        // is not fixed; B-sets {b1} and {b2} are disjoint, so {B} is the
        // unique minimal fixed set. {A,B} is fixed but not minimal.
        let r1 = rel(
            &["A", "B"],
            vec![t(&[&[1, 2], &[11]]), t(&[&[2, 3], &[12]])],
        );
        let sets = minimal_fixed_sets(&r1);
        assert_eq!(sets, vec![vec![1]]);
    }

    #[test]
    fn classify_canonical_and_irreducible() {
        // Example 1's R1 = ν_{B}(ν_{A}(R)): canonical for A-first order.
        let r1 = rel(
            &["A", "B"],
            vec![t(&[&[1, 2], &[11]]), t(&[&[2, 3], &[12]])],
        );
        let c = classify(&r1);
        assert!(c.irreducible);
        assert!(c.is_canonical());
        assert!(c.canonical_for.contains(&NestOrder::identity(2)));
        assert!(c.is_fixed());
    }

    #[test]
    fn classify_non_canonical_irreducible() {
        // Example 2's 3-tuple minimum is irreducible but canonical for no
        // order.
        let f = FlatRelation::from_rows(
            schema(&["A", "B", "C"]),
            [
                [1u32, 11, 22],
                [1, 12, 22],
                [1, 12, 21],
                [2, 11, 22],
                [2, 11, 21],
                [2, 12, 21],
            ]
            .iter()
            .map(|r| r.iter().map(|&v| Atom(v)).collect()),
        )
        .unwrap();
        let min = crate::irreducible::minimum_partition(&f);
        let c = classify(&min);
        assert!(c.irreducible);
        assert!(
            !c.is_canonical(),
            "the 3-tuple form is reachable by no nest order"
        );
    }
}
