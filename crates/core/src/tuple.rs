//! NF² tuples and their expansion semantics.
//!
//! An NF² tuple `[E1(e11, …, e1m1) … En(en1, …, enmn)]` (§3.1) carries a
//! non-empty *set* of atomic values per attribute. Its meaning is the set of
//! all flat (1NF) tuples obtainable by picking one value per component — the
//! Cartesian product of its components. Geometrically each NF² tuple is a
//! combinatorial *rectangle* inside the flat relation `R*`.

use std::fmt;

use crate::error::{NfError, Result};
use crate::relation::NfRelation;
use crate::value::Atom;

/// A flat (1NF) tuple: one atom per attribute.
pub type FlatTuple = Vec<Atom>;

/// A non-empty, sorted, duplicate-free set of atoms — one component of an
/// NF² tuple.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ValueSet(Vec<Atom>);

impl ValueSet {
    /// Builds a set from arbitrary values (sorted and deduplicated).
    /// Returns `None` for an empty input: components must be non-empty.
    pub fn new(mut values: Vec<Atom>) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        values.sort_unstable();
        values.dedup();
        Some(Self(values))
    }

    /// A one-element set.
    pub fn singleton(value: Atom) -> Self {
        Self(vec![value])
    }

    /// Builds a set from values that are already strictly ascending (and
    /// therefore non-empty and duplicate-free). Fast path for the nest
    /// kernel, whose folds produce sorted runs by construction; checked in
    /// debug builds.
    pub(crate) fn from_sorted_unchecked(values: Vec<Atom>) -> Self {
        debug_assert!(!values.is_empty(), "components must be non-empty");
        debug_assert!(
            values.windows(2).all(|w| w[0] < w[1]),
            "values must be strictly ascending"
        );
        Self(values)
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Always `false` by construction; kept for API completeness.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Whether the set has exactly one element.
    pub fn is_singleton(&self) -> bool {
        self.0.len() == 1
    }

    /// The values in ascending order.
    pub fn as_slice(&self) -> &[Atom] {
        &self.0
    }

    /// Membership test (binary search).
    pub fn contains(&self, value: Atom) -> bool {
        self.0.binary_search(&value).is_ok()
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset_of(&self, other: &ValueSet) -> bool {
        if self.0.len() > other.0.len() {
            return false;
        }
        self.0.iter().all(|v| other.contains(*v))
    }

    /// Whether the two sets share no value.
    pub fn is_disjoint_from(&self, other: &ValueSet) -> bool {
        // Merge walk over the two sorted slices.
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() && j < other.0.len() {
            match self.0[i].cmp(&other.0[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return false,
            }
        }
        true
    }

    /// Set union (used by composition, Def. 1).
    pub fn union(&self, other: &ValueSet) -> ValueSet {
        let mut out = Vec::with_capacity(self.0.len() + other.0.len());
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() && j < other.0.len() {
            match self.0[i].cmp(&other.0[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.0[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.0[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.0[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.0[i..]);
        out.extend_from_slice(&other.0[j..]);
        ValueSet(out)
    }

    /// Set intersection. `None` when empty (components must be non-empty).
    pub fn intersection(&self, other: &ValueSet) -> Option<ValueSet> {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() && j < other.0.len() {
            match self.0[i].cmp(&other.0[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.0[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        if out.is_empty() {
            None
        } else {
            Some(ValueSet(out))
        }
    }

    /// Set difference `self \ other`. `None` when empty.
    pub fn difference(&self, other: &ValueSet) -> Option<ValueSet> {
        let out: Vec<Atom> = self
            .0
            .iter()
            .copied()
            .filter(|v| !other.contains(*v))
            .collect();
        if out.is_empty() {
            None
        } else {
            Some(ValueSet(out))
        }
    }

    /// Iterates over the values in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = Atom> + '_ {
        self.0.iter().copied()
    }
}

impl From<Atom> for ValueSet {
    fn from(a: Atom) -> Self {
        ValueSet::singleton(a)
    }
}

impl fmt::Display for ValueSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.0.iter().map(|a| a.to_string()).collect();
        write!(f, "{{{}}}", parts.join(", "))
    }
}

/// An NF² tuple: one [`ValueSet`] per attribute.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NfTuple {
    comps: Vec<ValueSet>,
}

impl NfTuple {
    /// Builds a tuple from components. All components must be non-empty;
    /// `None` entries signal an empty component and are rejected.
    pub fn new(comps: Vec<ValueSet>) -> Self {
        Self { comps }
    }

    /// Builds a tuple from per-attribute value vectors.
    pub fn from_values(values: Vec<Vec<Atom>>) -> Result<Self> {
        let comps = values
            .into_iter()
            .enumerate()
            .map(|(attr, vs)| ValueSet::new(vs).ok_or(NfError::EmptyValueSet { attr }))
            .collect::<Result<Vec<_>>>()?;
        Ok(Self { comps })
    }

    /// Lifts a flat tuple into an NF² tuple of singletons.
    pub fn from_flat(flat: &[Atom]) -> Self {
        Self {
            comps: flat.iter().map(|&a| ValueSet::singleton(a)).collect(),
        }
    }

    /// The paper's degree `n`.
    pub fn arity(&self) -> usize {
        self.comps.len()
    }

    /// The component of attribute `attr` — the paper's `π(r, Ek)`.
    pub fn component(&self, attr: usize) -> &ValueSet {
        &self.comps[attr]
    }

    /// All components in attribute order.
    pub fn components(&self) -> &[ValueSet] {
        &self.comps
    }

    /// Replaces the component of `attr`, returning a new tuple.
    pub fn with_component(&self, attr: usize, set: ValueSet) -> NfTuple {
        let mut comps = self.comps.clone();
        comps[attr] = set;
        NfTuple { comps }
    }

    /// Number of flat tuples this tuple represents (product of component
    /// sizes). Saturates at `u128::MAX`.
    pub fn expansion_count(&self) -> u128 {
        self.comps
            .iter()
            .fold(1u128, |acc, c| acc.saturating_mul(c.len() as u128))
    }

    /// Whether every component is a singleton (the tuple is flat).
    pub fn is_flat(&self) -> bool {
        self.comps.iter().all(ValueSet::is_singleton)
    }

    /// Converts to a flat tuple if every component is a singleton.
    pub fn to_flat(&self) -> Option<FlatTuple> {
        if !self.is_flat() {
            return None;
        }
        Some(self.comps.iter().map(|c| c.as_slice()[0]).collect())
    }

    /// Whether the flat tuple `flat` lies inside this rectangle.
    pub fn contains_flat(&self, flat: &[Atom]) -> bool {
        debug_assert_eq!(flat.len(), self.arity());
        self.comps.iter().zip(flat).all(|(c, &v)| c.contains(v))
    }

    /// Whether the expansions of `self` and `other` intersect — true iff
    /// every pair of corresponding components intersects.
    pub fn overlaps(&self, other: &NfTuple) -> bool {
        debug_assert_eq!(self.arity(), other.arity());
        self.comps
            .iter()
            .zip(&other.comps)
            .all(|(a, b)| !a.is_disjoint_from(b))
    }

    /// Whether `self`'s expansion is a subset of `other`'s (componentwise
    /// inclusion).
    pub fn is_contained_in(&self, other: &NfTuple) -> bool {
        debug_assert_eq!(self.arity(), other.arity());
        self.comps
            .iter()
            .zip(&other.comps)
            .all(|(a, b)| a.is_subset_of(b))
    }

    /// Whether the two tuples are set-theoretically equal on every
    /// attribute except `except` (the precondition of Def. 1).
    pub fn agrees_except(&self, other: &NfTuple, except: usize) -> bool {
        debug_assert_eq!(self.arity(), other.arity());
        self.comps
            .iter()
            .zip(&other.comps)
            .enumerate()
            .all(|(i, (a, b))| i == except || a == b)
    }

    /// Iterates over the flat tuples of the expansion in lexicographic
    /// order (odometer over the sorted components).
    pub fn expand(&self) -> ExpansionIter<'_> {
        ExpansionIter {
            tuple: self,
            indices: vec![0; self.comps.len()],
            done: self.comps.is_empty(),
        }
    }
}

/// Iterator over the expansion of an [`NfTuple`]; see [`NfTuple::expand`].
pub struct ExpansionIter<'a> {
    tuple: &'a NfTuple,
    indices: Vec<usize>,
    done: bool,
}

impl Iterator for ExpansionIter<'_> {
    type Item = FlatTuple;

    fn next(&mut self) -> Option<FlatTuple> {
        if self.done {
            return None;
        }
        let flat: FlatTuple = self
            .indices
            .iter()
            .zip(self.tuple.comps.iter())
            .map(|(&i, c)| c.as_slice()[i])
            .collect();
        // Advance the odometer from the last attribute.
        let mut pos = self.indices.len();
        loop {
            if pos == 0 {
                self.done = true;
                break;
            }
            pos -= 1;
            self.indices[pos] += 1;
            if self.indices[pos] < self.tuple.comps[pos].len() {
                break;
            }
            self.indices[pos] = 0;
        }
        Some(flat)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.done {
            return (0, Some(0));
        }
        let total = self.tuple.expansion_count();
        let hint = usize::try_from(total).ok();
        (hint.unwrap_or(usize::MAX), hint)
    }
}

/// A pinned, immutable tuple store that snapshot scans can hold by
/// `Arc` — the backing object of [`TupleView::Shared`].
///
/// Implementors promise the slice returned by [`tuples`](Self::tuples)
/// never changes for the lifetime of the value: MVCC shard versions and
/// materialized relations qualify, mutable buffers do not.
pub trait TupleStore: Send + Sync + std::fmt::Debug {
    /// The immutable tuples backing views into this store.
    fn tuples(&self) -> &[NfTuple];
}

impl TupleStore for NfRelation {
    fn tuples(&self) -> &[NfTuple] {
        NfRelation::tuples(self)
    }
}

/// A possibly-borrowed NF² tuple — the item type of streaming cursors.
///
/// Iterator pipelines over stored relations yield tuples straight out of
/// the table (`Borrowed` when the source is a plain reference, `Shared`
/// when the source is an `Arc`-pinned MVCC snapshot — both zero-copy)
/// until an operator has to rewrite a component (selection narrowing a
/// value set, a join combining two rectangles), at which point the tuple
/// becomes `Owned`. Consumers that only *read* never pay for a clone;
/// [`TupleView::into_owned`] converts on demand.
#[derive(Debug, Clone)]
pub enum TupleView<'a> {
    /// A tuple borrowed from its relation — no copy was made.
    Borrowed(&'a NfTuple),
    /// A tuple inside an `Arc`-pinned store (an MVCC snapshot) — no
    /// copy was made; the view keeps the snapshot alive.
    Shared {
        /// The pinned store the tuple lives in.
        store: std::sync::Arc<dyn TupleStore>,
        /// Index of the tuple within [`TupleStore::tuples`].
        idx: usize,
    },
    /// A tuple computed by the pipeline (selection, join, …).
    Owned(NfTuple),
}

impl<'a> TupleView<'a> {
    /// A view of tuple `idx` inside a pinned store.
    ///
    /// The returned view has an unconstrained lifetime (it owns its
    /// `Arc`), so it coerces into any `TupleView<'a>` stream.
    pub fn shared(store: std::sync::Arc<dyn TupleStore>, idx: usize) -> TupleView<'static> {
        debug_assert!(idx < store.tuples().len(), "shared view out of bounds");
        TupleView::Shared { store, idx }
    }

    /// A shared reference to the underlying tuple.
    pub fn as_tuple(&self) -> &NfTuple {
        match self {
            TupleView::Borrowed(t) => t,
            TupleView::Shared { store, idx } => &store.tuples()[*idx],
            TupleView::Owned(t) => t,
        }
    }

    /// Converts into an owned tuple, cloning only if still zero-copy.
    pub fn into_owned(self) -> NfTuple {
        match self {
            TupleView::Borrowed(t) => t.clone(),
            TupleView::Shared { store, idx } => store.tuples()[idx].clone(),
            TupleView::Owned(t) => t,
        }
    }

    /// Whether this view still borrows from the source relation.
    pub fn is_borrowed(&self) -> bool {
        matches!(self, TupleView::Borrowed(_))
    }

    /// Whether this view reads the stored tuple in place (`Borrowed` or
    /// `Shared`) rather than a pipeline-built copy.
    pub fn is_zero_copy(&self) -> bool {
        !matches!(self, TupleView::Owned(_))
    }
}

impl PartialEq for TupleView<'_> {
    /// Equality on the underlying tuple, ignoring ownership.
    fn eq(&self, other: &Self) -> bool {
        self.as_tuple() == other.as_tuple()
    }
}

impl Eq for TupleView<'_> {}

impl std::ops::Deref for TupleView<'_> {
    type Target = NfTuple;

    fn deref(&self) -> &NfTuple {
        self.as_tuple()
    }
}

impl<'a> From<&'a NfTuple> for TupleView<'a> {
    fn from(t: &'a NfTuple) -> Self {
        TupleView::Borrowed(t)
    }
}

impl From<NfTuple> for TupleView<'_> {
    fn from(t: NfTuple) -> Self {
        TupleView::Owned(t)
    }
}

impl fmt::Display for NfTuple {
    /// Paper notation: `[E0(a, b) E1(c)]` with numeric atom ids.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, c) in self.comps.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            let vals: Vec<String> = c.iter().map(|a| a.to_string()).collect();
            write!(f, "E{i}({})", vals.join(", "))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(id: u32) -> Atom {
        Atom(id)
    }

    fn vs(ids: &[u32]) -> ValueSet {
        ValueSet::new(ids.iter().map(|&i| Atom(i)).collect()).unwrap()
    }

    #[test]
    fn tuple_view_borrow_and_own() {
        let t = NfTuple::new(vec![vs(&[1, 2]), vs(&[10])]);
        let borrowed = TupleView::from(&t);
        assert!(borrowed.is_borrowed());
        assert_eq!(borrowed.arity(), 2, "Deref reaches NfTuple methods");
        assert_eq!(borrowed.as_tuple(), &t);
        let owned = TupleView::from(t.clone());
        assert!(!owned.is_borrowed());
        assert_eq!(borrowed, owned, "equality compares the tuples");
        assert_eq!(owned.into_owned(), t);
        assert_eq!(TupleView::from(&t).into_owned(), t);
    }

    #[test]
    fn value_set_sorts_and_dedups() {
        let s = vs(&[3, 1, 2, 1]);
        assert_eq!(s.as_slice(), &[a(1), a(2), a(3)]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn value_set_rejects_empty() {
        assert!(ValueSet::new(vec![]).is_none());
    }

    #[test]
    fn value_set_membership_and_subset() {
        let s = vs(&[1, 3, 5]);
        assert!(s.contains(a(3)));
        assert!(!s.contains(a(2)));
        assert!(vs(&[1, 5]).is_subset_of(&s));
        assert!(!vs(&[1, 2]).is_subset_of(&s));
        assert!(!vs(&[1, 3, 5, 7]).is_subset_of(&s));
    }

    #[test]
    fn value_set_disjointness() {
        assert!(vs(&[1, 3]).is_disjoint_from(&vs(&[2, 4])));
        assert!(!vs(&[1, 3]).is_disjoint_from(&vs(&[3])));
    }

    #[test]
    fn value_set_union_intersection_difference() {
        let x = vs(&[1, 2, 4]);
        let y = vs(&[2, 3]);
        assert_eq!(x.union(&y), vs(&[1, 2, 3, 4]));
        assert_eq!(x.intersection(&y), Some(vs(&[2])));
        assert_eq!(x.intersection(&vs(&[9])), None);
        assert_eq!(x.difference(&y), Some(vs(&[1, 4])));
        assert_eq!(x.difference(&x), None);
    }

    #[test]
    fn singleton_checks() {
        assert!(vs(&[7]).is_singleton());
        assert!(!vs(&[7, 8]).is_singleton());
        assert_eq!(ValueSet::from(a(7)), vs(&[7]));
    }

    #[test]
    fn tuple_from_flat_and_back() {
        let t = NfTuple::from_flat(&[a(1), a(2)]);
        assert!(t.is_flat());
        assert_eq!(t.to_flat(), Some(vec![a(1), a(2)]));
        assert_eq!(t.expansion_count(), 1);
    }

    #[test]
    fn tuple_from_values_rejects_empty_component() {
        assert!(NfTuple::from_values(vec![vec![a(1)], vec![]]).is_err());
    }

    #[test]
    fn expansion_count_is_product() {
        let t = NfTuple::new(vec![vs(&[1, 2]), vs(&[3, 4, 5])]);
        assert_eq!(t.expansion_count(), 6);
        assert!(!t.is_flat());
        assert_eq!(t.to_flat(), None);
    }

    #[test]
    fn expansion_enumerates_cartesian_product() {
        // The paper's example: [A(a1, a2) B(b1)] means {(a1,b1), (a2,b1)}.
        let t = NfTuple::new(vec![vs(&[1, 2]), vs(&[10])]);
        let flats: Vec<FlatTuple> = t.expand().collect();
        assert_eq!(flats, vec![vec![a(1), a(10)], vec![a(2), a(10)]]);
    }

    #[test]
    fn expansion_is_lexicographic_and_complete() {
        let t = NfTuple::new(vec![vs(&[1, 2]), vs(&[3, 4]), vs(&[5])]);
        let flats: Vec<FlatTuple> = t.expand().collect();
        assert_eq!(flats.len(), 4);
        let mut sorted = flats.clone();
        sorted.sort();
        assert_eq!(flats, sorted, "odometer order is lexicographic");
    }

    #[test]
    fn contains_flat_checks_membership() {
        let t = NfTuple::new(vec![vs(&[1, 2]), vs(&[3])]);
        assert!(t.contains_flat(&[a(1), a(3)]));
        assert!(!t.contains_flat(&[a(1), a(4)]));
    }

    #[test]
    fn overlap_requires_all_components_to_intersect() {
        let t = NfTuple::new(vec![vs(&[1, 2]), vs(&[3])]);
        let u = NfTuple::new(vec![vs(&[2]), vs(&[4])]);
        assert!(!t.overlaps(&u), "B components are disjoint");
        let v = NfTuple::new(vec![vs(&[2]), vs(&[3, 4])]);
        assert!(t.overlaps(&v));
    }

    #[test]
    fn containment_is_componentwise() {
        let small = NfTuple::new(vec![vs(&[1]), vs(&[3])]);
        let big = NfTuple::new(vec![vs(&[1, 2]), vs(&[3, 4])]);
        assert!(small.is_contained_in(&big));
        assert!(!big.is_contained_in(&small));
    }

    #[test]
    fn agrees_except_matches_def1_precondition() {
        // t1 = [A(a1,a2) B(b1,b2) C(c1)], t2 = [A(a1,a2) B(b3) C(c1)] —
        // the paper's §3.2 example: composable over B.
        let t1 = NfTuple::new(vec![vs(&[1, 2]), vs(&[11, 12]), vs(&[21])]);
        let t2 = NfTuple::new(vec![vs(&[1, 2]), vs(&[13]), vs(&[21])]);
        assert!(t1.agrees_except(&t2, 1));
        assert!(!t1.agrees_except(&t2, 0));
        assert!(!t1.agrees_except(&t2, 2));
    }

    #[test]
    fn with_component_replaces() {
        let t = NfTuple::new(vec![vs(&[1]), vs(&[2])]);
        let u = t.with_component(1, vs(&[5, 6]));
        assert_eq!(u.component(1), &vs(&[5, 6]));
        assert_eq!(t.component(1), &vs(&[2]), "original untouched");
    }

    #[test]
    fn display_uses_paper_notation() {
        let t = NfTuple::new(vec![vs(&[1, 2]), vs(&[3])]);
        assert_eq!(t.to_string(), "[E0(@1, @2) E1(@3)]");
    }
}
