//! The single-pass canonical nest kernel.
//!
//! [`canonicalize`](crate::nest::canonicalize) reaches the Def. 5 canonical
//! form `ν_P(R)` by `n` successive ν passes, each of which re-hashes every
//! tuple's full rest-projection (a cloned `Vec<ValueSet>` key) and
//! reallocates every component. But the canonical form is
//! *order-determined*: sort the flat rows **once**, last-nested attribute
//! outermost and first-nested attribute innermost, and the whole ν cascade
//! falls out of a bottom-up fold over contiguous runs:
//!
//! * stage 0 (`ν_{P(0)}`) needs no hashing at all — a run of rows equal on
//!   every other column *is* a group, and its `P(0)` column is already a
//!   sorted, duplicate-free set;
//! * stage `j ≥ 1` (`ν_{P(j)}`) merges tuples that agree on the remaining
//!   singleton columns `P(j+1)…P(n−1)` — contiguous runs under the sort —
//!   and, set-wise, on every already-nested position `0…j−1`. Sets are
//!   *interned* (equal content ⇔ equal id), so that set comparison is a
//!   borrowed `u32`-slice compare, never a deep `ValueSet` hash or clone.
//!
//! Within a group the `P(j)` values arrive in strictly ascending order
//! (the sort put `P(j)` innermost among the columns still singleton), so
//! every union is a plain concatenation and nothing is ever re-sorted.
//!
//! The kernel is the production path behind
//! [`canonical_of_flat`](crate::nest::canonical_of_flat); the legacy
//! cascade survives as
//! [`canonical_of_flat_legacy`](crate::nest::canonical_of_flat_legacy) and
//! [`nest_pairwise`](crate::nest::nest_pairwise) (the Theorem-2 oracle),
//! and property tests pin all three tuple-identical across the workload
//! generators.

use std::cmp::Ordering;
use std::collections::HashMap;

use crate::relation::{FlatRelation, NfRelation};
use crate::schema::NestOrder;
use crate::tuple::{FlatTuple, NfTuple, ValueSet};
use crate::value::Atom;

/// A reusable single-pass nest kernel.
///
/// Owns every scratch buffer the fold needs — the atom arena backing the
/// interned sets, the per-stage tuple buffers, and the group tables — so
/// repeated canonicalizations (bulk loads, streaming rebuilds, the E16
/// ingest loop) allocate almost nothing after warm-up.
#[derive(Debug, Default)]
pub struct NestKernel {
    /// Atom storage backing every interned set.
    arena: Vec<Atom>,
    /// Set id → `(start, len)` into [`arena`](Self::arena).
    sets: Vec<(u32, u32)>,
    /// Content hash → head set id of that hash's collision chain
    /// (verified by slice compare; chained through [`set_next`](Self::set_next)).
    dedup: HashMap<u64, u32, PreHashedState>,
    /// Set id → next set with the same content hash ([`NONE`] ends it).
    set_next: Vec<u32>,
    /// Current stage: representative sorted-row index per tuple.
    reps: Vec<u32>,
    /// Current stage: set ids per tuple (stride = nested positions so far).
    ids: Vec<u32>,
    /// Next stage under construction (swapped in at stage end).
    next_reps: Vec<u32>,
    next_ids: Vec<u32>,
    /// Group lookup for one fold stage: key hash → head group of that
    /// hash's chain (chained through [`grp_next`](Self::grp_next)).
    groups: HashMap<u64, u32, PreHashedState>,
    /// Group → next group with the same key hash ([`NONE`] ends it).
    grp_next: Vec<u32>,
    /// Tuple index → its group, for the current stage.
    tuple_group: Vec<u32>,
    /// Group → first member tuple index.
    grp_first: Vec<u32>,
    /// Group → member count (stage fold) or atom count (`nest_once`).
    grp_count: Vec<u32>,
    /// Group → run identity (start tuple index of its run).
    grp_run: Vec<u32>,
    /// Group → write cursor into [`atom_buf`](Self::atom_buf).
    grp_cursor: Vec<u32>,
    /// Bucketed merge values for the current stage, one region per group.
    atom_buf: Vec<Atom>,
}

impl NestKernel {
    /// A kernel with empty scratch buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Def. 5 — the canonical form `ν_P(R)` of a 1NF relation, computed in
    /// one sort-group pass. Tuple-identical to
    /// [`canonical_of_flat_legacy`](crate::nest::canonical_of_flat_legacy).
    pub fn canonical_of_flat(&mut self, flat: &FlatRelation, order: &NestOrder) -> NfRelation {
        let n = order.arity();
        // A hard assert, not a debug_assert: a mismatched order would fold
        // over the wrong columns and emit a structurally invalid relation
        // in release builds too.
        assert_eq!(n, flat.schema().arity(), "order must cover the schema");
        if n == 0 || flat.is_empty() {
            return NfRelation::from_flat(flat);
        }
        self.reset();

        // The one sort: last-nested attribute outermost, first-nested
        // innermost, so every ν pass groups over contiguous runs.
        let mut rows: Vec<&FlatTuple> = flat.rows().collect();
        let sort_cols: Vec<usize> = order.as_slice().iter().rev().copied().collect();
        rows.sort_unstable_by(|a, b| cmp_on(a.as_slice(), b.as_slice(), &sort_cols));

        // Stage 0 — ν over the first-nested attribute: each maximal run of
        // rows equal on all other columns folds to one tuple whose P(0)
        // set is the run's (already ascending) P(0) column.
        let p0 = *sort_cols.last().expect("arity checked non-zero");
        let prefix = &sort_cols[..n - 1];
        let mut start = 0usize;
        while start < rows.len() {
            let mut end = start + 1;
            while end < rows.len() && eq_on(rows[start], rows[end], prefix) {
                end += 1;
            }
            let base = self.arena.len();
            self.arena.extend(rows[start..end].iter().map(|r| r[p0]));
            let id = self.intern_tail(base);
            self.reps.push(start as u32);
            self.ids.push(id);
            start = end;
        }

        // Stages 1…n−1 — fold ν over P(j) on the shrinking tuple list.
        for j in 1..n {
            self.fold_stage(&rows, &sort_cols, j);
        }

        // Emit: every nest position now carries a set; place by attribute.
        let mut pos_of = vec![0usize; n];
        for (pos, &attr) in order.as_slice().iter().enumerate() {
            pos_of[attr] = pos;
        }
        let tuples: Vec<NfTuple> = (0..self.reps.len())
            .map(|t| {
                let ids = &self.ids[t * n..(t + 1) * n];
                let comps = (0..n)
                    .map(|attr| {
                        let (s, l) = self.sets[ids[pos_of[attr]] as usize];
                        ValueSet::from_sorted_unchecked(
                            self.arena[s as usize..(s + l) as usize].to_vec(),
                        )
                    })
                    .collect();
                NfTuple::new(comps)
            })
            .collect();
        NfRelation::from_tuples_unchecked(flat.schema().clone(), tuples)
    }

    /// Def. 4 — a single `ν_attr` over an NF² relation through the same
    /// interning machinery: grouping keys are borrowed id slices instead
    /// of cloned `Vec<ValueSet>` rest-projections. The kernel path behind
    /// the query layer's ad-hoc NEST operator; tuple-identical to
    /// [`nest`](crate::nest::nest).
    pub fn nest_once(&mut self, rel: &NfRelation, attr: usize) -> NfRelation {
        let n = rel.arity();
        assert!(attr < n, "attribute {attr} out of bounds for arity {n}");
        self.reset();
        self.groups.clear();
        self.grp_next.clear();
        self.grp_first.clear();
        self.grp_count.clear();
        self.tuple_group.clear();

        // Intern every component once; group keys become id slices.
        for t in rel.tuples() {
            for a in 0..n {
                let base = self.arena.len();
                self.arena.extend_from_slice(t.component(a).as_slice());
                let id = self.intern_tail(base);
                self.ids.push(id);
            }
        }

        // Pass 1: group by all component ids except `attr`, first-seen
        // order; count the atoms each group's `attr` union will hold.
        let tuples = rel.tuple_count();
        for t in 0..tuples {
            let key = &self.ids[t * n..(t + 1) * n];
            let h = hash_ids_skip(key, attr);
            let mut found = None;
            let mut cand = self.groups.get(&h).copied().unwrap_or(NONE);
            while cand != NONE {
                let f = self.grp_first[cand as usize] as usize;
                if eq_ids_skip(&self.ids[f * n..(f + 1) * n], key, attr) {
                    found = Some(cand);
                    break;
                }
                cand = self.grp_next[cand as usize];
            }
            let g = match found {
                Some(g) => g,
                None => {
                    let g = self.grp_first.len() as u32;
                    self.grp_first.push(t as u32);
                    self.grp_count.push(0);
                    self.grp_next.push(self.groups.insert(h, g).unwrap_or(NONE));
                    g
                }
            };
            self.grp_count[g as usize] += rel.tuples()[t].component(attr).len() as u32;
            self.tuple_group.push(g);
        }

        // Pass 2: bucket every tuple's `attr` atoms into its group region.
        self.grp_cursor.clear();
        let mut off = 0u32;
        for &c in &self.grp_count {
            self.grp_cursor.push(off);
            off += c;
        }
        self.atom_buf.clear();
        self.atom_buf.resize(off as usize, Atom(0));
        for t in 0..tuples {
            let g = self.tuple_group[t] as usize;
            let mut slot = self.grp_cursor[g] as usize;
            for v in rel.tuples()[t].component(attr).iter() {
                self.atom_buf[slot] = v;
                slot += 1;
            }
            self.grp_cursor[g] = slot as u32;
        }

        // Pass 3: emit one tuple per group. Members' `attr` sets
        // interleave, so the union is sorted (and, defensively, deduped)
        // by `ValueSet::new` — the only re-sort in the kernel.
        let mut out = Vec::with_capacity(self.grp_first.len());
        let mut start = 0usize;
        for g in 0..self.grp_first.len() {
            let end = start + self.grp_count[g] as usize;
            let union = ValueSet::new(self.atom_buf[start..end].to_vec())
                .expect("components are non-empty");
            let f = self.grp_first[g] as usize;
            let mut comps = rel.tuples()[f].components().to_vec();
            comps[attr] = union;
            out.push(NfTuple::new(comps));
            start = end;
        }
        NfRelation::from_tuples_unchecked(rel.schema().clone(), out)
    }

    /// One ν pass over nest position `j ≥ 1`: merge tuples equal on the
    /// still-singleton columns `P(j+1)…P(n−1)` (contiguous runs under the
    /// sort) and on the interned set ids of positions `0…j−1`.
    fn fold_stage(&mut self, rows: &[&FlatTuple], sort_cols: &[usize], j: usize) {
        let n = sort_cols.len();
        let p_j = sort_cols[n - 1 - j];
        let run_prefix = &sort_cols[..n - 1 - j];
        let tuples = self.reps.len();

        self.groups.clear();
        self.grp_next.clear();
        self.grp_first.clear();
        self.grp_count.clear();
        self.grp_run.clear();
        self.tuple_group.clear();
        self.tuple_group.reserve(tuples);

        // Pass 1: assign each tuple to a (run, set-key) group. Groups are
        // created in scan order, so group order = output order, which
        // keeps the tuple list sorted by the next stage's run prefix.
        let mut run_start = 0usize;
        for t in 0..tuples {
            if t > 0
                && !eq_on(
                    rows[self.reps[t] as usize],
                    rows[self.reps[t - 1] as usize],
                    run_prefix,
                )
            {
                run_start = t;
            }
            let key = &self.ids[t * j..(t + 1) * j];
            let h = hash_ids(run_start as u64, key);
            let mut found = None;
            let mut cand = self.groups.get(&h).copied().unwrap_or(NONE);
            while cand != NONE {
                if self.grp_run[cand as usize] == run_start as u32 {
                    let f = self.grp_first[cand as usize] as usize;
                    if self.ids[f * j..(f + 1) * j] == *key {
                        found = Some(cand);
                        break;
                    }
                }
                cand = self.grp_next[cand as usize];
            }
            let g = match found {
                Some(g) => g,
                None => {
                    let g = self.grp_first.len() as u32;
                    self.grp_first.push(t as u32);
                    self.grp_count.push(0);
                    self.grp_run.push(run_start as u32);
                    self.grp_next.push(self.groups.insert(h, g).unwrap_or(NONE));
                    g
                }
            };
            self.grp_count[g as usize] += 1;
            self.tuple_group.push(g);
        }

        // Pass 2: bucket every tuple's P(j) value into its group's region.
        // Group members arrive in strictly ascending P(j) order (module
        // docs), so each region is a sorted duplicate-free set already.
        self.grp_cursor.clear();
        let mut off = 0u32;
        for &c in &self.grp_count {
            self.grp_cursor.push(off);
            off += c;
        }
        self.atom_buf.clear();
        self.atom_buf.resize(tuples, Atom(0));
        for t in 0..tuples {
            let g = self.tuple_group[t] as usize;
            let slot = self.grp_cursor[g];
            self.atom_buf[slot as usize] = rows[self.reps[t] as usize][p_j];
            self.grp_cursor[g] = slot + 1;
        }

        // Pass 3: intern each region and emit the folded tuples.
        self.next_reps.clear();
        self.next_ids.clear();
        let mut start = 0usize;
        for g in 0..self.grp_first.len() {
            let cnt = self.grp_count[g] as usize;
            let base = self.arena.len();
            self.arena.reserve(cnt);
            for i in start..start + cnt {
                let v = self.atom_buf[i];
                self.arena.push(v);
            }
            let id = self.intern_tail(base);
            let f = self.grp_first[g] as usize;
            self.next_reps.push(self.reps[f]);
            for pos in 0..j {
                let carried = self.ids[f * j + pos];
                self.next_ids.push(carried);
            }
            self.next_ids.push(id);
            start += cnt;
        }
        std::mem::swap(&mut self.reps, &mut self.next_reps);
        std::mem::swap(&mut self.ids, &mut self.next_ids);
    }

    /// Interns the provisional arena tail `arena[base..]` as a set: when an
    /// equal set already exists the tail is dropped and the existing id
    /// returned, so equal content always means equal id.
    fn intern_tail(&mut self, base: usize) -> u32 {
        let len = self.arena.len() - base;
        debug_assert!(len > 0, "sets are non-empty");
        let h = hash_atoms(&self.arena[base..]);
        let mut cand = self.dedup.get(&h).copied().unwrap_or(NONE);
        while cand != NONE {
            let (s, l) = self.sets[cand as usize];
            if l as usize == len && self.arena[s as usize..s as usize + len] == self.arena[base..] {
                self.arena.truncate(base);
                return cand;
            }
            cand = self.set_next[cand as usize];
        }
        let id = self.sets.len() as u32;
        self.sets.push((base as u32, len as u32));
        self.set_next.push(self.dedup.insert(h, id).unwrap_or(NONE));
        id
    }

    /// Clears call-scoped state (arena, interner, stage buffers) while
    /// keeping every allocation for reuse.
    fn reset(&mut self) {
        self.arena.clear();
        self.sets.clear();
        self.set_next.clear();
        self.dedup.clear();
        self.reps.clear();
        self.ids.clear();
    }
}

/// Canonical form of a 1NF relation through a throwaway kernel — the
/// one-shot convenience behind [`crate::nest::canonical_of_flat`].
pub fn canonical_of_flat(flat: &FlatRelation, order: &NestOrder) -> NfRelation {
    NestKernel::new().canonical_of_flat(flat, order)
}

#[inline]
fn cmp_on(a: &[Atom], b: &[Atom], cols: &[usize]) -> Ordering {
    for &c in cols {
        match a[c].cmp(&b[c]) {
            Ordering::Equal => {}
            o => return o,
        }
    }
    Ordering::Equal
}

#[inline]
fn eq_on(a: &[Atom], b: &[Atom], cols: &[usize]) -> bool {
    cols.iter().all(|&c| a[c] == b[c])
}

/// End-of-chain sentinel for the intrusive collision lists.
const NONE: u32 = u32::MAX;

/// The kernel's map keys are already well-mixed 64-bit hashes, so the
/// maps use an identity hasher — no SipHash, no per-entry `Vec`s
/// (collisions chain through `set_next` / `grp_next`).
#[derive(Debug, Default, Clone, Copy)]
struct PreHashed(u64);

impl std::hash::Hasher for PreHashed {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("the kernel maps hash u64 keys only")
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

/// [`std::hash::BuildHasher`] for [`PreHashed`].
#[derive(Debug, Default, Clone, Copy)]
struct PreHashedState;

impl std::hash::BuildHasher for PreHashedState {
    type Hasher = PreHashed;
    fn build_hasher(&self) -> PreHashed {
        PreHashed(0)
    }
}

/// FxHash-style mixing: fast, with collisions resolved by slice compare.
const HASH_K: u64 = 0x517c_c1b7_2722_0a95;

#[inline]
fn mix(h: u64, v: u64) -> u64 {
    (h.rotate_left(5) ^ v).wrapping_mul(HASH_K)
}

#[inline]
fn hash_atoms(atoms: &[Atom]) -> u64 {
    let mut h = mix(0x9E37_79B9, atoms.len() as u64);
    for a in atoms {
        h = mix(h, u64::from(a.0));
    }
    h
}

#[inline]
fn hash_ids(seed: u64, ids: &[u32]) -> u64 {
    let mut h = mix(seed.wrapping_add(0x85EB_CA6B), ids.len() as u64);
    for &i in ids {
        h = mix(h, u64::from(i));
    }
    h
}

#[inline]
fn hash_ids_skip(ids: &[u32], skip: usize) -> u64 {
    let mut h = mix(0xC2B2_AE35, ids.len() as u64);
    for (pos, &i) in ids.iter().enumerate() {
        if pos != skip {
            h = mix(h, u64::from(i));
        }
    }
    h
}

#[inline]
fn eq_ids_skip(a: &[u32], b: &[u32], skip: usize) -> bool {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .enumerate()
        .all(|(pos, (x, y))| pos == skip || x == y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nest::{canonical_of_flat_legacy, nest};
    use crate::schema::Schema;
    use std::sync::Arc;

    fn schema(attrs: &[&str]) -> Arc<Schema> {
        Schema::new("R", attrs).unwrap()
    }

    fn flat(schema: Arc<Schema>, rows: &[&[u32]]) -> FlatRelation {
        FlatRelation::from_rows(
            schema,
            rows.iter().map(|r| r.iter().map(|&v| Atom(v)).collect()),
        )
        .unwrap()
    }

    /// A deterministic pseudo-random flat relation over `arity` attributes.
    fn random_flat(arity: usize, rows: usize, domain: u32, seed: u64) -> FlatRelation {
        let names: Vec<String> = (0..arity).map(|i| format!("E{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let s = Schema::new("RND", &refs).unwrap();
        let mut state = seed | 1;
        let mut out = Vec::new();
        for _ in 0..rows {
            let row: Vec<Atom> = (0..arity)
                .map(|a| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    Atom(100 * a as u32 + (state >> 33) as u32 % domain)
                })
                .collect();
            out.push(row);
        }
        FlatRelation::from_rows(s, out).unwrap()
    }

    #[test]
    fn kernel_matches_legacy_on_example1_all_orders() {
        let s = schema(&["A", "B"]);
        let f = flat(s, &[&[1, 11], &[2, 11], &[2, 12], &[3, 12]]);
        let mut k = NestKernel::new();
        for order in NestOrder::all(2) {
            assert_eq!(
                k.canonical_of_flat(&f, &order),
                canonical_of_flat_legacy(&f, &order),
                "order {order}"
            );
        }
    }

    #[test]
    fn kernel_matches_legacy_on_random_relations_all_orders() {
        let mut k = NestKernel::new();
        for arity in 1..=4usize {
            for seed in 0..6u64 {
                let f = random_flat(arity, 60, 4, 0xBEEF ^ seed);
                for order in NestOrder::all(arity) {
                    assert_eq!(
                        k.canonical_of_flat(&f, &order),
                        canonical_of_flat_legacy(&f, &order),
                        "arity {arity} seed {seed} order {order}"
                    );
                }
            }
        }
    }

    #[test]
    fn kernel_reuse_is_sound_across_shapes() {
        // The same kernel instance, alternating schemas and orders.
        let mut k = NestKernel::new();
        for round in 0..4u64 {
            for arity in 2..=3usize {
                let f = random_flat(arity, 40, 3, round * 7 + arity as u64);
                for order in NestOrder::all(arity) {
                    let fresh = NestKernel::new().canonical_of_flat(&f, &order);
                    assert_eq!(k.canonical_of_flat(&f, &order), fresh);
                }
            }
        }
    }

    #[test]
    fn kernel_preserves_expansion() {
        let f = random_flat(3, 80, 4, 99);
        let mut k = NestKernel::new();
        for order in NestOrder::all(3) {
            assert_eq!(k.canonical_of_flat(&f, &order).expand(), f, "order {order}");
        }
    }

    #[test]
    fn kernel_handles_empty_and_degenerate() {
        let s = schema(&["A", "B"]);
        let empty = FlatRelation::new(s);
        let mut k = NestKernel::new();
        assert!(k
            .canonical_of_flat(&empty, &NestOrder::identity(2))
            .is_empty());
        // Single attribute: everything folds into one tuple.
        let s1 = schema(&["A"]);
        let f1 = flat(s1, &[&[3], &[1], &[2]]);
        let c = k.canonical_of_flat(&f1, &NestOrder::identity(1));
        assert_eq!(c.tuple_count(), 1);
        assert_eq!(c.tuples()[0].component(0).len(), 3);
        // Single row: identity.
        let s2 = schema(&["A", "B"]);
        let f2 = flat(s2, &[&[1, 2]]);
        let c = k.canonical_of_flat(&f2, &NestOrder::identity(2));
        assert_eq!(c.tuple_count(), 1);
        assert!(c.tuples()[0].is_flat());
    }

    #[test]
    fn nest_once_matches_nest() {
        let mut k = NestKernel::new();
        for seed in 0..5u64 {
            let f = random_flat(3, 50, 4, 0xABCD ^ seed);
            // Exercise both flat input and already-nested input.
            let base = NfRelation::from_flat(&f);
            for attr in 0..3 {
                assert_eq!(k.nest_once(&base, attr), nest(&base, attr));
            }
            let nested = nest(&base, 0);
            for attr in 0..3 {
                assert_eq!(
                    k.nest_once(&nested, attr),
                    nest(&nested, attr),
                    "seed {seed} attr {attr}"
                );
            }
        }
    }
}
