//! Shard-snapshot MVCC: immutable shard versions behind an epoch cell.
//!
//! The concurrency model of the engine is *publish, don't mutate*: each
//! shard's canonical form (tuple store + columnar segments + zone
//! synopsis) lives in an immutable [`ShardVersion`] published by `Arc`.
//! A table's current state is one [`TableVersion`] — an epoch number
//! plus one `Arc<ShardVersion>` per shard — held in a [`VersionCell`].
//!
//! * **Readers** call [`VersionCell::pin`] once at statement start; the
//!   returned `Arc<TableVersion>` is a stable snapshot that stays alive
//!   (and valid) for as long as the reader holds it, no matter how many
//!   writes are installed after. Streaming a cursor takes no locks.
//! * **Writers** build replacement `ShardVersion`s off to the side
//!   (copy-on-write via [`std::sync::Arc::make_mut`] inside
//!   [`crate::shard::ShardedCanonical`]) and swap them in with
//!   [`VersionCell::install`] — one write-lock acquisition and a single
//!   epoch bump per statement, touching only the shards the statement
//!   routed to. A write routed to shard 3 never invalidates, copies, or
//!   stalls a pruned read on shard 0: shard 0's `Arc` is carried into
//!   the next version untouched. Concurrent writers on *different*
//!   shards publish through [`VersionCell::submit`], which coalesces
//!   racing commits into one epoch bump while keeping each writer's
//!   observed bump in {0, 1}.
//!
//! The epoch is the table's logical clock: it increments exactly once
//! per installed state change, so downstream caches (the merged-relation
//! cache, prepared-plan revalidation) key on it instead of guessing at
//! invalidation.
//!
//! This module is the only place in the workspace allowed to use
//! non-`Relaxed` atomic orderings (enforced by `cargo xtask lint`);
//! here the synchronization is delegated entirely to [`RwLock`] and
//! `Arc`, which provide the needed acquire/release edges.

use std::sync::{Arc, Mutex, RwLock};

use crate::maintenance::CanonicalRelation;
use crate::relation::NfRelation;
use crate::segment::ShardSegments;
use crate::tuple::{NfTuple, TupleStore};

/// One shard's immutable state: its canonical form plus the columnar
/// segment synopsis built over the same tuple ordering.
///
/// A `ShardVersion` is never mutated after publication — writers clone
/// it (copy-on-write) and publish the replacement. Bundling the tuple
/// store and its zone synopsis in one value means readers can never
/// observe segments that describe a different tuple vector than the one
/// they scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardVersion {
    pub(crate) canon: CanonicalRelation,
    pub(crate) segments: ShardSegments,
}

impl ShardVersion {
    /// Bundles a canonical form with its segment synopsis.
    pub fn new(canon: CanonicalRelation, segments: ShardSegments) -> Self {
        Self { canon, segments }
    }

    /// The canonical form stored in this version.
    pub fn canon(&self) -> &CanonicalRelation {
        &self.canon
    }

    /// The NF² relation stored in this version.
    pub fn relation(&self) -> &NfRelation {
        self.canon.relation()
    }

    /// The tuples stored in this version.
    pub fn tuples(&self) -> &[NfTuple] {
        self.canon.relation().tuples()
    }

    /// The columnar segment synopsis over [`tuples`](Self::tuples).
    pub fn segments(&self) -> &ShardSegments {
        &self.segments
    }

    /// Number of NF² tuples in this version.
    pub fn tuple_count(&self) -> usize {
        self.canon.tuple_count()
    }

    /// Number of flat rows this version represents.
    pub fn flat_count(&self) -> u128 {
        self.canon.flat_count()
    }

    /// Whether the flat tuple is represented in this version.
    pub fn contains(&self, flat: &[crate::value::Atom]) -> bool {
        self.canon.contains(flat)
    }
}

impl TupleStore for ShardVersion {
    fn tuples(&self) -> &[NfTuple] {
        ShardVersion::tuples(self)
    }
}

/// A table's published state at one epoch: an `Arc` per shard.
///
/// Snapshots are cheap — pinning clones one outer `Arc`; the shard
/// vector itself is shared between consecutive versions except for the
/// shards a write actually touched.
#[derive(Debug, Clone)]
pub struct TableVersion {
    epoch: u64,
    shards: Vec<Arc<ShardVersion>>,
}

impl TableVersion {
    /// A fresh version at epoch 0.
    pub fn new(shards: Vec<Arc<ShardVersion>>) -> Self {
        Self { epoch: 0, shards }
    }

    /// The epoch this version was installed at. Epoch 0 is the state
    /// the table was created (or loaded) with.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The per-shard versions.
    pub fn shards(&self) -> &[Arc<ShardVersion>] {
        &self.shards
    }

    /// One shard's version.
    pub fn shard(&self, idx: usize) -> &Arc<ShardVersion> {
        &self.shards[idx]
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total NF² tuples across all shards.
    pub fn tuple_count(&self) -> usize {
        self.shards.iter().map(|s| s.tuple_count()).sum()
    }

    /// Total flat rows across all shards.
    pub fn flat_count(&self) -> u128 {
        self.shards.iter().map(|s| s.flat_count()).sum()
    }
}

/// The mutable cell holding a table's current [`TableVersion`].
///
/// The `RwLock` protects only the `Arc` swap — readers hold it for the
/// nanoseconds it takes to clone the `Arc`, never while scanning.
/// *Per-shard* writer mutual exclusion is not this cell's job (the
/// storage layer holds one lock per shard while building a replacement
/// version); what the cell does arbitrate is the final publication
/// step. Single-owner paths use [`install`](Self::install) /
/// [`install_all`](Self::install_all); concurrent per-shard commits go
/// through [`submit`](Self::submit), which coalesces racing commits
/// from different shards into one epoch bump.
#[derive(Debug)]
pub struct VersionCell {
    inner: RwLock<Arc<TableVersion>>,
    /// Shard commits handed over by writers but not yet folded into a
    /// published `TableVersion`. Drained in full by whichever submitter
    /// wins the write lock next (the install leader).
    pending: Mutex<Vec<(usize, Arc<ShardVersion>)>>,
}

impl VersionCell {
    /// A cell starting at epoch 0 with the given shard versions.
    pub fn new(shards: Vec<Arc<ShardVersion>>) -> Self {
        Self {
            inner: RwLock::new(Arc::new(TableVersion::new(shards))),
            pending: Mutex::new(Vec::new()),
        }
    }

    /// Pins the current version. The returned snapshot is immutable and
    /// stays valid for as long as the caller holds it.
    pub fn pin(&self) -> Arc<TableVersion> {
        Arc::clone(
            &self
                .inner
                .read()
                .expect("version cell poisoned: install never panics while holding the lock"),
        )
    }

    /// The current epoch without pinning.
    pub fn epoch(&self) -> u64 {
        self.inner
            .read()
            .expect("version cell poisoned: install never panics while holding the lock")
            .epoch
    }

    /// Installs replacement versions for the touched shards behind a
    /// single epoch bump and returns the new epoch.
    ///
    /// Untouched shards carry their existing `Arc`s into the new
    /// version unchanged, so concurrent readers pruned to those shards
    /// are completely unaffected. Out-of-range shard indices are a
    /// caller bug and panic.
    pub fn install(&self, touched: Vec<(usize, Arc<ShardVersion>)>) -> u64 {
        let mut guard = self
            .inner
            .write()
            .expect("version cell poisoned: install never panics while holding the lock");
        let mut next = TableVersion {
            epoch: guard.epoch + 1,
            shards: guard.shards.clone(),
        };
        for (idx, version) in touched {
            next.shards[idx] = version;
        }
        let epoch = next.epoch;
        *guard = Arc::new(next);
        epoch
    }

    /// Submits shard commits for publication, coalescing with any
    /// concurrent submitters, and returns the epoch at which the
    /// entries are visible.
    ///
    /// Protocol: the submitter first enqueues its `(shard, version)`
    /// entries, then contends for the cell's write lock. Whoever wins
    /// the lock becomes the install leader and drains *everything*
    /// pending — its own entries plus any that raced in — behind one
    /// epoch bump. A submitter that acquires the lock and finds the
    /// queue empty learns its entries were already installed by an
    /// earlier leader and observes a bump of zero. Either way, by the
    /// time `submit` returns the caller's entries are published, so the
    /// epoch moves by exactly {0, 1} per submitter and PR 8's snapshot
    /// protocol is preserved under concurrent writers.
    ///
    /// Callers MUST hold their per-shard writer lock across the whole
    /// call: at most one in-flight commit may exist per shard, so the
    /// pending queue never holds two entries for the same shard and
    /// drain order within the queue is irrelevant.
    pub fn submit(&self, touched: Vec<(usize, Arc<ShardVersion>)>) -> u64 {
        self.pending
            .lock()
            .expect("pending queue poisoned: enqueue never panics while holding the lock")
            .extend(touched);
        let mut guard = self
            .inner
            .write()
            .expect("version cell poisoned: install never panics while holding the lock");
        let drained = std::mem::take(
            &mut *self
                .pending
                .lock()
                .expect("pending queue poisoned: drain never panics while holding the lock"),
        );
        if drained.is_empty() {
            // A racing leader already published our entries.
            return guard.epoch;
        }
        let mut next = TableVersion {
            epoch: guard.epoch + 1,
            shards: guard.shards.clone(),
        };
        for (idx, version) in drained {
            next.shards[idx] = version;
        }
        let epoch = next.epoch;
        *guard = Arc::new(next);
        epoch
    }

    /// Installs a full replacement shard vector (all shards touched —
    /// bulk rebuilds, re-tiling) behind a single epoch bump.
    pub fn install_all(&self, shards: Vec<Arc<ShardVersion>>) -> u64 {
        let mut guard = self
            .inner
            .write()
            .expect("version cell poisoned: install never panics while holding the lock");
        let next = TableVersion {
            epoch: guard.epoch + 1,
            shards,
        };
        let epoch = next.epoch;
        *guard = Arc::new(next);
        epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::FlatRelation;
    use crate::schema::{NestOrder, Schema};
    use crate::segment::DEFAULT_SEGMENT_ROWS;
    use crate::value::Atom;

    fn version_of(rows: &[[u32; 2]]) -> Arc<ShardVersion> {
        let schema = Schema::new("T", &["A", "B"]).unwrap();
        let flat =
            FlatRelation::from_rows(schema, rows.iter().map(|r| vec![Atom(r[0]), Atom(r[1])]))
                .unwrap();
        let canon = CanonicalRelation::from_flat(&flat, NestOrder::identity(2)).unwrap();
        let mut segments = ShardSegments::fresh_empty();
        segments.rebuild(canon.relation().tuples(), Some(1), DEFAULT_SEGMENT_ROWS);
        Arc::new(ShardVersion::new(canon, segments))
    }

    #[test]
    fn pinned_snapshots_survive_installs() {
        let v0 = version_of(&[[1, 10], [2, 10]]);
        let cell = VersionCell::new(vec![Arc::clone(&v0)]);
        let pinned = cell.pin();
        assert_eq!(pinned.epoch(), 0);
        assert_eq!(pinned.flat_count(), 2);

        let v1 = version_of(&[[1, 10], [2, 10], [3, 11]]);
        let e = cell.install(vec![(0, v1)]);
        assert_eq!(e, 1);
        assert_eq!(cell.epoch(), 1);

        // The old pin still reads the old state.
        assert_eq!(pinned.epoch(), 0);
        assert_eq!(pinned.flat_count(), 2);
        assert_eq!(cell.pin().flat_count(), 3);
    }

    #[test]
    fn install_leaves_untouched_shards_shared() {
        let a = version_of(&[[1, 10]]);
        let b = version_of(&[[2, 11]]);
        let cell = VersionCell::new(vec![Arc::clone(&a), Arc::clone(&b)]);
        let before = cell.pin();
        cell.install(vec![(1, version_of(&[[2, 11], [3, 11]]))]);
        let after = cell.pin();
        assert!(
            Arc::ptr_eq(before.shard(0), after.shard(0)),
            "shard 0 carried over by pointer identity"
        );
        assert!(!Arc::ptr_eq(before.shard(1), after.shard(1)));
    }

    #[test]
    fn install_all_replaces_every_shard() {
        let cell = VersionCell::new(vec![version_of(&[[1, 10]]), version_of(&[[2, 11]])]);
        let e = cell.install_all(vec![version_of(&[[5, 5]]), version_of(&[[6, 6]])]);
        assert_eq!(e, 1);
        let v = cell.pin();
        assert_eq!(v.shard_count(), 2);
        assert_eq!(v.flat_count(), 2);
    }

    #[test]
    fn shard_version_exposes_store_views() {
        let v = version_of(&[[1, 10], [1, 11]]);
        assert_eq!(v.tuple_count(), 1, "both B values nest under A=1");
        assert_eq!(v.flat_count(), 2);
        assert!(v.contains(&[Atom(1), Atom(10)]));
        let store: Arc<dyn TupleStore> = v.clone();
        assert_eq!(store.tuples().len(), 1);
        let view = crate::tuple::TupleView::shared(store, 0);
        assert!(view.is_zero_copy());
        assert!(!view.is_borrowed());
        assert_eq!(view.as_tuple(), &v.tuples()[0]);
        assert_eq!(view.clone().into_owned(), v.tuples()[0]);
    }

    #[test]
    fn submit_publishes_with_single_bump_when_uncontended() {
        let cell = VersionCell::new(vec![version_of(&[[1, 10]]), version_of(&[[2, 11]])]);
        let e = cell.submit(vec![(0, version_of(&[[1, 10], [3, 10]]))]);
        assert_eq!(e, 1, "an uncontended submit behaves exactly like install");
        assert_eq!(cell.pin().flat_count(), 3);
        let e2 = cell.submit(vec![(1, version_of(&[[2, 11], [4, 11]]))]);
        assert_eq!(e2, 2);
        assert_eq!(cell.pin().flat_count(), 4);
    }

    #[test]
    fn concurrent_submits_coalesce_without_losing_commits() {
        // 4 submitters, each owning a distinct shard, race 100 rounds.
        // Every round every shard's commit must land, and the total
        // epoch advance can never exceed the number of submit calls.
        let shards = 4usize;
        let cell = Arc::new(VersionCell::new(
            (0..shards)
                .map(|s| version_of(&[[s as u32, 0]]))
                .collect::<Vec<_>>(),
        ));
        let rounds = 100u32;
        std::thread::scope(|scope| {
            for s in 0..shards {
                let c = Arc::clone(&cell);
                scope.spawn(move || {
                    let mut last = 0;
                    for n in 1..=rounds {
                        let e = c.submit(vec![(s, version_of(&[[s as u32, n]]))]);
                        assert!(e >= last, "observed epochs are monotone per submitter");
                        last = e;
                    }
                });
            }
        });
        let v = cell.pin();
        for s in 0..shards {
            assert!(
                v.shard(s).contains(&[Atom(s as u32), Atom(rounds)]),
                "every submitter's final commit is published"
            );
        }
        assert!(
            v.epoch() <= (shards as u64) * u64::from(rounds),
            "epoch advances at most once per submit call"
        );
        assert!(v.epoch() > 0, "commits actually bumped the epoch");
    }

    #[test]
    fn concurrent_pins_and_installs_are_consistent() {
        let cell = Arc::new(VersionCell::new(vec![version_of(&[[1, 10]])]));
        std::thread::scope(|s| {
            let c = Arc::clone(&cell);
            s.spawn(move || {
                for n in 0..50u32 {
                    c.install(vec![(0, version_of(&[[1, 10], [2, 10 + n]]))]);
                }
            });
            for _ in 0..4 {
                let c = Arc::clone(&cell);
                s.spawn(move || {
                    let mut last = 0;
                    for _ in 0..200 {
                        let v = c.pin();
                        assert!(v.epoch() >= last, "epochs are monotone");
                        last = v.epoch();
                        // A pinned version is internally consistent.
                        assert_eq!(v.shard_count(), 1);
                        let _ = v.flat_count();
                    }
                });
            }
        });
        assert_eq!(cell.epoch(), 50);
    }
}
