//! Paper-style rendering of relations (Figs. 1–2).
//!
//! The figures in the paper draw NFRs as boxed tables whose cells list the
//! member values of each component, e.g.
//!
//! ```text
//! | Student    | Course     | Club |
//! |------------|------------|------|
//! | s1         | c1, c2, c3 | b1   |
//! ```
//!
//! These helpers produce the same shape using a [`Dictionary`] to resolve
//! atom names.

use crate::relation::{FlatRelation, NfRelation};
use crate::value::Dictionary;

/// Renders an NFR as an ASCII table in the style of Fig. 1.
///
/// Tuples are printed in canonical sorted order so output is deterministic.
pub fn render_nf(rel: &NfRelation, dict: &Dictionary) -> String {
    let headers: Vec<String> = rel.schema().attr_names().map(str::to_owned).collect();
    let rows: Vec<Vec<String>> = rel
        .sorted_tuples()
        .iter()
        .map(|t| {
            t.components()
                .iter()
                .map(|c| {
                    c.iter()
                        .map(|a| dict.resolve_or_id(a))
                        .collect::<Vec<_>>()
                        .join(", ")
                })
                .collect()
        })
        .collect();
    render_table(rel.schema().name(), &headers, &rows)
}

/// Renders a 1NF relation as an ASCII table.
pub fn render_flat(rel: &FlatRelation, dict: &Dictionary) -> String {
    let headers: Vec<String> = rel.schema().attr_names().map(str::to_owned).collect();
    let rows: Vec<Vec<String>> = rel
        .rows()
        .map(|r| r.iter().map(|&a| dict.resolve_or_id(a)).collect())
        .collect();
    render_table(rel.schema().name(), &headers, &rows)
}

/// Generic fixed-width table rendering shared by the two entry points and
/// the bench harness's report tables.
pub fn render_table(title: &str, headers: &[String], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    if !title.is_empty() {
        out.push_str(title);
        out.push('\n');
    }
    let rule = |out: &mut String| {
        out.push('+');
        for w in &widths {
            out.push_str(&"-".repeat(w + 2));
            out.push('+');
        }
        out.push('\n');
    };
    let line = |out: &mut String, cells: &[String]| {
        out.push('|');
        for (i, w) in widths.iter().enumerate() {
            let cell = cells.get(i).map(String::as_str).unwrap_or("");
            out.push(' ');
            out.push_str(cell);
            out.push_str(&" ".repeat(w - cell.len() + 1));
            out.push('|');
        }
        out.push('\n');
    };
    rule(&mut out);
    line(&mut out, headers);
    rule(&mut out);
    for row in rows {
        line(&mut out, row);
    }
    rule(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::NfRelation;
    use crate::schema::Schema;
    use crate::tuple::{NfTuple, ValueSet};
    use crate::value::{Atom, Dictionary};

    #[test]
    fn renders_fig1_style_table() {
        let mut dict = Dictionary::new();
        let s1 = dict.intern("s1");
        let c1 = dict.intern("c1");
        let c2 = dict.intern("c2");
        let b1 = dict.intern("b1");
        let schema = Schema::new("R1", &["Student", "Course", "Club"]).unwrap();
        let rel = NfRelation::from_tuples(
            schema,
            vec![NfTuple::new(vec![
                ValueSet::singleton(s1),
                ValueSet::new(vec![c1, c2]).unwrap(),
                ValueSet::singleton(b1),
            ])],
        )
        .unwrap();
        let table = render_nf(&rel, &dict);
        assert!(table.contains("R1"));
        assert!(table.contains("Student"));
        assert!(table.contains("c1, c2"));
        assert!(table.contains("| s1"));
    }

    #[test]
    fn renders_flat_table() {
        let mut dict = Dictionary::new();
        let schema = Schema::new("F", &["A", "B"]).unwrap();
        let rel = crate::relation::FlatRelation::from_rows(
            schema,
            vec![vec![dict.intern("x"), dict.intern("y")]],
        )
        .unwrap();
        let table = render_flat(&rel, &dict);
        assert!(table.contains("| x "));
        assert!(table.contains("| y "));
    }

    #[test]
    fn unresolved_atoms_fall_back_to_ids() {
        let dict = Dictionary::new();
        let schema = Schema::new("R", &["A"]).unwrap();
        let rel = NfRelation::from_tuples(
            schema,
            vec![NfTuple::new(vec![ValueSet::singleton(Atom(7))])],
        )
        .unwrap();
        assert!(render_nf(&rel, &dict).contains("@7"));
    }

    #[test]
    fn table_widths_accommodate_long_cells() {
        let headers = vec!["A".to_owned()];
        let rows = vec![vec!["a-very-long-value".to_owned()]];
        let t = render_table("T", &headers, &rows);
        for line in t.lines().filter(|l| l.starts_with('+')) {
            assert_eq!(line.len(), "a-very-long-value".len() + 4);
        }
    }
}
