//! Relation schemas and nest orders.
//!
//! A schema names the simple domains `E1 … En` a relation is defined over.
//! A [`NestOrder`] is the permutation `P` of Def. 5: the sequence in which
//! [`nest`](crate::nest::nest) is applied to reach a canonical form.

use std::fmt;
use std::sync::Arc;

use crate::error::{NfError, Result};

/// Index of an attribute within a schema (0-based).
pub type AttrId = usize;

/// A named list of attributes (simple domains) `E1 … En`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Schema {
    name: String,
    attrs: Vec<String>,
}

impl Schema {
    /// Builds a schema from a relation name and attribute names.
    ///
    /// Attribute names must be unique and non-empty.
    pub fn new<S: Into<String>>(name: S, attrs: &[&str]) -> Result<Arc<Self>> {
        let name = name.into();
        let mut seen = std::collections::HashSet::new();
        for a in attrs {
            if a.is_empty() {
                return Err(NfError::UnknownAttribute("<empty>".into()));
            }
            if !seen.insert(*a) {
                return Err(NfError::UnknownAttribute(format!(
                    "duplicate attribute {a}"
                )));
            }
        }
        Ok(Arc::new(Self {
            name,
            attrs: attrs.iter().map(|s| (*s).to_owned()).collect(),
        }))
    }

    /// The relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of attributes (the paper's *degree* `n`).
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Attribute names in declaration order.
    pub fn attr_names(&self) -> impl Iterator<Item = &str> {
        self.attrs.iter().map(String::as_str)
    }

    /// Resolves an attribute name to its index.
    pub fn attr_id(&self, name: &str) -> Result<AttrId> {
        self.attrs
            .iter()
            .position(|a| a == name)
            .ok_or_else(|| NfError::UnknownAttribute(name.to_owned()))
    }

    /// The name of attribute `id`.
    pub fn attr_name(&self, id: AttrId) -> Result<&str> {
        self.attrs
            .get(id)
            .map(String::as_str)
            .ok_or(NfError::AttrOutOfBounds {
                attr: id,
                arity: self.arity(),
            })
    }

    /// Whether two schemas describe the same attribute list (names may
    /// differ; compatibility is structural, per the paper's domain-based
    /// treatment).
    pub fn compatible_with(&self, other: &Schema) -> bool {
        self.attrs == other.attrs
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.name, self.attrs.join(", "))
    }
}

/// The permutation `P` of Def. 5, stored in **application order**: the
/// attribute at position 0 is nested first, the attribute at the last
/// position is nested last.
///
/// The paper writes `ν_P` for `P = P(E1) … P(En)` with
/// `ν_{EiEj}(R) = ν_{Ei}(ν_{Ej}(R))`, i.e. the *last listed* attribute is
/// applied *first*. Storing application order directly removes that
/// ambiguity (DESIGN.md D2); use [`NestOrder::from_paper_notation`] to
/// convert a sequence written in the paper's convention.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NestOrder(Vec<AttrId>);

impl NestOrder {
    /// Builds a nest order from attribute indices in application order.
    ///
    /// The order must be a permutation of `0..arity`.
    pub fn new(order: Vec<AttrId>, arity: usize) -> Result<Self> {
        if order.len() != arity {
            return Err(NfError::InvalidNestOrder(format!(
                "order has {} entries, schema has arity {}",
                order.len(),
                arity
            )));
        }
        let mut seen = vec![false; arity];
        for &a in &order {
            if a >= arity {
                return Err(NfError::InvalidNestOrder(format!(
                    "attribute index {a} out of bounds for arity {arity}"
                )));
            }
            if seen[a] {
                return Err(NfError::InvalidNestOrder(format!(
                    "attribute {a} listed twice"
                )));
            }
            seen[a] = true;
        }
        Ok(Self(order))
    }

    /// The identity order `E1, E2, …, En` (nest `E1` first).
    ///
    /// This is the canonical orientation used by §4's update algorithms,
    /// whose permutation `P = En En-1 … E1` applies `ν_{E1}` first.
    pub fn identity(arity: usize) -> Self {
        Self((0..arity).collect())
    }

    /// Converts a sequence written in the paper's `ν_{P(E1) … P(En)}`
    /// notation (last listed applied first) into application order.
    pub fn from_paper_notation(listed: Vec<AttrId>, arity: usize) -> Result<Self> {
        let mut order = listed;
        order.reverse();
        Self::new(order, arity)
    }

    /// Builds a nest order from attribute names in application order.
    pub fn from_names(schema: &Schema, names: &[&str]) -> Result<Self> {
        let order = names
            .iter()
            .map(|n| schema.attr_id(n))
            .collect::<Result<Vec<_>>>()?;
        Self::new(order, schema.arity())
    }

    /// Attribute indices in application order.
    pub fn as_slice(&self) -> &[AttrId] {
        &self.0
    }

    /// Number of attributes covered.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The attribute nested at position `pos` (0 = first applied).
    pub fn attr_at(&self, pos: usize) -> AttrId {
        self.0[pos]
    }

    /// The position at which attribute `attr` is nested.
    pub fn position_of(&self, attr: AttrId) -> usize {
        self.0
            .iter()
            .position(|&a| a == attr)
            .expect("attribute must be covered by the nest order")
    }

    /// Enumerates all `n!` nest orders over `arity` attributes
    /// (Def. 5: "we have n! permutations and so do canonical forms").
    ///
    /// Intended for small arities; the count grows factorially.
    pub fn all(arity: usize) -> Vec<NestOrder> {
        let mut result = Vec::new();
        let mut current: Vec<AttrId> = (0..arity).collect();
        permute(&mut current, 0, &mut result);
        result
    }
}

fn permute(current: &mut Vec<AttrId>, k: usize, out: &mut Vec<NestOrder>) {
    if k == current.len() {
        out.push(NestOrder(current.clone()));
        return;
    }
    for i in k..current.len() {
        current.swap(k, i);
        permute(current, k + 1, out);
        current.swap(k, i);
    }
}

impl fmt::Display for NestOrder {
    /// Writes application order as `E0 -> E1 -> …`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.0.iter().map(|a| format!("E{a}")).collect();
        write!(f, "{}", parts.join(" -> "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_basics() {
        let s = Schema::new("SC", &["Student", "Course"]).unwrap();
        assert_eq!(s.arity(), 2);
        assert_eq!(s.attr_id("Course").unwrap(), 1);
        assert_eq!(s.attr_name(0).unwrap(), "Student");
        assert!(s.attr_id("Club").is_err());
        assert!(s.attr_name(5).is_err());
        assert_eq!(s.to_string(), "SC(Student, Course)");
    }

    #[test]
    fn schema_rejects_duplicate_attrs() {
        assert!(Schema::new("R", &["A", "A"]).is_err());
        assert!(Schema::new("R", &["A", ""]).is_err());
    }

    #[test]
    fn schema_compatibility_is_structural() {
        let a = Schema::new("R", &["A", "B"]).unwrap();
        let b = Schema::new("S", &["A", "B"]).unwrap();
        let c = Schema::new("T", &["A", "C"]).unwrap();
        assert!(a.compatible_with(&b));
        assert!(!a.compatible_with(&c));
    }

    #[test]
    fn nest_order_validation() {
        assert!(NestOrder::new(vec![0, 1, 2], 3).is_ok());
        assert!(NestOrder::new(vec![0, 1], 3).is_err());
        assert!(NestOrder::new(vec![0, 0, 1], 3).is_err());
        assert!(NestOrder::new(vec![0, 1, 5], 3).is_err());
    }

    #[test]
    fn identity_order() {
        let o = NestOrder::identity(3);
        assert_eq!(o.as_slice(), &[0, 1, 2]);
        assert_eq!(o.attr_at(0), 0);
        assert_eq!(o.position_of(2), 2);
    }

    #[test]
    fn paper_notation_reverses() {
        // P = E2 E1 E0 in the paper applies ν_{E0} first.
        let o = NestOrder::from_paper_notation(vec![2, 1, 0], 3).unwrap();
        assert_eq!(o.as_slice(), &[0, 1, 2]);
    }

    #[test]
    fn from_names_resolves() {
        let s = Schema::new("R", &["A", "B", "C"]).unwrap();
        let o = NestOrder::from_names(&s, &["B", "C", "A"]).unwrap();
        assert_eq!(o.as_slice(), &[1, 2, 0]);
        assert!(NestOrder::from_names(&s, &["B", "C", "X"]).is_err());
    }

    #[test]
    fn all_orders_has_factorial_count() {
        assert_eq!(NestOrder::all(0).len(), 1);
        assert_eq!(NestOrder::all(1).len(), 1);
        assert_eq!(NestOrder::all(3).len(), 6);
        assert_eq!(NestOrder::all(4).len(), 24);
        // All distinct.
        let all = NestOrder::all(4);
        let set: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), 24);
    }

    #[test]
    fn display_shows_application_order() {
        let o = NestOrder::new(vec![1, 0], 2).unwrap();
        assert_eq!(o.to_string(), "E1 -> E0");
    }
}
