//! Nest, unnest and canonical forms (Definitions 4–5, Theorem 2).
//!
//! `ν_E(R)` applies compositions over `E` "as many as possible" (Def. 4).
//! Because composition over `E` merges tuples that agree on everything but
//! `E`, the fixpoint is exactly: group tuples by their non-`E` components
//! and union the `E`-sets per group — computed here with a single hash pass
//! (DESIGN.md D3). A slower pairwise-composition variant with a caller-
//! chosen order is provided to *test* Theorem 2 (the fixpoint is unique,
//! independent of composition order).
//!
//! A canonical form `ν_P(R)` (Def. 5) folds nests over a [`NestOrder`].

use std::collections::HashMap;

use crate::compose::{compose, find_composable_pair_over};
use crate::relation::{FlatRelation, NfRelation};
use crate::schema::NestOrder;
use crate::tuple::{NfTuple, ValueSet};

/// Def. 4 — the nested relation `ν_attr(R)`: all compositions over `attr`
/// applied to fixpoint.
///
/// Runs in `O(T · n)` expected time via grouping, where `T` is the tuple
/// count and `n` the arity.
pub fn nest(rel: &NfRelation, attr: usize) -> NfRelation {
    let mut groups: HashMap<Vec<ValueSet>, ValueSet> = HashMap::with_capacity(rel.tuple_count());
    // Preserve first-seen order for stable output.
    let mut order: Vec<Vec<ValueSet>> = Vec::new();
    for t in rel.tuples() {
        let mut key: Vec<ValueSet> = t.components().to_vec();
        let e_set = key.remove(attr);
        match groups.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut o) => {
                let merged = o.get().union(&e_set);
                *o.get_mut() = merged;
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                order.push(v.key().clone());
                v.insert(e_set);
            }
        }
    }
    let tuples = order
        .into_iter()
        .map(|key| {
            let e_set = groups.remove(&key).expect("group recorded at first sight");
            let mut comps = key;
            comps.insert(attr, e_set);
            NfTuple::new(comps)
        })
        .collect();
    NfRelation::from_tuples_unchecked(rel.schema().clone(), tuples)
}

/// Def. 4 by literal pairwise composition, merging pairs in the order
/// chosen by `pick`.
///
/// `pick(k)` must return an index `< k`, selecting which of the currently
/// composable pairs to merge next. Exists to validate Theorem 2: for every
/// choice function the fixpoint equals [`nest`]. Quadratic; not a
/// production path.
pub fn nest_pairwise<F>(rel: &NfRelation, attr: usize, mut pick: F) -> NfRelation
where
    F: FnMut(usize) -> usize,
{
    let mut tuples: Vec<NfTuple> = rel.tuples().to_vec();
    loop {
        // Collect all currently composable pairs over `attr`.
        let mut pairs = Vec::new();
        for i in 0..tuples.len() {
            for j in (i + 1)..tuples.len() {
                if crate::compose::composable(&tuples[i], &tuples[j], attr) {
                    pairs.push((i, j));
                }
            }
        }
        if pairs.is_empty() {
            break;
        }
        let (i, j) = pairs[pick(pairs.len()) % pairs.len()];
        let merged = compose(&tuples[i], &tuples[j], attr).expect("pair pre-checked composable");
        // j > i always, so removing j first keeps i valid.
        tuples.swap_remove(j);
        tuples.swap_remove(i);
        tuples.push(merged);
    }
    NfRelation::from_tuples_unchecked(rel.schema().clone(), tuples)
}

/// Relation-level UNNEST: splits the `attr` component of every tuple into
/// singletons (the inverse direction of [`nest`], as in the
/// Jaeschke–Schek algebra the paper builds on).
pub fn unnest(rel: &NfRelation, attr: usize) -> NfRelation {
    let mut tuples = Vec::with_capacity(rel.tuple_count());
    for t in rel.tuples() {
        for v in t.component(attr).iter() {
            tuples.push(t.with_component(attr, ValueSet::singleton(v)));
        }
    }
    NfRelation::from_tuples_unchecked(rel.schema().clone(), tuples)
}

/// Def. 5 — the canonical form `ν_P(R)`: nests applied in the order's
/// application sequence (first entry nested first; DESIGN.md D2).
pub fn canonicalize(rel: &NfRelation, order: &NestOrder) -> NfRelation {
    debug_assert_eq!(order.arity(), rel.arity());
    let mut out = rel.clone();
    for &attr in order.as_slice() {
        out = nest(&out, attr);
    }
    out
}

/// Canonical form of a 1NF relation (the common entry point: "every 1NF
/// relation can always be transformed into canonical ones").
///
/// Routed through the single-pass [`kernel`](crate::kernel): one sort of
/// the flat rows plus a bottom-up fold replaces the n-pass ν cascade.
/// [`canonical_of_flat_legacy`] keeps the cascade as a cross-check oracle.
pub fn canonical_of_flat(flat: &FlatRelation, order: &NestOrder) -> NfRelation {
    crate::kernel::canonical_of_flat(flat, order)
}

/// The pre-kernel reference implementation of [`canonical_of_flat`]: lift
/// to singletons and run the Def. 5 ν cascade literally. Quadratic in
/// allocations and hashing next to the kernel; kept (with
/// [`nest_pairwise`]) as the oracle the property tests pin the kernel
/// against.
pub fn canonical_of_flat_legacy(flat: &FlatRelation, order: &NestOrder) -> NfRelation {
    canonicalize(&NfRelation::from_flat(flat), order)
}

/// Whether `rel` is already in canonical form for `order`.
pub fn is_canonical(rel: &NfRelation, order: &NestOrder) -> bool {
    canonical_of_flat(&rel.expand(), order) == *rel
}

/// Whether no composition over `attr` applies (i.e. `rel` is a fixpoint of
/// `ν_attr`).
pub fn is_nested_over(rel: &NfRelation, attr: usize) -> bool {
    find_composable_pair_over(rel.tuples(), attr).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::tuple::ValueSet;
    use crate::value::Atom;
    use std::sync::Arc;

    fn schema(attrs: &[&str]) -> Arc<Schema> {
        Schema::new("R", attrs).unwrap()
    }

    fn vs(ids: &[u32]) -> ValueSet {
        ValueSet::new(ids.iter().map(|&i| Atom(i)).collect()).unwrap()
    }

    fn t(comps: &[&[u32]]) -> NfTuple {
        NfTuple::new(comps.iter().map(|c| vs(c)).collect())
    }

    fn flat(schema: Arc<Schema>, rows: &[&[u32]]) -> FlatRelation {
        FlatRelation::from_rows(
            schema,
            rows.iter().map(|r| r.iter().map(|&v| Atom(v)).collect()),
        )
        .unwrap()
    }

    #[test]
    fn nest_groups_by_other_components() {
        let s = schema(&["A", "B"]);
        let f = flat(s, &[&[1, 10], &[2, 10], &[3, 20]]);
        let nested = nest(&NfRelation::from_flat(&f), 0);
        let expected = NfRelation::from_tuples(
            f.schema().clone(),
            vec![t(&[&[1, 2], &[10]]), t(&[&[3], &[20]])],
        )
        .unwrap();
        assert_eq!(nested, expected);
    }

    #[test]
    fn nest_preserves_expansion() {
        let s = schema(&["A", "B", "C"]);
        let f = flat(
            s,
            &[&[1, 10, 100], &[2, 10, 100], &[1, 20, 100], &[2, 20, 200]],
        );
        let nested = nest(&NfRelation::from_flat(&f), 1);
        assert_eq!(nested.expand(), f);
    }

    #[test]
    fn nest_is_idempotent() {
        let s = schema(&["A", "B"]);
        let f = flat(s, &[&[1, 10], &[2, 10], &[3, 20]]);
        let once = nest(&NfRelation::from_flat(&f), 0);
        let twice = nest(&once, 0);
        assert_eq!(once, twice);
    }

    #[test]
    fn unnest_inverts_nest_on_flat_relations() {
        let s = schema(&["A", "B"]);
        let f = flat(s, &[&[1, 10], &[2, 10], &[3, 20]]);
        let nested = nest(&NfRelation::from_flat(&f), 0);
        let unnested = unnest(&nested, 0);
        assert_eq!(unnested.expand(), f);
        assert_eq!(unnested.tuple_count(), 3);
    }

    #[test]
    fn canonicalize_example1_order_a_first() {
        // Example 1: R = {(a1,b1),(a2,b1),(a2,b2),(a3,b2)}.
        // Composing over A gives R1 = {[A(a1,a2) B(b1)], [A(a2,a3) B(b2)]}.
        let s = schema(&["A", "B"]);
        let f = flat(s, &[&[1, 11], &[2, 11], &[2, 12], &[3, 12]]);
        let order = NestOrder::identity(2); // nest A first, then B
        let r1 = canonical_of_flat(&f, &order);
        let expected = NfRelation::from_tuples(
            f.schema().clone(),
            vec![t(&[&[1, 2], &[11]]), t(&[&[2, 3], &[12]])],
        )
        .unwrap();
        assert_eq!(r1, expected);
    }

    #[test]
    fn canonical_forms_differ_across_orders() {
        // Example 1 under nest-B-first yields a 3-tuple irreducible form
        // different from nest-A-first's 2-tuple form... B-first:
        // νB: a1:{b1}, a2:{b1,b2}, a3:{b2} → νA merges none (B-sets differ).
        let s = schema(&["A", "B"]);
        let f = flat(s, &[&[1, 11], &[2, 11], &[2, 12], &[3, 12]]);
        let b_first = NestOrder::new(vec![1, 0], 2).unwrap();
        let r2 = canonical_of_flat(&f, &b_first);
        let expected = NfRelation::from_tuples(
            f.schema().clone(),
            vec![t(&[&[1], &[11]]), t(&[&[2], &[11, 12]]), t(&[&[3], &[12]])],
        )
        .unwrap();
        assert_eq!(r2, expected);
        let a_first = NestOrder::identity(2);
        assert_ne!(r2, canonical_of_flat(&f, &a_first));
    }

    #[test]
    fn canonical_preserves_expansion_for_all_orders() {
        let s = schema(&["A", "B", "C"]);
        let f = flat(
            s,
            &[
                &[1, 11, 21],
                &[1, 12, 21],
                &[2, 11, 22],
                &[2, 12, 21],
                &[1, 11, 22],
            ],
        );
        for order in NestOrder::all(3) {
            let c = canonical_of_flat(&f, &order);
            assert_eq!(c.expand(), f, "order {order}");
            assert!(is_canonical(&c, &order));
        }
    }

    #[test]
    fn theorem2_pairwise_order_does_not_matter() {
        // Merge pairs in several different orders; the ν_E fixpoint must
        // always equal the group-by nest.
        let s = schema(&["A", "B", "C"]);
        let f = flat(
            s,
            &[
                &[1, 11, 21],
                &[2, 11, 21],
                &[3, 11, 21],
                &[1, 12, 21],
                &[2, 12, 22],
            ],
        );
        let base = NfRelation::from_flat(&f);
        let expected = nest(&base, 0);
        // first-pair strategy
        assert_eq!(nest_pairwise(&base, 0, |_| 0), expected);
        // last-pair strategy
        assert_eq!(nest_pairwise(&base, 0, |k| k - 1), expected);
        // pseudo-random strategy
        let mut state = 7usize;
        assert_eq!(
            nest_pairwise(&base, 0, move |k| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                state % k
            }),
            expected
        );
    }

    #[test]
    fn is_nested_over_detects_fixpoints() {
        let s = schema(&["A", "B"]);
        let f = flat(s, &[&[1, 11], &[2, 11]]);
        let base = NfRelation::from_flat(&f);
        assert!(!is_nested_over(&base, 0));
        let nested = nest(&base, 0);
        assert!(is_nested_over(&nested, 0));
    }

    #[test]
    fn canonical_of_empty_is_empty() {
        let s = schema(&["A", "B"]);
        let f = FlatRelation::new(s);
        let c = canonical_of_flat(&f, &NestOrder::identity(2));
        assert!(c.is_empty());
    }
}
