//! Irreducible forms (Definition 3) and minimal-partition search.
//!
//! A relation is *irreducible* when no further composition applies without
//! first decomposing. Example 1 shows irreducible forms are not unique and
//! can differ in size; Example 2 shows an irreducible form can be strictly
//! smaller than *every* canonical form. Finding the minimum number of NF²
//! tuples is a minimum partition of `R*` into combinatorial rectangles —
//! we provide greedy/random reduction strategies plus an exact
//! branch-and-bound search for small relations.

use crate::compose::{composable_over, compose, find_composable_pair};
use crate::relation::{FlatRelation, NfRelation};
use crate::tuple::{FlatTuple, NfTuple, ValueSet};

/// Whether no composition applies to any pair of tuples (Def. 3).
pub fn is_irreducible(rel: &NfRelation) -> bool {
    find_composable_pair(rel.tuples()).is_none()
}

/// Strategy for choosing which composable pair to merge next while
/// reducing a relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceStrategy {
    /// Always merge the first composable pair in scan order.
    /// Deterministic; mirrors a naive implementation.
    FirstFit,
    /// Merge a pseudo-randomly chosen composable pair, seeded for
    /// reproducibility. Samples the space of irreducible forms.
    Random(u64),
    /// Merge the pair whose merged tuple covers the most flat tuples,
    /// a greedy heuristic towards small irreducible forms.
    GreedyLargest,
}

/// Applies compositions until irreducible, choosing pairs by `strategy`.
///
/// The result is always an irreducible form of the same `R*` (Def. 3);
/// which one depends on the strategy — that non-uniqueness is the point of
/// Example 1.
pub fn reduce(rel: &NfRelation, strategy: ReduceStrategy) -> NfRelation {
    let mut tuples: Vec<NfTuple> = rel.tuples().to_vec();
    let mut rng_state = match strategy {
        ReduceStrategy::Random(seed) => seed ^ 0x9e3779b97f4a7c15,
        _ => 0,
    };
    loop {
        let mut pairs: Vec<(usize, usize, usize)> = Vec::new();
        for i in 0..tuples.len() {
            for j in (i + 1)..tuples.len() {
                if let Some(attr) = composable_over(&tuples[i], &tuples[j]) {
                    pairs.push((i, j, attr));
                    if matches!(strategy, ReduceStrategy::FirstFit) {
                        break;
                    }
                }
            }
            if matches!(strategy, ReduceStrategy::FirstFit) && !pairs.is_empty() {
                break;
            }
        }
        if pairs.is_empty() {
            break;
        }
        let (i, j, attr) = match strategy {
            ReduceStrategy::FirstFit => pairs[0],
            ReduceStrategy::Random(_) => {
                rng_state = rng_state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                pairs[(rng_state >> 33) as usize % pairs.len()]
            }
            ReduceStrategy::GreedyLargest => *pairs
                .iter()
                .max_by_key(|(i, j, _)| tuples[*i].expansion_count() + tuples[*j].expansion_count())
                .expect("pairs is non-empty"),
        };
        let merged = compose(&tuples[i], &tuples[j], attr).expect("pair pre-checked");
        tuples.swap_remove(j); // j > i: i stays valid
        tuples.swap_remove(i);
        tuples.push(merged);
    }
    NfRelation::from_tuples_unchecked(rel.schema().clone(), tuples)
}

/// The bitmask of rows a rectangle covers, or `None` if it reaches
/// outside `rows`.
fn rect_mask(tuple: &NfTuple, rows: &[FlatTuple]) -> Option<u32> {
    let mut mask = 0u32;
    for f in tuple.expand() {
        match rows.iter().position(|r| *r == f) {
            Some(i) => mask |= 1 << i,
            None => return None,
        }
    }
    Some(mask)
}

/// All rectangles inside `rows` that contain the pivot row, avoid already
/// covered rows, sorted largest first.
fn rectangles_through(
    rows: &[FlatTuple],
    covered: u32,
    pivot: usize,
    n: usize,
) -> Vec<(NfTuple, u32)> {
    let pivot_row = &rows[pivot];
    // Candidate values per attribute among uncovered rows.
    let mut per_attr: Vec<Vec<crate::value::Atom>> = vec![Vec::new(); n];
    for (i, r) in rows.iter().enumerate() {
        if covered & (1 << i) != 0 {
            continue;
        }
        for k in 0..n {
            if !per_attr[k].contains(&r[k]) {
                per_attr[k].push(r[k]);
            }
        }
    }
    // Enumerate products of non-empty subsets containing the pivot's
    // value on each attribute.
    let mut result = Vec::new();
    let mut choice: Vec<Vec<crate::value::Atom>> = vec![Vec::new(); n];
    #[allow(clippy::too_many_arguments)]
    fn rec(
        k: usize,
        n: usize,
        pivot_row: &FlatTuple,
        per_attr: &[Vec<crate::value::Atom>],
        choice: &mut Vec<Vec<crate::value::Atom>>,
        rows: &[FlatTuple],
        covered: u32,
        pivot: usize,
        out: &mut Vec<(NfTuple, u32)>,
    ) {
        if k == n {
            let comps: Vec<ValueSet> = choice
                .iter()
                .map(|c| ValueSet::new(c.clone()).expect("choice sets non-empty"))
                .collect();
            let t = NfTuple::new(comps);
            if let Some(mask) = rect_mask(&t, rows) {
                if mask & covered == 0 && mask & (1 << pivot) != 0 {
                    out.push((t, mask));
                }
            }
            return;
        }
        let others: Vec<crate::value::Atom> = per_attr[k]
            .iter()
            .copied()
            .filter(|v| *v != pivot_row[k])
            .collect();
        let m = others.len().min(16);
        for bits in 0..(1u32 << m) {
            let mut set = vec![pivot_row[k]];
            for (b, v) in others.iter().take(m).enumerate() {
                if bits & (1 << b) != 0 {
                    set.push(*v);
                }
            }
            choice[k] = set;
            rec(
                k + 1,
                n,
                pivot_row,
                per_attr,
                choice,
                rows,
                covered,
                pivot,
                out,
            );
        }
        choice[k].clear();
    }
    rec(
        0,
        n,
        pivot_row,
        &per_attr,
        &mut choice,
        rows,
        covered,
        pivot,
        &mut result,
    );
    result.sort_by_key(|(_, mask)| std::cmp::Reverse(mask.count_ones()));
    result
}

/// Exact minimum partition of a 1NF relation into NF² tuples
/// (rectangles), by branch-and-bound.
///
/// Every partition of `R*` into rectangles is reachable from the singleton
/// NFR by compositions, so this is the true "minimum NFR" the paper calls
/// hard to find (§4: "it's hard to find the minimum NFR"). Exponential —
/// intended for `|R*|` up to a few dozen flat tuples (Example 2 has 6).
pub fn minimum_partition(flat: &FlatRelation) -> NfRelation {
    let rows: Vec<FlatTuple> = flat.rows().cloned().collect();
    if rows.is_empty() {
        return NfRelation::new(flat.schema().clone());
    }
    assert!(
        rows.len() <= 24,
        "minimum_partition is exponential; got {} rows (max 24)",
        rows.len()
    );
    let n = flat.schema().arity();
    let full: u32 = (1u32 << rows.len()) - 1;

    // Upper bound from the best greedy reduction over a few strategies.
    let base = NfRelation::from_flat(flat);
    let mut best: Vec<NfTuple> = reduce(&base, ReduceStrategy::GreedyLargest).into_tuples();
    for seed in 0..4u64 {
        let cand = reduce(&base, ReduceStrategy::Random(seed)).into_tuples();
        if cand.len() < best.len() {
            best = cand;
        }
    }

    fn dfs(
        rows: &[FlatTuple],
        n: usize,
        covered: u32,
        full: u32,
        current: &mut Vec<NfTuple>,
        best: &mut Vec<NfTuple>,
    ) {
        if covered == full {
            if current.len() < best.len() {
                *best = current.clone();
            }
            return;
        }
        if current.len() + 1 >= best.len() {
            return; // bound: even one more rectangle cannot beat best
        }
        let pivot = (!covered).trailing_zeros() as usize;
        for (t, mask) in rectangles_through(rows, covered, pivot, n) {
            current.push(t);
            dfs(rows, n, covered | mask, full, current, best);
            current.pop();
        }
    }

    let mut current = Vec::new();
    dfs(&rows, n, 0, full, &mut current, &mut best);
    NfRelation::from_tuples_unchecked(flat.schema().clone(), best)
}

/// Enumerates **every** partition of `R*` into rectangles — every NFR
/// representing the relation (all points of Fig. 3's universe).
///
/// Severely exponential; capped at 16 rows and `limit` partitions. Used
/// by the Fig. 3 region census (experiment E11).
pub fn enumerate_partitions(flat: &FlatRelation, limit: usize) -> Vec<NfRelation> {
    let rows: Vec<FlatTuple> = flat.rows().cloned().collect();
    if rows.is_empty() {
        return vec![NfRelation::new(flat.schema().clone())];
    }
    assert!(
        rows.len() <= 16,
        "enumerate_partitions is severely exponential; got {} rows (max 16)",
        rows.len()
    );
    let n = flat.schema().arity();
    let full: u32 = (1u32 << rows.len()) - 1;
    let mut out = Vec::new();

    fn dfs(
        rows: &[FlatTuple],
        n: usize,
        covered: u32,
        full: u32,
        current: &mut Vec<NfTuple>,
        out: &mut Vec<Vec<NfTuple>>,
        limit: usize,
    ) {
        if out.len() >= limit {
            return;
        }
        if covered == full {
            out.push(current.clone());
            return;
        }
        let pivot = (!covered).trailing_zeros() as usize;
        for (t, mask) in rectangles_through(rows, covered, pivot, n) {
            current.push(t);
            dfs(rows, n, covered | mask, full, current, out, limit);
            current.pop();
        }
    }

    let mut current = Vec::new();
    let mut partitions = Vec::new();
    dfs(&rows, n, 0, full, &mut current, &mut partitions, limit);
    for tuples in partitions {
        out.push(NfRelation::from_tuples_unchecked(
            flat.schema().clone(),
            tuples,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::Atom;
    use std::sync::Arc;

    fn schema(attrs: &[&str]) -> Arc<Schema> {
        Schema::new("R", attrs).unwrap()
    }

    fn flat(schema: Arc<Schema>, rows: &[&[u32]]) -> FlatRelation {
        FlatRelation::from_rows(
            schema,
            rows.iter().map(|r| r.iter().map(|&v| Atom(v)).collect()),
        )
        .unwrap()
    }

    /// The Example 1 instance: rl..r4 over A, B.
    fn example1() -> FlatRelation {
        flat(
            schema(&["A", "B"]),
            &[&[1, 11], &[2, 11], &[2, 12], &[3, 12]],
        )
    }

    /// The Example 2 instance: 6 tuples over A, B, C.
    fn example2() -> FlatRelation {
        flat(
            schema(&["A", "B", "C"]),
            &[
                &[1, 11, 22], // [A(a1) B(b1) C(c2)]
                &[1, 12, 22], // [A(a1) B(b2) C(c2)]
                &[1, 12, 21], // [A(a1) B(b2) C(c1)]
                &[2, 11, 22], // [A(a2) B(b1) C(c2)]
                &[2, 11, 21], // [A(a2) B(b1) C(c1)]
                &[2, 12, 21], // [A(a2) B(b2) C(c1)]
            ],
        )
    }

    #[test]
    fn singleton_relations_with_distinct_rows_can_still_reduce() {
        let base = NfRelation::from_flat(&example1());
        assert!(!is_irreducible(&base));
        let reduced = reduce(&base, ReduceStrategy::FirstFit);
        assert!(is_irreducible(&reduced));
        assert_eq!(reduced.expand(), example1());
    }

    #[test]
    fn example1_has_irreducible_forms_of_sizes_two_and_three() {
        // The paper derives R1 (2 tuples, composing over A) and R2
        // (3 tuples, composing over B first).
        let base = NfRelation::from_flat(&example1());
        let mut sizes = std::collections::HashSet::new();
        for seed in 0..40 {
            let r = reduce(&base, ReduceStrategy::Random(seed));
            assert!(is_irreducible(&r));
            assert_eq!(r.expand(), example1());
            sizes.insert(r.tuple_count());
        }
        assert!(
            sizes.contains(&2),
            "some order reaches the 2-tuple form: {sizes:?}"
        );
        assert!(
            sizes.contains(&3),
            "some order reaches the 3-tuple form: {sizes:?}"
        );
    }

    #[test]
    fn example2_minimum_partition_has_three_tuples() {
        // Example 2: an irreducible form with 3 tuples exists while every
        // canonical form has 4.
        let min = minimum_partition(&example2());
        assert_eq!(min.tuple_count(), 3);
        assert_eq!(min.expand(), example2());
        assert!(is_irreducible(&min));
    }

    #[test]
    fn example2_every_canonical_form_has_four_tuples() {
        use crate::nest::canonical_of_flat;
        use crate::schema::NestOrder;
        let f = example2();
        for order in NestOrder::all(3) {
            let c = canonical_of_flat(&f, &order);
            assert_eq!(c.tuple_count(), 4, "order {order} should give 4 tuples");
        }
    }

    #[test]
    fn greedy_matches_or_beats_first_fit_on_blocks() {
        let f = flat(
            schema(&["A", "B"]),
            &[&[1, 11], &[1, 12], &[2, 11], &[2, 12], &[3, 13]],
        );
        let base = NfRelation::from_flat(&f);
        let greedy = reduce(&base, ReduceStrategy::GreedyLargest);
        assert!(is_irreducible(&greedy));
        assert_eq!(greedy.expand(), f);
        assert!(greedy.tuple_count() <= reduce(&base, ReduceStrategy::FirstFit).tuple_count());
    }

    #[test]
    fn minimum_partition_of_full_grid_is_one_tuple() {
        let f = flat(
            schema(&["A", "B"]),
            &[&[1, 11], &[1, 12], &[2, 11], &[2, 12]],
        );
        let min = minimum_partition(&f);
        assert_eq!(min.tuple_count(), 1);
    }

    #[test]
    fn minimum_partition_of_empty_is_empty() {
        let f = FlatRelation::new(schema(&["A", "B"]));
        assert!(minimum_partition(&f).is_empty());
    }

    #[test]
    fn reduce_on_irreducible_is_identity() {
        let f = flat(schema(&["A", "B"]), &[&[1, 11], &[2, 12]]);
        let base = NfRelation::from_flat(&f);
        assert!(is_irreducible(&base));
        assert_eq!(reduce(&base, ReduceStrategy::FirstFit), base);
    }
}

#[cfg(test)]
mod enumerate_tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::Atom;

    fn flat2(rows: &[&[u32]]) -> FlatRelation {
        FlatRelation::from_rows(
            Schema::new("R", &["A", "B"]).unwrap(),
            rows.iter().map(|r| r.iter().map(|&v| Atom(v)).collect()),
        )
        .unwrap()
    }

    #[test]
    fn enumerate_covers_singletons_and_merged_forms() {
        // Two composable rows: exactly two partitions — split and merged.
        let f = flat2(&[&[1, 10], &[2, 10]]);
        let parts = enumerate_partitions(&f, 1000);
        assert_eq!(parts.len(), 2);
        for p in &parts {
            assert_eq!(p.expand(), f);
            assert!(p.validate().is_ok());
        }
    }

    #[test]
    fn enumerate_respects_limit() {
        let f = flat2(&[&[1, 10], &[2, 10], &[1, 11], &[2, 11]]);
        let parts = enumerate_partitions(&f, 3);
        assert_eq!(parts.len(), 3);
    }

    #[test]
    fn enumerate_of_2x2_grid_counts_partitions() {
        // The 2x2 grid has a known small set of rectangle partitions:
        // 1 full grid, 2 two-row splits (by A or by B),
        // 4 partitions of one pair + two singletons, 1 all-singletons,
        // plus 2 "L-shaped" impossible (not rectangles) — total 8... the
        // exact census is asserted to stay stable as a regression check.
        let f = flat2(&[&[1, 10], &[2, 10], &[1, 11], &[2, 11]]);
        let parts = enumerate_partitions(&f, 10_000);
        for p in &parts {
            assert_eq!(p.expand(), f);
        }
        // Distinct partitions only.
        for (i, a) in parts.iter().enumerate() {
            for b in parts.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
        assert_eq!(parts.len(), 8);
    }

    #[test]
    fn enumerate_empty_relation() {
        let f = flat2(&[]);
        let parts = enumerate_partitions(&f, 10);
        assert_eq!(parts.len(), 1);
        assert!(parts[0].is_empty());
    }
}
