//! Incremental canonical maintenance (§4 and the Appendix).
//!
//! The update problem: apply an insertion or deletion of a flat tuple `t`
//! directly to the NFR `R` — never to `R*` — such that the result equals
//! `ν_P(R* ± t)`, with a number of compositions that does not depend on the
//! number of tuples in `R` (Theorem A-4).
//!
//! The implementation follows the paper's procedures:
//!
//! * `candt` — find the *candidate tuple* and the minimal composition
//!   position `m` (Lemma A-1: at most one candidate exists);
//! * `recons` — decompose the candidate until composable with `t`
//!   (Lemma A-2), compose, and recursively reconstruct remainders and the
//!   composed tuple (Lemma A-3);
//! * `insertion` / `deletion` — §4.2 / §4.3 drivers;
//! * `searcht` — locate the unique tuple containing a flat tuple.
//!
//! Positions are indices into the [`NestOrder`] (position 0 = first-nested
//! attribute = the paper's `E1`); see DESIGN.md D2/D4 for the notation
//! mapping.

use crate::compose::{compose, decompose_set};
use crate::error::{NfError, Result};
use crate::relation::{FlatRelation, NfRelation};
use crate::schema::{NestOrder, Schema};
use crate::tuple::{FlatTuple, NfTuple};
use std::sync::Arc;

/// Operation counters for the complexity analysis (Appendix).
///
/// The paper measures update cost as the **number of compositions**; we
/// additionally count decompositions, candidate probes (tuple × position
/// checks inside `candt`) and `recons` invocations.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CostCounter {
    /// Def. 1 compositions performed.
    pub compositions: u64,
    /// Def. 2 decompositions that actually split a tuple.
    pub decompositions: u64,
    /// Tuple-per-position candidate checks inside `candt`.
    pub candidate_probes: u64,
    /// Invocations of the `recons` procedure.
    pub recons_calls: u64,
}

impl CostCounter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total structural operations (compositions + decompositions) — the
    /// quantity Theorem A-4 bounds by a function of the degree alone.
    pub fn structural_ops(&self) -> u64 {
        self.compositions + self.decompositions
    }

    /// Adds another counter's totals into this one (used by batch drivers
    /// and the sharded [`MaintenanceCost`](crate::shard::MaintenanceCost)
    /// aggregation).
    pub fn accumulate(&mut self, other: &CostCounter) {
        self.compositions += other.compositions;
        self.decompositions += other.decompositions;
        self.candidate_probes += other.candidate_probes;
        self.recons_calls += other.recons_calls;
    }
}

/// An NFR kept permanently in canonical form `ν_P(R*)` for a fixed nest
/// order, supporting incremental insertion and deletion of flat tuples.
///
/// Invariant: `self.relation()` equals
/// [`canonical_of_flat`](crate::nest::canonical_of_flat)`(R*, order)` at
/// every public-method boundary (checked exhaustively by property tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalRelation {
    rel: NfRelation,
    order: NestOrder,
}

impl CanonicalRelation {
    /// An empty canonical relation.
    pub fn new(schema: Arc<Schema>, order: NestOrder) -> Result<Self> {
        if order.arity() != schema.arity() {
            return Err(NfError::InvalidNestOrder(format!(
                "order covers {} attributes, schema has {}",
                order.arity(),
                schema.arity()
            )));
        }
        Ok(Self {
            rel: NfRelation::new(schema),
            order,
        })
    }

    /// Builds the canonical form of an existing 1NF relation by nesting
    /// from scratch (the §3.3 path; used as the baseline in benchmarks).
    /// Runs the single-pass nest kernel on a throwaway scratch instance;
    /// use [`from_flat_with`](Self::from_flat_with) to amortize scratch
    /// across repeated rebuilds.
    pub fn from_flat(flat: &FlatRelation, order: NestOrder) -> Result<Self> {
        Self::from_flat_with(&mut crate::kernel::NestKernel::new(), flat, order)
    }

    /// [`from_flat`](Self::from_flat) reusing a caller-provided kernel, so
    /// bulk loads and streaming rebuilds (the §4 rebuild arm, E16's ingest
    /// loop) keep their sort/intern buffers warm across calls.
    pub fn from_flat_with(
        kernel: &mut crate::kernel::NestKernel,
        flat: &FlatRelation,
        order: NestOrder,
    ) -> Result<Self> {
        if order.arity() != flat.schema().arity() {
            return Err(NfError::InvalidNestOrder(format!(
                "order covers {} attributes, schema has {}",
                order.arity(),
                flat.schema().arity()
            )));
        }
        let rel = kernel.canonical_of_flat(flat, &order);
        Ok(Self { rel, order })
    }

    /// The maintained NFR.
    pub fn relation(&self) -> &NfRelation {
        &self.rel
    }

    /// The nest order the relation is canonical for.
    pub fn order(&self) -> &NestOrder {
        &self.order
    }

    /// Number of NF² tuples.
    pub fn tuple_count(&self) -> usize {
        self.rel.tuple_count()
    }

    /// Number of flat tuples (`|R*|`).
    pub fn flat_count(&self) -> u128 {
        self.rel.flat_count()
    }

    /// Whether `R*` contains `flat` (`searcht` returning a hit).
    pub fn contains(&self, flat: &[crate::value::Atom]) -> bool {
        self.rel.contains_flat(flat)
    }

    /// Consumes self, yielding the relation.
    pub fn into_relation(self) -> NfRelation {
        self.rel
    }

    /// §4.2 — inserts a flat tuple, maintaining canonicity. Returns `true`
    /// if the tuple was new, `false` if it was already present.
    pub fn insert(&mut self, flat: FlatTuple) -> Result<bool> {
        let mut cost = CostCounter::new();
        self.insert_counted(flat, &mut cost)
    }

    /// [`insert`](Self::insert) with operation counting.
    pub fn insert_counted(&mut self, flat: FlatTuple, cost: &mut CostCounter) -> Result<bool> {
        if flat.len() != self.rel.arity() {
            return Err(NfError::ArityMismatch {
                expected: self.rel.arity(),
                got: flat.len(),
            });
        }
        if self.rel.contains_flat(&flat) {
            return Ok(false);
        }
        let t = NfTuple::from_flat(&flat);
        self.recons(t, cost);
        debug_assert!(self.rel.validate().is_ok());
        Ok(true)
    }

    /// §4.3 — deletes a flat tuple, maintaining canonicity. Returns `true`
    /// if the tuple was present.
    pub fn delete(&mut self, flat: &[crate::value::Atom]) -> Result<bool> {
        let mut cost = CostCounter::new();
        self.delete_counted(flat, &mut cost)
    }

    /// [`delete`](Self::delete) with operation counting.
    pub fn delete_counted(
        &mut self,
        flat: &[crate::value::Atom],
        cost: &mut CostCounter,
    ) -> Result<bool> {
        if flat.len() != self.rel.arity() {
            return Err(NfError::ArityMismatch {
                expected: self.rel.arity(),
                got: flat.len(),
            });
        }
        // searcht: the unique tuple containing `flat` (unique by the
        // partition invariant).
        let Some(idx) = self.rel.find_containing(flat) else {
            return Ok(false);
        };
        let mut q = self.rel.swap_remove(idx);
        // Peel positions from the last-nested down to the first (the
        // paper's `i := n` downto 1), isolating `flat` and reconstructing
        // every remainder.
        for pos in (0..self.order.arity()).rev() {
            let attr = self.order.attr_at(pos);
            let split = decompose_set(&q, attr, &crate::tuple::ValueSet::singleton(flat[attr]))
                .expect("searcht guarantees membership on every attribute");
            if let Some(rem) = split.remainder {
                cost.decompositions += 1;
                self.recons(rem, cost);
            }
            q = split.isolated;
        }
        debug_assert_eq!(q.to_flat().as_deref(), Some(flat));
        // deletet(q): q is now exactly the flat tuple; drop it.
        debug_assert!(self.rel.validate().is_ok());
        Ok(true)
    }

    /// The paper's `candt`: returns `(tuple index, position m)` of the
    /// candidate tuple of `t`, if any.
    ///
    /// The candidate at position `m` is a tuple `s` with
    /// `s.E(k) = t.E(k)` (set equality) at every position `k < m` and
    /// `t.E(k) ⊆ s.E(k)` at every position `k > m`; `m` is minimal over
    /// all tuples. At most one candidate exists at the minimal `m`
    /// (Lemma A-1) — asserted in debug builds.
    fn candt(&self, t: &NfTuple, cost: &mut CostCounter) -> Option<(usize, usize)> {
        let n = self.order.arity();
        for m in 0..n {
            let mut found: Option<usize> = None;
            for (idx, s) in self.rel.tuples().iter().enumerate() {
                cost.candidate_probes += 1;
                if self.is_candidate_at(s, t, m) {
                    debug_assert!(
                        found.is_none(),
                        "Lemma A-1: at most one candidate tuple at minimal position {m}"
                    );
                    found = Some(idx);
                    #[cfg(not(debug_assertions))]
                    break;
                }
            }
            if let Some(idx) = found {
                return Some((idx, m));
            }
        }
        None
    }

    /// The position-`m` candidate predicate (see [`candt`](Self::candt)).
    fn is_candidate_at(&self, s: &NfTuple, t: &NfTuple, m: usize) -> bool {
        let n = self.order.arity();
        for k in 0..n {
            let attr = self.order.attr_at(k);
            let (sc, tc) = (s.component(attr), t.component(attr));
            if k < m {
                if sc != tc {
                    return false;
                }
            } else if k > m && !tc.is_subset_of(sc) {
                return false;
            }
        }
        true
    }

    /// The paper's `recons`: re-establishes canonicity after introducing
    /// the tuple `t` (whose expansion is disjoint from the relation).
    ///
    /// Selects the candidate `p`, unnests it from position `n` down to
    /// `m+1` isolating `t`'s values (recursively reconstructing each
    /// remainder), composes over position `m`, then reconstructs the
    /// composed tuple. Without a candidate, `t` enters the relation as a
    /// new tuple (the pseudocode's implicit else-branch).
    fn recons(&mut self, t: NfTuple, cost: &mut CostCounter) {
        cost.recons_calls += 1;
        match self.candt(&t, cost) {
            None => {
                self.rel.push_tuple_unchecked(t);
            }
            Some((idx, m)) => {
                let mut p = self.rel.swap_remove(idx);
                let n = self.order.arity();
                // while j > m do unnest(Ej(ej), p, pe, pr); recons(pr)
                for pos in ((m + 1)..n).rev() {
                    let attr = self.order.attr_at(pos);
                    let split = decompose_set(&p, attr, t.component(attr))
                        .expect("candidate predicate guarantees t.E(k) ⊆ p.E(k) for k > m");
                    if let Some(rem) = split.remainder {
                        cost.decompositions += 1;
                        self.recons(rem, cost);
                    }
                    p = split.isolated;
                }
                // Lemma A-2: p is now composable with t over position m.
                let attr_m = self.order.attr_at(m);
                let w = compose(&p, &t, attr_m)
                    .expect("Lemma A-2: the unnested candidate is composable with t");
                cost.compositions += 1;
                // Lemma A-3: the composed tuple may itself have a candidate.
                self.recons(w, cost);
            }
        }
    }

    /// Re-derives the canonical form from scratch and checks it matches
    /// the maintained relation. Test/diagnostic helper.
    pub fn verify(&self) -> Result<()> {
        self.rel.validate()?;
        let fresh = crate::nest::canonical_of_flat(&self.rel.expand(), &self.order);
        if fresh == self.rel {
            Ok(())
        } else {
            Err(NfError::InvalidNestOrder(
                "maintained relation is not canonical for its order".into(),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nest::canonical_of_flat;
    use crate::value::Atom;

    fn schema(attrs: &[&str]) -> Arc<Schema> {
        Schema::new("R", attrs).unwrap()
    }

    fn row(vals: &[u32]) -> FlatTuple {
        vals.iter().map(|&v| Atom(v)).collect()
    }

    fn flat_rel(s: Arc<Schema>, rows: &[&[u32]]) -> FlatRelation {
        FlatRelation::from_rows(s, rows.iter().map(|r| row(r))).unwrap()
    }

    /// Inserting every row one by one must equal nesting from scratch.
    fn check_incremental_build(attrs: &[&str], rows: &[&[u32]], order: NestOrder) {
        let s = schema(attrs);
        let mut canon = CanonicalRelation::new(s.clone(), order.clone()).unwrap();
        let mut flat = FlatRelation::new(s);
        for r in rows {
            assert!(canon.insert(row(r)).unwrap());
            flat.insert(row(r)).unwrap();
            let oracle = canonical_of_flat(&flat, &order);
            assert_eq!(
                canon.relation(),
                &oracle,
                "after inserting {r:?} with order {order}"
            );
        }
    }

    /// Deleting every row one by one must equal nesting from scratch.
    fn check_incremental_teardown(attrs: &[&str], rows: &[&[u32]], order: NestOrder) {
        let s = schema(attrs);
        let mut flat = flat_rel(s, rows);
        let mut canon = CanonicalRelation::from_flat(&flat, order.clone()).unwrap();
        for r in rows {
            assert!(canon.delete(&row(r)).unwrap());
            flat.remove(&row(r));
            let oracle = canonical_of_flat(&flat, &order);
            assert_eq!(
                canon.relation(),
                &oracle,
                "after deleting {r:?} with order {order}"
            );
        }
        assert!(canon.relation().is_empty());
    }

    #[test]
    fn insert_builds_canonical_2attr_all_orders() {
        let rows: &[&[u32]] = &[&[1, 11], &[2, 11], &[2, 12], &[3, 12], &[1, 12], &[3, 11]];
        for order in NestOrder::all(2) {
            check_incremental_build(&["A", "B"], rows, order);
        }
    }

    #[test]
    fn insert_builds_canonical_3attr_all_orders() {
        let rows: &[&[u32]] = &[
            &[1, 11, 21],
            &[1, 12, 21],
            &[2, 11, 21],
            &[2, 12, 22],
            &[1, 11, 22],
            &[2, 11, 22],
            &[1, 12, 22],
        ];
        for order in NestOrder::all(3) {
            check_incremental_build(&["A", "B", "C"], rows, order);
        }
    }

    #[test]
    fn delete_maintains_canonical_2attr_all_orders() {
        let rows: &[&[u32]] = &[&[1, 11], &[2, 11], &[2, 12], &[3, 12], &[1, 12]];
        for order in NestOrder::all(2) {
            check_incremental_teardown(&["A", "B"], rows, order);
        }
    }

    #[test]
    fn delete_maintains_canonical_3attr_all_orders() {
        let rows: &[&[u32]] = &[
            &[1, 11, 21],
            &[1, 12, 21],
            &[2, 11, 21],
            &[2, 12, 22],
            &[1, 11, 22],
        ];
        for order in NestOrder::all(3) {
            check_incremental_teardown(&["A", "B", "C"], rows, order);
        }
    }

    #[test]
    fn insert_duplicate_is_noop() {
        let s = schema(&["A", "B"]);
        let mut canon = CanonicalRelation::new(s, NestOrder::identity(2)).unwrap();
        assert!(canon.insert(row(&[1, 11])).unwrap());
        assert!(!canon.insert(row(&[1, 11])).unwrap());
        assert_eq!(canon.flat_count(), 1);
    }

    #[test]
    fn delete_missing_is_noop() {
        let s = schema(&["A", "B"]);
        let mut canon = CanonicalRelation::new(s, NestOrder::identity(2)).unwrap();
        canon.insert(row(&[1, 11])).unwrap();
        assert!(!canon.delete(&row(&[9, 99])).unwrap());
        assert_eq!(canon.flat_count(), 1);
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let s = schema(&["A", "B"]);
        let mut canon = CanonicalRelation::new(s, NestOrder::identity(2)).unwrap();
        assert!(canon.insert(row(&[1])).is_err());
        assert!(canon.delete(&row(&[1, 2, 3])).is_err());
    }

    #[test]
    fn mismatched_order_arity_is_rejected() {
        let s = schema(&["A", "B"]);
        assert!(CanonicalRelation::new(s.clone(), NestOrder::identity(3)).is_err());
        let f = FlatRelation::new(s);
        assert!(CanonicalRelation::from_flat(&f, NestOrder::identity(3)).is_err());
    }

    #[test]
    fn insert_splits_groups_when_needed() {
        // Order B-first, A-last: canonical groups a's by equal course
        // sets. Adding (a1,b3) must split a1 out of the {a1,a2} group.
        let s = schema(&["A", "B"]);
        let f = flat_rel(s, &[&[1, 11], &[1, 12], &[2, 11], &[2, 12]]);
        let order = NestOrder::new(vec![1, 0], 2).unwrap();
        let mut canon = CanonicalRelation::from_flat(&f, order.clone()).unwrap();
        assert_eq!(canon.tuple_count(), 1);
        canon.insert(row(&[1, 13])).unwrap();
        canon.verify().unwrap();
        assert_eq!(canon.tuple_count(), 2);
    }

    #[test]
    fn costs_are_counted() {
        let s = schema(&["A", "B"]);
        let mut canon = CanonicalRelation::new(s, NestOrder::identity(2)).unwrap();
        let mut cost = CostCounter::new();
        canon.insert_counted(row(&[1, 11]), &mut cost).unwrap();
        canon.insert_counted(row(&[2, 11]), &mut cost).unwrap();
        assert!(cost.compositions >= 1, "second insert composes over A");
        assert!(cost.recons_calls >= 2);
        assert_eq!(
            cost.structural_ops(),
            cost.compositions + cost.decompositions
        );
    }

    #[test]
    fn random_mixed_workload_matches_oracle() {
        // Deterministic pseudo-random insert/delete stream over a small
        // universe, checked against re-nesting after every operation, for
        // several orders.
        let s = schema(&["A", "B", "C"]);
        for order in [
            NestOrder::identity(3),
            NestOrder::new(vec![2, 0, 1], 3).unwrap(),
            NestOrder::new(vec![1, 2, 0], 3).unwrap(),
        ] {
            let mut canon = CanonicalRelation::new(s.clone(), order.clone()).unwrap();
            let mut flat = FlatRelation::new(s.clone());
            let mut state = 0xdeadbeefu64;
            for step in 0..300 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let a = (state >> 13) % 4;
                let b = 10 + (state >> 29) % 4;
                let c = 20 + (state >> 47) % 3;
                let r = row(&[a as u32, b as u32, c as u32]);
                if state.is_multiple_of(3) {
                    let expected = flat.contains(&r);
                    assert_eq!(canon.delete(&r).unwrap(), expected);
                    flat.remove(&r);
                } else {
                    let expected = !flat.contains(&r);
                    assert_eq!(canon.insert(r.clone()).unwrap(), expected);
                    flat.insert(r).unwrap();
                }
                if step % 10 == 0 {
                    assert_eq!(canon.relation(), &canonical_of_flat(&flat, &order));
                }
            }
            assert_eq!(canon.relation(), &canonical_of_flat(&flat, &order));
        }
    }

    #[test]
    fn theorem_a4_cost_does_not_grow_with_relation_size() {
        // Build canonical relations of growing size over a fixed degree
        // and check the per-insert composition count stays bounded.
        let s = schema(&["A", "B", "C"]);
        let order = NestOrder::identity(3);
        let mut max_ops = Vec::new();
        for size in [50u32, 200, 800] {
            let mut canon = CanonicalRelation::new(s.clone(), order.clone()).unwrap();
            let mut state = 42u64;
            for _ in 0..size {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let r = row(&[
                    (state >> 10) as u32 % 40,
                    100 + (state >> 30) as u32 % 40,
                    200 + (state >> 50) as u32 % 10,
                ]);
                let _ = canon.insert(r);
            }
            // Measure a probe insertion on the grown relation.
            let mut cost = CostCounter::new();
            let _ = canon
                .insert_counted(row(&[41, 141, 211]), &mut cost)
                .unwrap();
            max_ops.push(cost.structural_ops());
        }
        // Structural ops for a fresh value combination must not scale with
        // the relation size (they are 0 or tiny regardless).
        let spread = max_ops.iter().max().unwrap() - max_ops.iter().min().unwrap();
        assert!(
            spread <= 4,
            "structural op counts should be size-independent: {max_ops:?}"
        );
    }
}
