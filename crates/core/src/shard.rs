//! Sharded canonical storage: partitioning `ν_P(R*)` on the outermost
//! nest attribute.
//!
//! E16's incremental probe exposed the §4 scale wall: every `recons`
//! pays a candidate scan (`candt`) over *all* NF² tuples, so point
//! maintenance cost grows linearly with the relation. This module breaks
//! the wall by partitioning the canonical relation on the values of the
//! **outermost** nest attribute `P(n−1)` — the attribute nested *last*.
//!
//! Why that attribute, and why the partition is exact: the canonical
//! fold (see [`NestKernel`]) sorts flat rows with `P(n−1)` outermost, so
//! every ν stage before the last groups rows that agree on `P(n−1)` —
//! stages `0…n−2` never combine rows with different `P(n−1)` values.
//! Only the final `ν_{P(n−1)}` merges across values, and that merge is
//! *associative*: it groups tuples by set-equality of the other `n−1`
//! positions and unions the `P(n−1)` sets. Therefore
//!
//! ```text
//! ν_P(R*)  =  merge_{P(n−1)} ( ⋃_s ν_P(R*_s) )
//! ```
//!
//! for **any** value-based partition `R* = ⊎_s R*_s` on `P(n−1)`: each
//! shard maintains the full canonical form of its own rows (all §4
//! invariants hold per shard), and [`ShardedCanonical::to_relation`]
//! recovers the exact global canonical form with one grouping pass
//! ([`NestKernel::nest_once`] over the concatenated shards). Property
//! tests pin sharded ≡ unsharded across every workload generator, shard
//! count and routing mode.
//!
//! The payoff is twofold:
//!
//! * **point maintenance** — `candt`/`searcht`/`recons` run against one
//!   shard, so candidate probes drop by roughly the shard count;
//! * **batch rebuilds** — the rebuild arm of
//!   [`apply_batch_auto`](ShardedCanonical::apply_batch_auto) re-nests
//!   each shard independently on its own [`NestKernel`] scratch, fanned
//!   out across [`std::thread::scope`] threads.

use std::sync::Arc;

use crate::bulk::{apply_batch_auto_with, BatchSummary, Op};
use crate::error::{NfError, Result};
use crate::kernel::NestKernel;
use crate::maintenance::{CanonicalRelation, CostCounter};
use crate::mvcc::ShardVersion;
use crate::relation::{FlatRelation, NfRelation};
use crate::schema::{AttrId, NestOrder, Schema};
use crate::segment::{ShardSegments, DEFAULT_SEGMENT_ROWS};
use crate::tuple::{FlatTuple, NfTuple};
use crate::value::Atom;

/// How the outermost-attribute value space is split into shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardSpec {
    /// `shards` buckets by a mixed hash of the atom id — the default,
    /// balanced without knowing the value distribution.
    Hash {
        /// Number of shards (≥ 1).
        shards: usize,
    },
    /// Range partitioning: `boundaries` (strictly ascending) split the
    /// atom id space into `boundaries.len() + 1` shards; a value `v`
    /// routes to the number of boundaries `≤ v`. Right for workloads
    /// where the outer attribute has a known, locality-friendly order.
    Range {
        /// Strictly ascending shard boundaries.
        boundaries: Vec<Atom>,
    },
}

impl ShardSpec {
    /// The degenerate single-shard spec (sharding disabled).
    pub fn single() -> Self {
        ShardSpec::Hash { shards: 1 }
    }

    /// Hash partitioning over `shards` buckets.
    pub fn hash(shards: usize) -> Result<Self> {
        if shards == 0 {
            return Err(NfError::InvalidShardSpec(
                "shard count must be at least 1".into(),
            ));
        }
        Ok(ShardSpec::Hash { shards })
    }

    /// Range partitioning with the given strictly ascending boundaries.
    pub fn range(boundaries: Vec<Atom>) -> Result<Self> {
        if boundaries.windows(2).any(|w| w[0] >= w[1]) {
            return Err(NfError::InvalidShardSpec(
                "range boundaries must be strictly ascending".into(),
            ));
        }
        Ok(ShardSpec::Range { boundaries })
    }

    /// Number of shards the spec produces.
    pub fn shard_count(&self) -> usize {
        match self {
            ShardSpec::Hash { shards } => *shards,
            ShardSpec::Range { boundaries } => boundaries.len() + 1,
        }
    }

    /// The shard a single outer-attribute value routes to.
    pub fn route_value(&self, v: Atom) -> usize {
        match self {
            ShardSpec::Hash { shards } => (mix64(u64::from(v.id())) % *shards as u64) as usize,
            ShardSpec::Range { boundaries } => boundaries.partition_point(|b| *b <= v),
        }
    }
}

/// SplitMix64 finalizer: a cheap, well-mixed value → bucket map (atom
/// ids are dense small integers, so modulo without mixing would stripe).
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A [`ShardSpec`] bound to the routing attribute of one nest order: the
/// outermost (last-nested) attribute `P(n−1)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRouter {
    spec: ShardSpec,
    /// The routing attribute (`P(n−1)`), or `None` for the degenerate
    /// zero-arity schema (everything routes to shard 0).
    attr: Option<AttrId>,
}

impl ShardRouter {
    /// Binds a spec to a nest order's outermost attribute.
    pub fn new(spec: ShardSpec, order: &NestOrder) -> Self {
        let attr = order.arity().checked_sub(1).map(|last| order.attr_at(last));
        ShardRouter { spec, attr }
    }

    /// The spec being routed on.
    pub fn spec(&self) -> &ShardSpec {
        &self.spec
    }

    /// The routing attribute (`P(n−1)`), if the schema has one.
    pub fn attr(&self) -> Option<AttrId> {
        self.attr
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.spec.shard_count()
    }

    /// The shard a flat row routes to.
    pub fn route_row(&self, row: &[Atom]) -> usize {
        match self.attr {
            Some(a) => self.spec.route_value(row[a]),
            None => 0,
        }
    }

    /// The set of shards (sorted, deduplicated) that can hold any row
    /// whose outermost-attribute value lies in `values` — the predicate
    /// side of shard pruning: a selection that fixes `P(n−1)` to this
    /// value set can skip every other shard entirely, because routing is
    /// value-based and every atom in a shard's tuples routes to that
    /// shard. An empty value set prunes everything. Works for hash and
    /// range specs alike (under a range spec a contiguous value interval
    /// maps to a contiguous shard interval).
    pub fn shards_for_values(&self, values: &[Atom]) -> Vec<usize> {
        match self.attr {
            Some(_) => {
                let mut out: Vec<usize> =
                    values.iter().map(|&v| self.spec.route_value(v)).collect();
                out.sort_unstable();
                out.dedup();
                out
            }
            None => vec![0],
        }
    }
}

/// §4 maintenance cost aggregated across shards, with the per-shard
/// breakdown preserved (E18 reports both).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaintenanceCost {
    /// Sum over all shards.
    pub total: CostCounter,
    /// Per-shard counters, indexed by shard id.
    pub per_shard: Vec<CostCounter>,
}

impl MaintenanceCost {
    /// Zeroed counters for `shards` shards.
    pub fn new(shards: usize) -> Self {
        MaintenanceCost {
            total: CostCounter::new(),
            per_shard: vec![CostCounter::new(); shards],
        }
    }

    /// Records a cost against one shard (and the total).
    pub fn record(&mut self, shard: usize, cost: &CostCounter) {
        self.total.accumulate(cost);
        self.per_shard[shard].accumulate(cost);
    }

    /// Folds another aggregate into this one (shard counts must match).
    pub fn merge(&mut self, other: &MaintenanceCost) {
        debug_assert_eq!(self.per_shard.len(), other.per_shard.len());
        self.total.accumulate(&other.total);
        for (mine, theirs) in self.per_shard.iter_mut().zip(&other.per_shard) {
            mine.accumulate(theirs);
        }
    }
}

/// A canonical NFR partitioned on the outermost nest attribute: one
/// [`CanonicalRelation`] (plus one [`NestKernel`] rebuild scratch) per
/// shard, with every §4 operation routed to exactly one shard and batch
/// rebuilds fanned out across shards on scoped threads.
///
/// Invariant: shard `s` holds `ν_P(R*_s)` where `R*_s` is exactly the
/// set of flat rows whose `P(n−1)` value routes to `s` — checked
/// exhaustively by [`verify`](Self::verify) and the property suite.
/// Each shard's state — its [`CanonicalRelation`] *and* the columnar
/// segment synopsis over it — lives in one [`ShardVersion`] behind an
/// `Arc`. While the `Arc` is unshared (a never-published engine, a bulk
/// build) mutations happen in place at zero cost; once a version has
/// been published to an MVCC [`crate::mvcc::VersionCell`] the first
/// subsequent mutation on that shard clones it copy-on-write
/// ([`Arc::make_mut`]) so pinned readers keep streaming the old state.
#[derive(Debug)]
pub struct ShardedCanonical {
    schema: Arc<Schema>,
    order: NestOrder,
    router: ShardRouter,
    shards: Vec<Arc<ShardVersion>>,
    /// Per-shard nest-kernel scratch: rebuild arms re-use their shard's
    /// sort/intern buffers across batches (and threads never share one).
    kernels: Vec<NestKernel>,
    /// Target tuples per segment; [`DEFAULT_SEGMENT_ROWS`] unless
    /// overridden for tests/experiments.
    segment_rows: usize,
}

impl ShardedCanonical {
    /// An empty sharded canonical relation.
    pub fn new(schema: Arc<Schema>, order: NestOrder, spec: ShardSpec) -> Result<Self> {
        if order.arity() != schema.arity() {
            return Err(NfError::InvalidNestOrder(format!(
                "order covers {} attributes, schema has {}",
                order.arity(),
                schema.arity()
            )));
        }
        let router = ShardRouter::new(spec, &order);
        let n = router.shard_count();
        let shards = (0..n)
            .map(|_| {
                let canon = CanonicalRelation::new(schema.clone(), order.clone())?;
                Ok(Arc::new(ShardVersion::new(
                    canon,
                    ShardSegments::fresh_empty(),
                )))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(ShardedCanonical {
            schema,
            order,
            router,
            shards,
            kernels: (0..n).map(|_| NestKernel::new()).collect(),
            segment_rows: DEFAULT_SEGMENT_ROWS,
        })
    }

    /// Builds the sharded form of an existing 1NF relation: rows are
    /// routed first, then every shard nests its own rows — in parallel
    /// on scoped threads when there is more than one shard.
    pub fn from_flat(flat: &FlatRelation, order: NestOrder, spec: ShardSpec) -> Result<Self> {
        let mut sharded = Self::new(flat.schema().clone(), order, spec)?;
        let n = sharded.shard_count();
        let mut per_shard: Vec<Vec<FlatTuple>> = vec![Vec::new(); n];
        for row in flat.rows() {
            per_shard[sharded.router.route_row(row)].push(row.clone());
        }
        let order = &sharded.order;
        let schema = &sharded.schema;
        let mut built: Vec<Result<Option<CanonicalRelation>>> = (0..n).map(|_| Ok(None)).collect();
        std::thread::scope(|scope| {
            for ((slot, kernel), rows) in built
                .iter_mut()
                .zip(sharded.kernels.iter_mut())
                .zip(per_shard)
            {
                if rows.is_empty() {
                    continue; // keep the empty shard created by new()
                }
                let task = move || -> Result<Option<CanonicalRelation>> {
                    let flat = FlatRelation::from_rows(schema.clone(), rows)?;
                    CanonicalRelation::from_flat_with(kernel, &flat, order.clone()).map(Some)
                };
                if n == 1 {
                    *slot = task();
                } else {
                    scope.spawn(move || *slot = task());
                }
            }
        });
        for (slot, result) in sharded.shards.iter_mut().zip(built) {
            if let Some(canon) = result? {
                Arc::make_mut(slot).canon = canon;
            }
        }
        for s in 0..n {
            sharded.rebuild_segments_for(s);
        }
        Ok(sharded)
    }

    /// Re-emits one shard's segments from its (kernel-sorted) tuple
    /// vector. Only sound right after a rebuild arm, which is the only
    /// place it is called.
    fn rebuild_segments_for(&mut self, shard: usize) {
        let attr = self.router.attr();
        let rows = self.segment_rows;
        let ShardVersion { canon, segments } = Arc::make_mut(&mut self.shards[shard]);
        segments.rebuild(canon.relation().tuples(), attr, rows);
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The nest order every shard is canonical for.
    pub fn order(&self) -> &NestOrder {
        &self.order
    }

    /// The value router.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// One shard's canonical relation.
    pub fn shard(&self, idx: usize) -> &CanonicalRelation {
        self.shards[idx].canon()
    }

    /// One shard's current version (canonical form + segments).
    pub fn version(&self, idx: usize) -> &Arc<ShardVersion> {
        &self.shards[idx]
    }

    /// Cheap `Arc` clones of every shard's current version, in shard
    /// order — what a table publishes into its MVCC
    /// [`crate::mvcc::VersionCell`].
    pub fn versions(&self) -> Vec<Arc<ShardVersion>> {
        self.shards.iter().map(Arc::clone).collect()
    }

    /// One shard's columnar segment state.
    pub fn shard_segments(&self, idx: usize) -> &ShardSegments {
        self.shards[idx].segments()
    }

    /// Changes the target tuples-per-segment and re-tiles every shard
    /// whose tuple vector is still in canonical sorted order (stale
    /// shards keep their delta until the next rebuild). Test and
    /// experiment knob.
    pub fn set_segment_rows(&mut self, rows: usize) {
        self.segment_rows = rows.max(1);
        for s in 0..self.shards.len() {
            if self.shards[s].segments().is_fresh() {
                self.rebuild_segments_for(s);
            }
        }
    }

    /// The target tuples-per-segment.
    pub fn segment_rows(&self) -> usize {
        self.segment_rows
    }

    /// Total NF² tuples across shards. For more than one shard this can
    /// exceed the unsharded canonical count: a global tuple whose
    /// `P(n−1)` set spans shards is held split (see
    /// [`to_relation`](Self::to_relation)).
    pub fn tuple_count(&self) -> usize {
        self.shards.iter().map(|s| s.tuple_count()).sum()
    }

    /// Total flat rows (`|R*|`) across shards.
    pub fn flat_count(&self) -> u128 {
        self.shards.iter().map(|s| s.flat_count()).sum()
    }

    /// Whether no shard holds any row.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.relation().is_empty())
    }

    /// Whether `R*` contains `row` — `searcht` against exactly one
    /// shard. A row of the wrong arity is contained in nothing.
    pub fn contains(&self, row: &[Atom]) -> bool {
        if row.len() != self.schema.arity() {
            return false;
        }
        self.shards[self.router.route_row(row)].contains(row)
    }

    /// §4.2 insertion, routed to one shard. Returns `true` if new.
    pub fn insert(&mut self, row: FlatTuple) -> Result<bool> {
        let mut cost = MaintenanceCost::new(self.shard_count());
        self.insert_counted(row, &mut cost)
    }

    /// [`insert`](Self::insert) with per-shard cost accounting.
    pub fn insert_counted(&mut self, row: FlatTuple, cost: &mut MaintenanceCost) -> Result<bool> {
        self.check_arity(row.len())?;
        let shard = self.router.route_row(&row);
        let mut c = CostCounter::new();
        let v = Arc::make_mut(&mut self.shards[shard]);
        let fresh = v.canon.insert_counted(row, &mut c)?;
        cost.record(shard, &c);
        if fresh {
            // The §4 point path reconstructs tuples in place, breaking
            // the sorted order the segments describe.
            v.segments.note_delta(1);
        }
        Ok(fresh)
    }

    /// §4.3 deletion, routed to one shard. Returns `true` if present.
    pub fn delete(&mut self, row: &[Atom]) -> Result<bool> {
        let mut cost = MaintenanceCost::new(self.shard_count());
        self.delete_counted(row, &mut cost)
    }

    /// [`delete`](Self::delete) with per-shard cost accounting.
    pub fn delete_counted(&mut self, row: &[Atom], cost: &mut MaintenanceCost) -> Result<bool> {
        self.check_arity(row.len())?;
        let shard = self.router.route_row(row);
        let mut c = CostCounter::new();
        let v = Arc::make_mut(&mut self.shards[shard]);
        let hit = v.canon.delete_counted(row, &mut c)?;
        cost.record(shard, &c);
        if hit {
            v.segments.note_delta(1);
        }
        Ok(hit)
    }

    fn check_arity(&self, got: usize) -> Result<()> {
        if got != self.schema.arity() {
            return Err(NfError::ArityMismatch {
                expected: self.schema.arity(),
                got,
            });
        }
        Ok(())
    }

    /// Splits a batch into per-shard sub-batches (order preserved within
    /// each shard; ops on different shards touch disjoint row sets, so
    /// cross-shard order is immaterial). Also validates arity up front so
    /// the parallel application cannot fail halfway through.
    fn partition_ops(&self, ops: &[Op]) -> Result<Vec<Vec<Op>>> {
        let mut per_shard: Vec<Vec<Op>> = vec![Vec::new(); self.shard_count()];
        for op in ops {
            self.check_arity(op.row().len())?;
            per_shard[self.router.route_row(op.row())].push(op.clone());
        }
        Ok(per_shard)
    }

    /// Applies a batch through the auto strategy **per shard** — each
    /// shard independently picks §4 incremental maintenance or a kernel
    /// rebuild for its own sub-batch, and sub-batches run concurrently
    /// under [`std::thread::scope`]. Returns the combined summary and
    /// the number of shards that took the rebuild arm.
    pub fn apply_batch_auto(
        &mut self,
        ops: &[Op],
        cost: &mut MaintenanceCost,
    ) -> Result<(BatchSummary, usize)> {
        let per_shard = self.partition_ops(ops)?;
        let busy = per_shard.iter().filter(|b| !b.is_empty()).count();
        type ShardOutcome = Result<(BatchSummary, bool, CostCounter)>;
        let mut outcomes: Vec<Option<ShardOutcome>> =
            (0..self.shard_count()).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (((version, kernel), batch), slot) in self
                .shards
                .iter_mut()
                .zip(self.kernels.iter_mut())
                .zip(&per_shard)
                .zip(outcomes.iter_mut())
            {
                if batch.is_empty() {
                    continue;
                }
                let mut task = move || -> ShardOutcome {
                    let mut c = CostCounter::new();
                    // Copy-on-write: clones the shard only if its version
                    // is still shared with a published MVCC snapshot.
                    let v = Arc::make_mut(version);
                    let (summary, rebuilt) =
                        apply_batch_auto_with(kernel, &mut v.canon, batch, &mut c)?;
                    Ok((summary, rebuilt, c))
                };
                if busy == 1 {
                    *slot = Some(task()); // no thread overhead for one shard
                } else {
                    scope.spawn(move || *slot = Some(task()));
                }
            }
        });
        let mut summary = BatchSummary::default();
        let mut rebuilds = 0usize;
        for (shard, outcome) in outcomes.into_iter().enumerate() {
            let Some(outcome) = outcome else { continue };
            let (s, rebuilt, c) = outcome?;
            summary.inserted += s.inserted;
            summary.deleted += s.deleted;
            summary.noops += s.noops;
            rebuilds += usize::from(rebuilt);
            cost.record(shard, &c);
            if rebuilt {
                // The rebuild arm re-nested the shard through the
                // kernel: its tuple vector is sorted again, so absorb
                // the delta and re-emit segments (no extra sort).
                self.rebuild_segments_for(shard);
            } else if s.inserted + s.deleted > 0 {
                Arc::make_mut(&mut self.shards[shard])
                    .segments
                    .note_delta(s.inserted + s.deleted);
            }
        }
        Ok((summary, rebuilds))
    }

    /// Forces the rebuild arm on every shard a batch touches: each shard
    /// expands its rows, applies its sub-batch, and re-nests through its
    /// own kernel — concurrently across shards. Shards the batch does not
    /// touch are left untouched entirely.
    pub fn rebuild_batch(&mut self, ops: &[Op]) -> Result<BatchSummary> {
        let per_shard = self.partition_ops(ops)?;
        let busy = per_shard.iter().filter(|b| !b.is_empty()).count();
        type ShardOutcome = Result<BatchSummary>;
        let mut outcomes: Vec<Option<ShardOutcome>> =
            (0..self.shard_count()).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (((version, kernel), batch), slot) in self
                .shards
                .iter_mut()
                .zip(self.kernels.iter_mut())
                .zip(&per_shard)
                .zip(outcomes.iter_mut())
            {
                if batch.is_empty() {
                    continue;
                }
                let mut task = move || -> ShardOutcome {
                    let canon = &mut Arc::make_mut(version).canon;
                    let mut summary = BatchSummary::default();
                    let mut flat = canon.relation().expand();
                    for op in batch {
                        match op {
                            Op::Insert(row) => {
                                if flat.insert(row.clone())? {
                                    summary.inserted += 1;
                                } else {
                                    summary.noops += 1;
                                }
                            }
                            Op::Delete(row) => {
                                if flat.remove(row) {
                                    summary.deleted += 1;
                                } else {
                                    summary.noops += 1;
                                }
                            }
                        }
                    }
                    *canon =
                        CanonicalRelation::from_flat_with(kernel, &flat, canon.order().clone())?;
                    Ok(summary)
                };
                if busy == 1 {
                    *slot = Some(task());
                } else {
                    scope.spawn(move || *slot = Some(task()));
                }
            }
        });
        let mut summary = BatchSummary::default();
        for (shard, outcome) in outcomes.into_iter().enumerate() {
            let Some(outcome) = outcome else { continue };
            let s = outcome?;
            summary.inserted += s.inserted;
            summary.deleted += s.deleted;
            summary.noops += s.noops;
            self.rebuild_segments_for(shard);
        }
        Ok(summary)
    }

    /// Replays a long op stream in adaptive batches (each batch grows
    /// with the relation, mirroring
    /// [`replay_adaptive_with`](crate::bulk::replay_adaptive_with)), with
    /// every batch applied through the parallel
    /// [`apply_batch_auto`](Self::apply_batch_auto). Returns
    /// `(batches, shard rebuilds)`.
    pub fn replay_adaptive(
        &mut self,
        stream: &[Op],
        min_batch: usize,
        cost: &mut MaintenanceCost,
    ) -> Result<(usize, usize)> {
        let min_batch = min_batch.max(1);
        let (mut batches, mut rebuilds) = (0usize, 0usize);
        let mut pos = 0usize;
        while pos < stream.len() {
            let flat = self.flat_count().min(usize::MAX as u128) as usize;
            let target = flat.max(min_batch);
            let remaining = stream.len() - pos;
            let take = if remaining < 2 * target {
                remaining
            } else {
                target
            };
            let (_, r) = self.apply_batch_auto(&stream[pos..pos + take], cost)?;
            batches += 1;
            rebuilds += r;
            pos += take;
        }
        Ok((batches, rebuilds))
    }

    /// The exact global canonical form `ν_P(R*)`: concatenates the
    /// per-shard tuples (disjoint by routing) and runs the final
    /// `ν_{P(n−1)}` grouping once, merging tuples whose `P(n−1)` sets
    /// were split across shards. One shard needs no merge at all.
    pub fn to_relation(&self) -> NfRelation {
        if self.shards.len() == 1 {
            return self.shards[0].relation().clone();
        }
        let tuples: Vec<NfTuple> = self
            .shards
            .iter()
            .flat_map(|s| s.tuples().iter().cloned())
            .collect();
        if tuples.is_empty() {
            return NfRelation::new(self.schema.clone());
        }
        let Some(attr) = self.router.attr() else {
            // Zero-arity schemas route everything to shard 0 above.
            unreachable!("multi-shard relations have a routing attribute");
        };
        // Shards partition the P(n−1) value space, so cross-shard
        // expansions are disjoint and the concatenation is a valid NFR.
        let concat = NfRelation::from_disjoint_tuples(self.schema.clone(), tuples)
            .expect("per-shard tuples carry the shared schema arity");
        NestKernel::new().nest_once(&concat, attr)
    }

    /// Re-derives every invariant from scratch: each shard is canonical
    /// for its own rows, every row lives in the shard it routes to,
    /// fresh segments decode back to exactly the tuple store they tile,
    /// and the merged relation equals the unsharded canonical form.
    /// Test/diagnostic helper.
    pub fn verify(&self) -> Result<()> {
        let mut all_rows = FlatRelation::new(self.schema.clone());
        for (idx, shard) in self.shards.iter().enumerate() {
            shard.canon().verify()?;
            self.verify_segments(idx)?;
            for row in shard.relation().expand().rows() {
                if self.router.route_row(row) != idx {
                    return Err(NfError::InvalidShardSpec(format!(
                        "row routed to shard {} but stored in shard {idx}",
                        self.router.route_row(row)
                    )));
                }
                all_rows.insert(row.clone())?;
            }
        }
        let unsharded = crate::nest::canonical_of_flat(&all_rows, &self.order);
        if self.to_relation() == unsharded {
            Ok(())
        } else {
            Err(NfError::InvalidShardSpec(
                "merged sharded relation differs from the unsharded canonical form".into(),
            ))
        }
    }

    /// Checks one shard's segment invariants: fresh segments must tile
    /// the tuple vector contiguously from 0 and decode back to exactly
    /// the tuples they cover. Stale segments assert nothing — they are
    /// a dead synopsis awaiting the next rebuild.
    fn verify_segments(&self, idx: usize) -> Result<()> {
        let ss = self.shards[idx].segments();
        if !ss.is_fresh() {
            return Ok(());
        }
        let tuples = self.shards[idx].tuples();
        let seg_err = |msg: String| NfError::InvalidShardSpec(format!("shard {idx}: {msg}"));
        if ss.covered_rows() != tuples.len() {
            return Err(seg_err(format!(
                "fresh segments cover {} of {} tuples",
                ss.covered_rows(),
                tuples.len()
            )));
        }
        let mut next = 0usize;
        for seg in ss.segments() {
            if seg.start() != next {
                return Err(seg_err(format!(
                    "segment starts at {} but previous ended at {next}",
                    seg.start()
                )));
            }
            if seg.decode() != tuples[seg.range()] {
                return Err(seg_err(format!(
                    "segment at {next} does not decode to its tuple slice"
                )));
            }
            next = seg.range().end;
        }
        Ok(())
    }
}

/// One shard's **writer-side** state, split out of [`ShardedCanonical`]
/// so each shard can sit behind its own lock: the shard's current
/// [`ShardVersion`] (mutated copy-on-write), its private [`NestKernel`]
/// rebuild scratch, and its accumulated §4 maintenance cost.
///
/// A table that wants per-shard write concurrency calls
/// [`ShardedCanonical::into_writers`] once at construction and wraps
/// each writer in a mutex; routed point ops then lock exactly one
/// writer, build the replacement `Arc<ShardVersion>` in parallel with
/// writers on other shards, and publish through
/// [`crate::mvcc::VersionCell::submit`]. The writer itself is
/// lock-free — acquisition ordering across writers is the caller's
/// contract (the storage write module locks ascending shard index).
#[derive(Debug)]
pub struct ShardWriter {
    version: Arc<ShardVersion>,
    kernel: NestKernel,
    cost: CostCounter,
    /// The routing attribute (`P(n−1)`) — needed to re-emit segments
    /// after a rebuild arm. `None` only for zero-arity schemas.
    attr: Option<AttrId>,
    arity: usize,
    segment_rows: usize,
}

impl ShardWriter {
    /// The shard's current version — what gets published after a
    /// mutation (cheap `Arc` clone).
    pub fn version(&self) -> &Arc<ShardVersion> {
        &self.version
    }

    /// §4 maintenance cost accumulated by every op routed here.
    pub fn cost(&self) -> &CostCounter {
        &self.cost
    }

    /// The target tuples-per-segment currently in effect.
    pub fn segment_rows(&self) -> usize {
        self.segment_rows
    }

    /// Changes the tuples-per-segment target and re-tiles the shard if
    /// its tuple vector is still in canonical sorted order.
    pub fn set_segment_rows(&mut self, rows: usize) {
        self.segment_rows = rows.max(1);
        if self.version.segments().is_fresh() {
            self.rebuild_segments();
        }
    }

    fn check_arity(&self, got: usize) -> Result<()> {
        if got != self.arity {
            return Err(NfError::ArityMismatch {
                expected: self.arity,
                got,
            });
        }
        Ok(())
    }

    fn rebuild_segments(&mut self) {
        let attr = self.attr;
        let rows = self.segment_rows;
        let ShardVersion { canon, segments } = Arc::make_mut(&mut self.version);
        segments.rebuild(canon.relation().tuples(), attr, rows);
    }

    /// §4.2 insertion against this shard. Returns `true` if new. The
    /// caller is responsible for having routed the row here.
    pub fn insert_counted(&mut self, row: FlatTuple) -> Result<bool> {
        self.check_arity(row.len())?;
        let mut c = CostCounter::new();
        let v = Arc::make_mut(&mut self.version);
        let fresh = v.canon.insert_counted(row, &mut c)?;
        self.cost.accumulate(&c);
        if fresh {
            v.segments.note_delta(1);
        }
        Ok(fresh)
    }

    /// §4.3 deletion against this shard. Returns `true` if present.
    pub fn delete_counted(&mut self, row: &[Atom]) -> Result<bool> {
        self.check_arity(row.len())?;
        let mut c = CostCounter::new();
        let v = Arc::make_mut(&mut self.version);
        let hit = v.canon.delete_counted(row, &mut c)?;
        self.cost.accumulate(&c);
        if hit {
            v.segments.note_delta(1);
        }
        Ok(hit)
    }

    /// Applies this shard's sub-batch through the auto strategy
    /// (incremental §4 maintenance or a kernel rebuild, whichever the
    /// batch-size heuristic picks) and keeps the segment synopsis
    /// consistent. Returns the summary and whether the rebuild arm ran.
    pub fn apply_batch(&mut self, batch: &[Op]) -> Result<(BatchSummary, bool)> {
        for op in batch {
            self.check_arity(op.row().len())?;
        }
        let mut c = CostCounter::new();
        let v = Arc::make_mut(&mut self.version);
        let (summary, rebuilt) =
            apply_batch_auto_with(&mut self.kernel, &mut v.canon, batch, &mut c)?;
        self.cost.accumulate(&c);
        if rebuilt {
            self.rebuild_segments();
        } else if summary.inserted + summary.deleted > 0 {
            v.segments.note_delta(summary.inserted + summary.deleted);
        }
        Ok((summary, rebuilt))
    }
}

impl ShardedCanonical {
    /// Splits this store into independent per-shard writer states — the
    /// constructor for a table's per-shard commit pipeline. Each writer
    /// takes its shard's version, kernel scratch, and segment-rows
    /// target; the shared routing/schema context stays with the caller.
    pub fn into_writers(self) -> Vec<ShardWriter> {
        let arity = self.schema.arity();
        let attr = self.router.attr();
        let rows = self.segment_rows;
        self.shards
            .into_iter()
            .zip(self.kernels)
            .map(|(version, kernel)| ShardWriter {
                version,
                kernel,
                cost: CostCounter::new(),
                attr,
                arity,
                segment_rows: rows,
            })
            .collect()
    }

    /// Reassembles a store from published shard versions — the
    /// inspection path for a table whose writer state lives in
    /// per-shard lanes. The versions must come from a store built with
    /// the same schema, order, and spec (shard count must match).
    pub fn from_versions(
        schema: Arc<Schema>,
        order: NestOrder,
        spec: ShardSpec,
        versions: Vec<Arc<ShardVersion>>,
        segment_rows: usize,
    ) -> Result<Self> {
        let mut out = Self::new(schema, order, spec)?;
        if versions.len() != out.shard_count() {
            return Err(NfError::InvalidShardSpec(format!(
                "{} versions supplied for a {}-shard spec",
                versions.len(),
                out.shard_count()
            )));
        }
        out.shards = versions;
        out.segment_rows = segment_rows.max(1);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema(attrs: &[&str]) -> Arc<Schema> {
        Schema::new("R", attrs).unwrap()
    }

    fn row(vals: &[u32]) -> FlatTuple {
        vals.iter().map(|&v| Atom(v)).collect()
    }

    /// A deterministic pseudo-random flat relation.
    fn random_flat(arity: usize, rows: usize, domain: u32, seed: u64) -> FlatRelation {
        let names: Vec<String> = (0..arity).map(|i| format!("E{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let s = Schema::new("RND", &refs).unwrap();
        let mut state = seed | 1;
        let mut out = Vec::new();
        for _ in 0..rows {
            let row: Vec<Atom> = (0..arity)
                .map(|a| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    Atom(100 * a as u32 + (state >> 33) as u32 % domain)
                })
                .collect();
            out.push(row);
        }
        FlatRelation::from_rows(s, out).unwrap()
    }

    fn specs(domain_hint: u32) -> Vec<ShardSpec> {
        vec![
            ShardSpec::single(),
            ShardSpec::hash(2).unwrap(),
            ShardSpec::hash(7).unwrap(),
            ShardSpec::range(vec![Atom(domain_hint / 3), Atom(2 * domain_hint / 3)]).unwrap(),
        ]
    }

    #[test]
    fn spec_validation_and_counts() {
        assert!(ShardSpec::hash(0).is_err());
        assert_eq!(ShardSpec::hash(4).unwrap().shard_count(), 4);
        assert!(ShardSpec::range(vec![Atom(5), Atom(5)]).is_err());
        assert!(ShardSpec::range(vec![Atom(9), Atom(2)]).is_err());
        let r = ShardSpec::range(vec![Atom(10), Atom(20)]).unwrap();
        assert_eq!(r.shard_count(), 3);
        assert_eq!(r.route_value(Atom(3)), 0);
        assert_eq!(r.route_value(Atom(10)), 1);
        assert_eq!(r.route_value(Atom(19)), 1);
        assert_eq!(r.route_value(Atom(20)), 2);
        assert_eq!(ShardSpec::single().shard_count(), 1);
    }

    #[test]
    fn hash_routing_is_deterministic_and_in_bounds() {
        let spec = ShardSpec::hash(5).unwrap();
        for v in 0..1000u32 {
            let s = spec.route_value(Atom(v));
            assert!(s < 5);
            assert_eq!(s, spec.route_value(Atom(v)));
        }
        // The mixer spreads dense ids: no shard hogs everything.
        let mut counts = [0usize; 5];
        for v in 0..1000u32 {
            counts[spec.route_value(Atom(v))] += 1;
        }
        assert!(counts.iter().all(|&c| c > 100), "balanced-ish: {counts:?}");
    }

    #[test]
    fn router_targets_the_outermost_attribute() {
        let order = NestOrder::new(vec![2, 0, 1], 3).unwrap();
        let router = ShardRouter::new(ShardSpec::hash(4).unwrap(), &order);
        assert_eq!(router.attr(), Some(1), "P(n-1) is the last-applied attr");
        let r = row(&[7, 9, 11]);
        assert_eq!(
            router.route_row(&r),
            router.spec().route_value(Atom(9)),
            "rows route on the outermost attribute's value"
        );
    }

    #[test]
    fn sharded_from_flat_merges_back_to_unsharded() {
        for arity in 1..=3usize {
            for seed in 0..4u64 {
                let flat = random_flat(arity, 60, 5, 0xC0FFEE ^ seed);
                for order in NestOrder::all(arity) {
                    let unsharded = crate::nest::canonical_of_flat(&flat, &order);
                    for spec in specs(100 * (arity as u32 - 1) + 3) {
                        let sharded =
                            ShardedCanonical::from_flat(&flat, order.clone(), spec.clone())
                                .unwrap();
                        assert_eq!(
                            sharded.to_relation(),
                            unsharded,
                            "arity {arity} seed {seed} order {order} spec {spec:?}"
                        );
                        assert_eq!(sharded.flat_count(), flat.len() as u128);
                    }
                }
            }
        }
    }

    #[test]
    fn routed_point_maintenance_matches_unsharded() {
        let flat = random_flat(3, 50, 4, 0xFEED);
        let order = NestOrder::identity(3);
        let mut unsharded = CanonicalRelation::from_flat(&flat, order.clone()).unwrap();
        let mut sharded =
            ShardedCanonical::from_flat(&flat, order.clone(), ShardSpec::hash(4).unwrap()).unwrap();
        let mut state = 0x5EEDu64;
        for _ in 0..120 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let r = row(&[
                (state >> 13) as u32 % 5,
                100 + (state >> 29) as u32 % 5,
                200 + (state >> 47) as u32 % 4,
            ]);
            if state.is_multiple_of(3) {
                assert_eq!(sharded.delete(&r).unwrap(), unsharded.delete(&r).unwrap());
            } else {
                assert_eq!(
                    sharded.insert(r.clone()).unwrap(),
                    unsharded.insert(r).unwrap()
                );
            }
        }
        assert_eq!(sharded.to_relation(), *unsharded.relation());
        sharded.verify().unwrap();
    }

    #[test]
    fn contains_routes_to_one_shard() {
        let flat = random_flat(2, 40, 6, 1);
        let sharded =
            ShardedCanonical::from_flat(&flat, NestOrder::identity(2), ShardSpec::hash(3).unwrap())
                .unwrap();
        for r in flat.rows() {
            assert!(sharded.contains(r));
        }
        assert!(!sharded.contains(&row(&[999, 999])));
    }

    #[test]
    fn batches_agree_with_unsharded_bulk() {
        use crate::bulk::apply_batch;
        let flat = random_flat(3, 40, 4, 7);
        let order = NestOrder::identity(3);
        let mut ops = Vec::new();
        let mut state = 0xABCDu64;
        for _ in 0..80 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let r = row(&[
                (state >> 11) as u32 % 6,
                100 + (state >> 31) as u32 % 5,
                200 + (state >> 49) as u32 % 4,
            ]);
            if state.is_multiple_of(4) {
                ops.push(Op::Delete(r));
            } else {
                ops.push(Op::Insert(r));
            }
        }
        let mut oracle = CanonicalRelation::from_flat(&flat, order.clone()).unwrap();
        let mut oracle_cost = CostCounter::new();
        let oracle_summary = apply_batch(&mut oracle, &ops, &mut oracle_cost).unwrap();
        for spec in specs(5) {
            // Auto strategy.
            let mut auto = ShardedCanonical::from_flat(&flat, order.clone(), spec.clone()).unwrap();
            let mut cost = MaintenanceCost::new(auto.shard_count());
            let (summary, _) = auto.apply_batch_auto(&ops, &mut cost).unwrap();
            assert_eq!(summary, oracle_summary, "{spec:?}");
            assert_eq!(auto.to_relation(), *oracle.relation(), "{spec:?}");
            // Forced rebuild.
            let mut rebuilt = ShardedCanonical::from_flat(&flat, order.clone(), spec).unwrap();
            let summary = rebuilt.rebuild_batch(&ops).unwrap();
            assert_eq!(summary, oracle_summary);
            assert_eq!(rebuilt.to_relation(), *oracle.relation());
        }
    }

    #[test]
    fn replay_adaptive_ingests_everything() {
        let flat = random_flat(3, 120, 6, 21);
        let order = NestOrder::identity(3);
        let stream: Vec<Op> = flat.rows().cloned().map(Op::Insert).collect();
        let mut sharded = ShardedCanonical::new(
            flat.schema().clone(),
            order.clone(),
            ShardSpec::hash(4).unwrap(),
        )
        .unwrap();
        let mut cost = MaintenanceCost::new(4);
        let (batches, rebuilds) = sharded.replay_adaptive(&stream, 8, &mut cost).unwrap();
        assert!(batches >= 2);
        assert!(rebuilds >= batches, "pure inserts rebuild on every shard");
        assert_eq!(sharded.flat_count(), flat.len() as u128);
        assert_eq!(
            sharded.to_relation(),
            crate::nest::canonical_of_flat(&flat, &order)
        );
    }

    #[test]
    fn candidate_probes_drop_with_shard_count() {
        // The point of the subsystem: candt scans one shard, so per-op
        // probes fall roughly by the shard count.
        let flat = random_flat(3, 400, 12, 4242);
        let order = NestOrder::identity(3);
        let probes_of = |spec: ShardSpec| -> u64 {
            let mut c = ShardedCanonical::from_flat(&flat, order.clone(), spec).unwrap();
            let mut cost = MaintenanceCost::new(c.shard_count());
            let mut state = 0x1234u64;
            for i in 0..32 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let r = row(&[
                    (state >> 11) as u32 % 13,
                    100 + (state >> 31) as u32 % 13,
                    200 + i as u32 % 12,
                ]);
                let _ = c.insert_counted(r.clone(), &mut cost).unwrap();
                let _ = c.delete_counted(&r, &mut cost).unwrap();
            }
            cost.total.candidate_probes
        };
        let p1 = probes_of(ShardSpec::single());
        let p4 = probes_of(ShardSpec::hash(4).unwrap());
        assert!(
            p4 * 2 <= p1,
            "4 shards must cut candidate probes at least in half: {p1} -> {p4}"
        );
    }

    #[test]
    fn maintenance_cost_breaks_down_per_shard() {
        let flat = random_flat(2, 60, 8, 77);
        let mut sharded =
            ShardedCanonical::from_flat(&flat, NestOrder::identity(2), ShardSpec::hash(3).unwrap())
                .unwrap();
        let mut cost = MaintenanceCost::new(3);
        for i in 0..20u32 {
            sharded.insert(row(&[500 + i, 600 + i])).unwrap();
        }
        let mut state = 9u64;
        for _ in 0..20 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let r = row(&[(state >> 13) as u32 % 8, 100 + (state >> 33) as u32 % 8]);
            let _ = sharded.insert_counted(r, &mut cost).unwrap();
        }
        let sum: u64 = cost.per_shard.iter().map(|c| c.candidate_probes).sum();
        assert_eq!(sum, cost.total.candidate_probes, "breakdown sums to total");
        assert!(cost.per_shard.iter().filter(|c| c.recons_calls > 0).count() >= 2);
        let mut merged = MaintenanceCost::new(3);
        merged.merge(&cost);
        merged.merge(&cost);
        assert_eq!(
            merged.total.candidate_probes,
            2 * cost.total.candidate_probes
        );
    }

    #[test]
    fn arity_and_order_mismatches_are_rejected() {
        let s = schema(&["A", "B"]);
        assert!(
            ShardedCanonical::new(s.clone(), NestOrder::identity(3), ShardSpec::single()).is_err()
        );
        let mut c =
            ShardedCanonical::new(s, NestOrder::identity(2), ShardSpec::hash(2).unwrap()).unwrap();
        assert!(c.insert(row(&[1])).is_err());
        assert!(c.delete(&row(&[1, 2, 3])).is_err());
        assert!(c
            .apply_batch_auto(&[Op::Insert(row(&[1]))], &mut MaintenanceCost::new(2))
            .is_err());
    }

    #[test]
    fn segments_follow_the_rebuild_and_delta_lifecycle() {
        let flat = random_flat(3, 200, 9, 0xBEEF);
        let order = NestOrder::identity(3);
        let mut sharded =
            ShardedCanonical::from_flat(&flat, order.clone(), ShardSpec::hash(4).unwrap()).unwrap();
        // Fresh after a cold build: every shard tiled and decodable.
        for s in 0..4 {
            let ss = sharded.shard_segments(s);
            assert!(ss.is_fresh());
            assert_eq!(ss.covered_rows(), sharded.shard(s).tuple_count());
        }
        sharded.verify().unwrap();

        // A point op marks exactly the routed shard stale.
        let r = row(&[50, 150, 250]); // outside random_flat's value ranges
        let shard = sharded.router().route_row(&r);
        assert!(sharded.insert(r.clone()).unwrap());
        assert!(!sharded.shard_segments(shard).is_fresh());
        assert_eq!(sharded.shard_segments(shard).delta_ops(), 1);
        assert!((0..4)
            .filter(|&s| s != shard)
            .all(|s| sharded.shard_segments(s).is_fresh()));
        sharded.verify().unwrap(); // stale segments assert nothing

        // A no-op (duplicate insert / absent delete) leaves segments alone.
        assert!(!sharded.insert(r.clone()).unwrap());
        assert_eq!(sharded.shard_segments(shard).delta_ops(), 1);

        // A forced rebuild absorbs the delta and re-emits segments.
        sharded.rebuild_batch(&[Op::Delete(r)]).unwrap();
        assert!(sharded.shard_segments(shard).is_fresh());
        assert_eq!(sharded.shard_segments(shard).delta_ops(), 0);
        sharded.verify().unwrap();
    }

    #[test]
    fn auto_batches_refresh_on_rebuild_arm_only() {
        let flat = random_flat(2, 30, 5, 3);
        let order = NestOrder::identity(2);
        let mut sharded =
            ShardedCanonical::from_flat(&flat, order, ShardSpec::hash(2).unwrap()).unwrap();
        // A big batch (≥ relation size) takes the rebuild arm everywhere
        // it lands: segments must come back fresh.
        let big: Vec<Op> = (0..200u32)
            .map(|i| Op::Insert(row(&[1000 + i, 2000 + i % 7])))
            .collect();
        let mut cost = MaintenanceCost::new(2);
        let (_, rebuilds) = sharded.apply_batch_auto(&big, &mut cost).unwrap();
        assert!(rebuilds >= 1);
        for s in 0..2 {
            assert!(sharded.shard_segments(s).is_fresh());
        }
        // A tiny batch goes incremental and leaves a recorded delta.
        let tiny = [Op::Insert(row(&[5000, 6000]))];
        let shard = sharded.router().route_row(tiny[0].row());
        let (_, rebuilds) = sharded.apply_batch_auto(&tiny, &mut cost).unwrap();
        assert_eq!(rebuilds, 0, "one op against a large shard is incremental");
        assert!(!sharded.shard_segments(shard).is_fresh());
        assert_eq!(sharded.shard_segments(shard).delta_ops(), 1);
        sharded.verify().unwrap();
    }

    #[test]
    fn set_segment_rows_retiles_fresh_shards() {
        let flat = random_flat(2, 300, 40, 11);
        let mut sharded =
            ShardedCanonical::from_flat(&flat, NestOrder::identity(2), ShardSpec::single())
                .unwrap();
        let one = sharded.shard_segments(0).segment_count();
        assert_eq!(one, 1, "300 rows fit one default-size segment");
        sharded.set_segment_rows(16);
        let tiled = sharded.shard_segments(0).segment_count();
        assert!(tiled > 1, "16-row target must split the shard");
        assert_eq!(
            sharded.shard_segments(0).covered_rows(),
            sharded.shard(0).tuple_count()
        );
        sharded.verify().unwrap();
    }

    #[test]
    fn shard_writers_mirror_the_monolithic_store() {
        let flat = random_flat(2, 60, 8, 55);
        let order = NestOrder::identity(2);
        let spec = ShardSpec::hash(3).unwrap();
        let mut oracle = ShardedCanonical::from_flat(&flat, order.clone(), spec.clone()).unwrap();
        let split = ShardedCanonical::from_flat(&flat, order.clone(), spec.clone()).unwrap();
        let schema = split.schema().clone();
        let router = split.router().clone();
        let seg_rows = split.segment_rows();
        let mut writers = split.into_writers();
        assert_eq!(writers.len(), 3);

        // Routed point ops through the writer lanes track the oracle.
        let mut state = 0x51EDu64;
        for _ in 0..60 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let r = row(&[(state >> 13) as u32 % 9, 100 + (state >> 33) as u32 % 9]);
            let shard = router.route_row(&r);
            if state.is_multiple_of(3) {
                assert_eq!(
                    writers[shard].delete_counted(&r).unwrap(),
                    oracle.delete(&r).unwrap()
                );
            } else {
                assert_eq!(
                    writers[shard].insert_counted(r.clone()).unwrap(),
                    oracle.insert(r).unwrap()
                );
            }
        }
        // A per-shard sub-batch through the writer matches the oracle.
        let batch: Vec<Op> = (0..40u32)
            .map(|i| Op::Insert(row(&[3000 + i, 4000])))
            .collect();
        let shard = router.route_row(batch[0].row());
        let (summary, _) = writers[shard].apply_batch(&batch).unwrap();
        let mut cost = MaintenanceCost::new(oracle.shard_count());
        let (oracle_summary, _) = oracle.apply_batch_auto(&batch, &mut cost).unwrap();
        assert_eq!(summary, oracle_summary);

        // Reassembled from the writers' versions, the store verifies and
        // merges to the oracle's canonical form.
        let versions: Vec<_> = writers.iter().map(|w| Arc::clone(w.version())).collect();
        let view =
            ShardedCanonical::from_versions(schema, order, spec, versions, seg_rows).unwrap();
        view.verify().unwrap();
        assert_eq!(view.to_relation(), oracle.to_relation());
        assert!(
            writers.iter().map(|w| w.cost().recons_calls).sum::<u64>() > 0,
            "writer lanes accumulate maintenance cost"
        );
    }

    #[test]
    fn shard_writer_guards_arity_and_segment_rows() {
        let s = schema(&["A", "B"]);
        let store =
            ShardedCanonical::new(s, NestOrder::identity(2), ShardSpec::hash(2).unwrap()).unwrap();
        let mut writers = store.into_writers();
        assert!(writers[0].insert_counted(row(&[1])).is_err());
        assert!(writers[0].delete_counted(&row(&[1, 2, 3])).is_err());
        assert!(writers[0].apply_batch(&[Op::Insert(row(&[9]))]).is_err());
        for i in 0..40u32 {
            let _ = writers[0].insert_counted(row(&[i, i])).ok();
        }
        writers[0].set_segment_rows(4);
        assert_eq!(writers[0].segment_rows(), 4);
    }

    #[test]
    fn from_versions_rejects_shard_count_mismatch() {
        let s = schema(&["A", "B"]);
        let store = ShardedCanonical::new(
            s.clone(),
            NestOrder::identity(2),
            ShardSpec::hash(2).unwrap(),
        )
        .unwrap();
        let versions = store.versions();
        assert!(ShardedCanonical::from_versions(
            s,
            NestOrder::identity(2),
            ShardSpec::hash(3).unwrap(),
            versions,
            DEFAULT_SEGMENT_ROWS,
        )
        .is_err());
    }

    #[test]
    fn empty_and_single_row_relations() {
        let s = schema(&["A", "B"]);
        let c = ShardedCanonical::new(
            s.clone(),
            NestOrder::identity(2),
            ShardSpec::hash(4).unwrap(),
        )
        .unwrap();
        assert!(c.is_empty());
        assert!(c.to_relation().is_empty());
        c.verify().unwrap();
        let f = FlatRelation::from_rows(s, vec![row(&[1, 2])]).unwrap();
        let c =
            ShardedCanonical::from_flat(&f, NestOrder::identity(2), ShardSpec::hash(4).unwrap())
                .unwrap();
        assert_eq!(c.tuple_count(), 1);
        assert_eq!(c.to_relation().tuple_count(), 1);
    }
}
