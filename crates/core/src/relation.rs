//! Flat (1NF) and NF² relations, and the `R ↔ R*` correspondence
//! (Theorem 1).
//!
//! An [`NfRelation`] is a set of NF² tuples whose expansions are pairwise
//! disjoint — exactly the class of relations reachable from a 1NF relation
//! by compositions and decompositions (DESIGN.md D1). Its underlying 1NF
//! relation `R*` is therefore unique (Theorem 1): [`NfRelation::expand`]
//! computes it, and [`NfRelation::from_flat`] embeds a 1NF relation as the
//! all-singleton NFR.

use std::collections::BTreeSet;
use std::sync::Arc;

use crate::error::{NfError, Result};
use crate::schema::Schema;
use crate::tuple::{FlatTuple, NfTuple};

/// A first-normal-form relation: a *set* of flat tuples over a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatRelation {
    schema: Arc<Schema>,
    rows: BTreeSet<FlatTuple>,
}

impl FlatRelation {
    /// An empty 1NF relation.
    pub fn new(schema: Arc<Schema>) -> Self {
        Self {
            schema,
            rows: BTreeSet::new(),
        }
    }

    /// Builds from rows, validating arity. Duplicate rows collapse (set
    /// semantics).
    pub fn from_rows<I>(schema: Arc<Schema>, rows: I) -> Result<Self>
    where
        I: IntoIterator<Item = FlatTuple>,
    {
        let mut rel = Self::new(schema);
        for row in rows {
            rel.insert(row)?;
        }
        Ok(rel)
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Inserts a row. Returns `true` if it was new.
    pub fn insert(&mut self, row: FlatTuple) -> Result<bool> {
        if row.len() != self.schema.arity() {
            return Err(NfError::ArityMismatch {
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        Ok(self.rows.insert(row))
    }

    /// Removes a row. Returns `true` if it was present.
    pub fn remove(&mut self, row: &[crate::value::Atom]) -> bool {
        self.rows.remove(row)
    }

    /// Membership test.
    pub fn contains(&self, row: &[crate::value::Atom]) -> bool {
        self.rows.contains(row)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterates rows in lexicographic order.
    pub fn rows(&self) -> impl Iterator<Item = &FlatTuple> {
        self.rows.iter()
    }

    /// Consumes the relation, yielding its rows.
    pub fn into_rows(self) -> BTreeSet<FlatTuple> {
        self.rows
    }
}

/// A non-first-normal-form relation: distinct NF² tuples with pairwise
/// disjoint expansions over a shared schema.
///
/// The tuple *order* is not semantically meaningful; equality compares the
/// underlying sets of tuples.
#[derive(Debug, Clone)]
pub struct NfRelation {
    schema: Arc<Schema>,
    tuples: Vec<NfTuple>,
}

impl NfRelation {
    /// An empty NFR.
    pub fn new(schema: Arc<Schema>) -> Self {
        Self {
            schema,
            tuples: Vec::new(),
        }
    }

    /// Builds an NFR from tuples, validating the partition invariant.
    pub fn from_tuples(schema: Arc<Schema>, tuples: Vec<NfTuple>) -> Result<Self> {
        let rel = Self { schema, tuples };
        rel.validate()?;
        Ok(rel)
    }

    /// Builds an NFR from tuples that are known to be pairwise disjoint.
    ///
    /// Only the arity of each tuple is checked; the partition invariant is
    /// the **caller's contract**. Streaming pipelines use this to
    /// materialize intermediate results in linear time: every operator in
    /// [`nf2-algebra`'s streaming evaluator] preserves disjointness by
    /// construction, so re-running the `O(T²)` overlap scan of
    /// [`NfRelation::from_tuples`] per operator would turn evaluation
    /// quadratic.
    ///
    /// [`nf2-algebra`'s streaming evaluator]: https://docs.rs/nf2-algebra
    pub fn from_disjoint_tuples(schema: Arc<Schema>, tuples: Vec<NfTuple>) -> Result<Self> {
        for t in &tuples {
            if t.arity() != schema.arity() {
                return Err(NfError::ArityMismatch {
                    expected: schema.arity(),
                    got: t.arity(),
                });
            }
        }
        let rel = Self { schema, tuples };
        // Debug builds verify the caller's contract; release builds pay
        // only the arity scan above.
        debug_assert!(
            rel.validate().is_ok(),
            "from_disjoint_tuples caller violated the partition invariant"
        );
        Ok(rel)
    }

    /// Builds an NFR from tuples **without** validating. For internal use
    /// by operations that preserve the invariant by construction.
    pub(crate) fn from_tuples_unchecked(schema: Arc<Schema>, tuples: Vec<NfTuple>) -> Self {
        let rel = Self { schema, tuples };
        debug_assert!(
            rel.validate().is_ok(),
            "internal operation broke the NFR invariant"
        );
        rel
    }

    /// Embeds a 1NF relation as the NFR of singleton tuples — the starting
    /// point of every composition sequence (§3.2).
    pub fn from_flat(flat: &FlatRelation) -> Self {
        let tuples = flat.rows().map(|r| NfTuple::from_flat(r)).collect();
        Self {
            schema: flat.schema().clone(),
            tuples,
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The degree `n`.
    pub fn arity(&self) -> usize {
        self.schema.arity()
    }

    /// The NF² tuples (order not significant).
    pub fn tuples(&self) -> &[NfTuple] {
        &self.tuples
    }

    /// Number of NF² tuples.
    pub fn tuple_count(&self) -> usize {
        self.tuples.len()
    }

    /// Number of flat tuples represented (`|R*|`), without materialising
    /// the expansion.
    pub fn flat_count(&self) -> u128 {
        self.tuples.iter().map(NfTuple::expansion_count).sum()
    }

    /// Whether the relation represents no flat tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Theorem 1 — the unique underlying 1NF relation `R*`.
    pub fn expand(&self) -> FlatRelation {
        let mut rows = BTreeSet::new();
        for t in &self.tuples {
            for flat in t.expand() {
                let fresh = rows.insert(flat);
                debug_assert!(fresh, "partition invariant: expansions are disjoint");
            }
        }
        FlatRelation {
            schema: self.schema.clone(),
            rows,
        }
    }

    /// Whether some tuple's expansion contains `flat`.
    pub fn contains_flat(&self, flat: &[crate::value::Atom]) -> bool {
        self.find_containing(flat).is_some()
    }

    /// Index of the (unique, by disjointness) tuple containing `flat` —
    /// the paper's `searcht`.
    pub fn find_containing(&self, flat: &[crate::value::Atom]) -> Option<usize> {
        self.tuples.iter().position(|t| t.contains_flat(flat))
    }

    /// Validates the representation invariants:
    /// 1. every tuple has the schema's arity;
    /// 2. no two identical tuples;
    /// 3. expansions are pairwise disjoint (the partition invariant, D1).
    pub fn validate(&self) -> Result<()> {
        for t in &self.tuples {
            if t.arity() != self.schema.arity() {
                return Err(NfError::ArityMismatch {
                    expected: self.schema.arity(),
                    got: t.arity(),
                });
            }
        }
        for i in 0..self.tuples.len() {
            for j in (i + 1)..self.tuples.len() {
                if self.tuples[i] == self.tuples[j] {
                    return Err(NfError::DuplicateFlatTuple);
                }
                if self.tuples[i].overlaps(&self.tuples[j]) {
                    return Err(NfError::OverlappingTuples);
                }
            }
        }
        Ok(())
    }

    /// Adds a tuple, enforcing the partition invariant against existing
    /// tuples.
    pub fn push_tuple(&mut self, tuple: NfTuple) -> Result<()> {
        if tuple.arity() != self.schema.arity() {
            return Err(NfError::ArityMismatch {
                expected: self.schema.arity(),
                got: tuple.arity(),
            });
        }
        for t in &self.tuples {
            if t.overlaps(&tuple) {
                return Err(NfError::OverlappingTuples);
            }
        }
        self.tuples.push(tuple);
        Ok(())
    }

    /// Adds a tuple without the overlap scan; callers must guarantee the
    /// invariant.
    pub(crate) fn push_tuple_unchecked(&mut self, tuple: NfTuple) {
        debug_assert_eq!(tuple.arity(), self.schema.arity());
        self.tuples.push(tuple);
    }

    /// Removes and returns the tuple at `idx`.
    pub(crate) fn swap_remove(&mut self, idx: usize) -> NfTuple {
        self.tuples.swap_remove(idx)
    }

    /// Tuples sorted canonically — used for order-insensitive comparison
    /// and stable display.
    pub fn sorted_tuples(&self) -> Vec<NfTuple> {
        let mut ts = self.tuples.clone();
        ts.sort();
        ts
    }

    /// Consumes the relation, yielding its tuples.
    pub fn into_tuples(self) -> Vec<NfTuple> {
        self.tuples
    }
}

impl PartialEq for NfRelation {
    /// Equality as sets of NF² tuples (tuple order is irrelevant).
    fn eq(&self, other: &Self) -> bool {
        self.schema.compatible_with(&other.schema) && self.sorted_tuples() == other.sorted_tuples()
    }
}

impl Eq for NfRelation {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::ValueSet;
    use crate::value::Atom;

    fn schema2() -> Arc<Schema> {
        Schema::new("R", &["A", "B"]).unwrap()
    }

    fn vs(ids: &[u32]) -> ValueSet {
        ValueSet::new(ids.iter().map(|&i| Atom(i)).collect()).unwrap()
    }

    fn t(comps: &[&[u32]]) -> NfTuple {
        NfTuple::new(comps.iter().map(|c| vs(c)).collect())
    }

    fn flat(rows: &[&[u32]]) -> FlatRelation {
        FlatRelation::from_rows(
            schema2(),
            rows.iter().map(|r| r.iter().map(|&v| Atom(v)).collect()),
        )
        .unwrap()
    }

    #[test]
    fn flat_relation_is_a_set() {
        let mut r = flat(&[&[1, 10], &[1, 10]]);
        assert_eq!(r.len(), 1);
        assert!(!r.insert(vec![Atom(1), Atom(10)]).unwrap());
        assert!(r.insert(vec![Atom(2), Atom(10)]).unwrap());
        assert_eq!(r.len(), 2);
        assert!(r.remove(&[Atom(2), Atom(10)]));
        assert!(!r.remove(&[Atom(2), Atom(10)]));
    }

    #[test]
    fn flat_relation_checks_arity() {
        let mut r = FlatRelation::new(schema2());
        assert!(r.insert(vec![Atom(1)]).is_err());
    }

    #[test]
    fn from_flat_gives_singletons() {
        let f = flat(&[&[1, 10], &[2, 20]]);
        let nfr = NfRelation::from_flat(&f);
        assert_eq!(nfr.tuple_count(), 2);
        assert!(nfr.tuples().iter().all(NfTuple::is_flat));
        assert_eq!(nfr.flat_count(), 2);
    }

    #[test]
    fn theorem1_expand_round_trips() {
        // Composition preserves R*: any NFR expands back to the original
        // 1NF relation, and that expansion is unique.
        let f = flat(&[&[1, 10], &[2, 10], &[1, 20]]);
        let nfr = NfRelation::from_tuples(schema2(), vec![t(&[&[1, 2], &[10]]), t(&[&[1], &[20]])])
            .unwrap();
        assert_eq!(nfr.expand(), f);
    }

    #[test]
    fn validate_rejects_overlap() {
        let bad =
            NfRelation::from_tuples(schema2(), vec![t(&[&[1, 2], &[10]]), t(&[&[2, 3], &[10]])]);
        assert_eq!(bad.unwrap_err(), NfError::OverlappingTuples);
    }

    #[test]
    fn validate_rejects_duplicates() {
        let bad = NfRelation::from_tuples(schema2(), vec![t(&[&[1], &[10]]), t(&[&[1], &[10]])]);
        assert!(bad.is_err());
    }

    #[test]
    fn validate_rejects_wrong_arity() {
        let bad = NfRelation::from_tuples(schema2(), vec![NfTuple::from_flat(&[Atom(1)])]);
        assert_eq!(
            bad.unwrap_err(),
            NfError::ArityMismatch {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn from_disjoint_tuples_checks_arity_only() {
        let ok =
            NfRelation::from_disjoint_tuples(schema2(), vec![t(&[&[1], &[10]]), t(&[&[2], &[20]])])
                .unwrap();
        assert_eq!(ok.tuple_count(), 2);
        assert!(ok.validate().is_ok());
        let bad = NfRelation::from_disjoint_tuples(schema2(), vec![NfTuple::from_flat(&[Atom(1)])]);
        assert!(bad.is_err(), "arity is still enforced");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "partition invariant")]
    fn from_disjoint_tuples_debug_asserts_disjointness() {
        // Release builds trust the caller; debug builds catch the lie.
        let _ = NfRelation::from_disjoint_tuples(
            schema2(),
            vec![t(&[&[1, 2], &[10]]), t(&[&[2], &[10]])],
        );
    }

    #[test]
    fn push_tuple_guards_invariant() {
        let mut r = NfRelation::new(schema2());
        r.push_tuple(t(&[&[1, 2], &[10]])).unwrap();
        assert_eq!(
            r.push_tuple(t(&[&[2], &[10, 20]])),
            Err(NfError::OverlappingTuples)
        );
        r.push_tuple(t(&[&[3], &[10]])).unwrap();
        assert_eq!(r.tuple_count(), 2);
    }

    #[test]
    fn find_containing_locates_the_unique_tuple() {
        let r =
            NfRelation::from_tuples(schema2(), vec![t(&[&[1, 2], &[10]]), t(&[&[3], &[10, 20]])])
                .unwrap();
        assert_eq!(r.find_containing(&[Atom(2), Atom(10)]), Some(0));
        assert_eq!(r.find_containing(&[Atom(3), Atom(20)]), Some(1));
        assert_eq!(r.find_containing(&[Atom(9), Atom(10)]), None);
        assert!(r.contains_flat(&[Atom(1), Atom(10)]));
    }

    #[test]
    fn equality_ignores_tuple_order() {
        let a =
            NfRelation::from_tuples(schema2(), vec![t(&[&[1], &[10]]), t(&[&[2], &[20]])]).unwrap();
        let b =
            NfRelation::from_tuples(schema2(), vec![t(&[&[2], &[20]]), t(&[&[1], &[10]])]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn flat_count_avoids_materialising() {
        let r = NfRelation::from_tuples(
            schema2(),
            vec![t(&[&[1, 2, 3], &[10, 20]]), t(&[&[4], &[30]])],
        )
        .unwrap();
        assert_eq!(r.flat_count(), 7);
        assert_eq!(r.expand().len(), 7);
    }
}
