//! # nf2-core — Non-First-Normal-Form relations
//!
//! A faithful, tested implementation of the NF² relational model of
//! Arisawa, Moriya & Miura, *"Operations and the Properties on
//! Non-First-Normal-Form Relational Databases"*, VLDB 1983:
//!
//! * tuples with **set-valued components** and their expansion semantics
//!   ([`tuple`](mod@tuple));
//! * **composition** and **decomposition** of tuples, Defs. 1–2
//!   ([`compose`](mod@compose));
//! * the `R ↔ R*` correspondence, Theorem 1 ([`relation`]);
//! * **nest** operations and **canonical forms**, Defs. 4–5 and Theorem 2
//!   ([`nest`](mod@nest));
//! * **irreducible forms**, Def. 3 and minimal-partition search
//!   ([`irreducible`]);
//! * cardinality classes and **fixedness**, Defs. 6–7 ([`properties`]);
//! * the §4 **incremental update algorithms** that keep an NFR canonical
//!   under insertions and deletions with cost independent of the relation
//!   size ([`maintenance`]).
//!
//! ## Quick example
//!
//! ```
//! use nf2_core::prelude::*;
//!
//! let mut dict = Dictionary::new();
//! let schema = Schema::new("SC", &["Student", "Course"]).unwrap();
//! let rows: Vec<Vec<Atom>> = [("s1", "c1"), ("s2", "c1"), ("s1", "c2")]
//!     .iter()
//!     .map(|(s, c)| vec![dict.intern(s), dict.intern(c)])
//!     .collect();
//! let flat = FlatRelation::from_rows(schema, rows).unwrap();
//!
//! // Canonical form nesting Student first: students collapse per course.
//! let order = NestOrder::identity(2);
//! let nfr = canonical_of_flat(&flat, &order);
//! assert!(nfr.tuple_count() < flat.len());
//! assert_eq!(nfr.expand(), flat); // Theorem 1: no information gained or lost
//! ```

pub mod bulk;
pub mod compose;
pub mod display;
pub mod error;
pub mod indexed;
pub mod irreducible;
pub mod kernel;
pub mod maintenance;
pub mod mvcc;
pub mod nest;
pub mod properties;
pub mod relation;
pub mod schema;
pub mod segment;
pub mod shard;
pub mod tuple;
pub mod value;

pub use bulk::{
    apply_batch, apply_batch_auto, apply_batch_auto_with, modify, rebuild_batch,
    rebuild_batch_with, replay_adaptive_with, should_rebuild, BatchSummary, Op,
};
pub use compose::{composable, composable_over, compose, decompose, decompose_set, Split};
pub use error::{NfError, Result};
pub use indexed::IndexedCanonicalRelation;
pub use kernel::NestKernel;
pub use maintenance::{CanonicalRelation, CostCounter};
pub use mvcc::{ShardVersion, TableVersion, VersionCell};
pub use nest::{
    canonical_of_flat, canonical_of_flat_legacy, canonicalize, is_canonical, nest, unnest,
};
pub use relation::{FlatRelation, NfRelation};
pub use schema::{AttrId, NestOrder, Schema};
pub use segment::{Segment, ShardSegments, DEFAULT_SEGMENT_ROWS};
pub use shard::{MaintenanceCost, ShardRouter, ShardSpec, ShardedCanonical};
pub use tuple::{FlatTuple, NfTuple, TupleStore, TupleView, ValueSet};
pub use value::{Atom, Dictionary};

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::compose::{compose, decompose, decompose_set};
    pub use crate::error::{NfError, Result};
    pub use crate::irreducible::{is_irreducible, reduce, ReduceStrategy};
    pub use crate::kernel::NestKernel;
    pub use crate::maintenance::{CanonicalRelation, CostCounter};
    pub use crate::mvcc::{ShardVersion, TableVersion, VersionCell};
    pub use crate::nest::{canonical_of_flat, canonicalize, is_canonical, nest, unnest};
    pub use crate::properties::{cardinality_class, is_fixed_on, CardinalityClass};
    pub use crate::relation::{FlatRelation, NfRelation};
    pub use crate::schema::{AttrId, NestOrder, Schema};
    pub use crate::segment::{Segment, ShardSegments, DEFAULT_SEGMENT_ROWS};
    pub use crate::shard::{MaintenanceCost, ShardRouter, ShardSpec, ShardedCanonical};
    pub use crate::tuple::{FlatTuple, NfTuple, TupleStore, TupleView, ValueSet};
    pub use crate::value::{Atom, Dictionary};
}
