//! Index-accelerated canonical maintenance — the "optimization strategy"
//! the paper leaves open (§5: "We didn't mean to optimize the algorithm,
//! but the optimization strategy is another problem").
//!
//! [`CanonicalRelation`](crate::maintenance::CanonicalRelation) scans all
//! tuples per `candt`/`searcht` probe: Theorem A-4 bounds *compositions*,
//! not probe time, so wall-clock per update still grows with the tuple
//! count. [`IndexedCanonicalRelation`] maintains inverted postings
//! `(attribute, value) → tuple slots` so that candidate search touches
//! only tuples sharing values with `t`. Behaviour is bit-identical to the
//! unindexed engine (property-tested); only the probe complexity changes.

use std::collections::HashMap;

use crate::compose::{compose, decompose_set};
use crate::error::{NfError, Result};
use crate::maintenance::CostCounter;
use crate::relation::{FlatRelation, NfRelation};
use crate::schema::{NestOrder, Schema};
use crate::tuple::{FlatTuple, NfTuple};
use crate::value::Atom;
use std::sync::Arc;

/// A slot id in the tuple arena (stable across unrelated updates).
type Slot = usize;

/// Canonical NFR with inverted-index-accelerated §4 maintenance.
///
/// Tuples live in a slotted arena; `postings[(attr, value)]` holds the
/// slots of tuples whose `attr` component contains `value`. The §4
/// algorithms run exactly as in the scan engine, but `candt` intersects
/// postings instead of scanning the arena, and `searcht` probes the
/// postings of the most selective attribute.
#[derive(Debug, Clone)]
pub struct IndexedCanonicalRelation {
    schema: Arc<Schema>,
    order: NestOrder,
    /// Tuple arena; `None` marks free slots.
    arena: Vec<Option<NfTuple>>,
    free: Vec<Slot>,
    postings: HashMap<(usize, Atom), Vec<Slot>>,
    live: usize,
}

impl IndexedCanonicalRelation {
    /// An empty indexed canonical relation.
    pub fn new(schema: Arc<Schema>, order: NestOrder) -> Result<Self> {
        if order.arity() != schema.arity() {
            return Err(NfError::InvalidNestOrder(format!(
                "order covers {} attributes, schema has {}",
                order.arity(),
                schema.arity()
            )));
        }
        Ok(Self {
            schema,
            order,
            arena: Vec::new(),
            free: Vec::new(),
            postings: HashMap::new(),
            live: 0,
        })
    }

    /// Builds from a 1NF relation by nesting, then indexing.
    pub fn from_flat(flat: &FlatRelation, order: NestOrder) -> Result<Self> {
        let rel = crate::nest::canonical_of_flat(flat, &order);
        let mut this = Self::new(flat.schema().clone(), order)?;
        for t in rel.into_tuples() {
            this.arena_insert(t);
        }
        Ok(this)
    }

    /// The nest order.
    pub fn order(&self) -> &NestOrder {
        &self.order
    }

    /// Number of NF² tuples.
    pub fn tuple_count(&self) -> usize {
        self.live
    }

    /// Materialises the current relation (sorted for comparison).
    pub fn to_relation(&self) -> NfRelation {
        let tuples: Vec<NfTuple> = self.arena.iter().flatten().cloned().collect();
        NfRelation::from_tuples(self.schema.clone(), tuples)
            .expect("indexed engine maintains the partition invariant")
    }

    /// Whether `R*` contains `flat` — indexed `searcht`.
    pub fn contains(&self, flat: &[Atom]) -> bool {
        self.searcht(flat).is_some()
    }

    /// §4.2 insertion; returns `true` if the row was new.
    pub fn insert(&mut self, flat: FlatTuple, cost: &mut CostCounter) -> Result<bool> {
        if flat.len() != self.schema.arity() {
            return Err(NfError::ArityMismatch {
                expected: self.schema.arity(),
                got: flat.len(),
            });
        }
        if self.searcht(&flat).is_some() {
            return Ok(false);
        }
        let t = NfTuple::from_flat(&flat);
        self.recons(t, cost);
        Ok(true)
    }

    /// §4.3 deletion; returns `true` if the row existed.
    pub fn delete(&mut self, flat: &[Atom], cost: &mut CostCounter) -> Result<bool> {
        if flat.len() != self.schema.arity() {
            return Err(NfError::ArityMismatch {
                expected: self.schema.arity(),
                got: flat.len(),
            });
        }
        let Some(slot) = self.searcht(flat) else {
            return Ok(false);
        };
        let mut q = self.arena_remove(slot);
        for pos in (0..self.order.arity()).rev() {
            let attr = self.order.attr_at(pos);
            let split = decompose_set(&q, attr, &crate::tuple::ValueSet::singleton(flat[attr]))
                .expect("searcht guarantees membership");
            if let Some(rem) = split.remainder {
                cost.decompositions += 1;
                self.recons(rem, cost);
            }
            q = split.isolated;
        }
        debug_assert_eq!(q.to_flat().as_deref(), Some(flat));
        Ok(true)
    }

    /// Indexed `searcht`: probes the postings of the first attribute and
    /// filters by containment.
    fn searcht(&self, flat: &[Atom]) -> Option<Slot> {
        let probe_attr = 0usize;
        let slots = self.postings.get(&(probe_attr, flat[probe_attr]))?;
        slots.iter().copied().find(|&s| {
            self.arena[s]
                .as_ref()
                .is_some_and(|t| t.contains_flat(flat))
        })
    }

    /// Indexed `candt`: candidate tuples must contain every value of `t`
    /// on at least the last-position attribute (for `m < n`) or equal
    /// `t`'s first component (for `m = n-1` cases); postings for `t`'s
    /// values cover all possibilities, so the union of posting lists for
    /// one representative value per attribute is a complete candidate
    /// pool. We probe the shortest posting list among `t`'s first values
    /// per attribute, then run the exact predicate.
    fn candt(&self, t: &NfTuple, cost: &mut CostCounter) -> Option<(Slot, usize)> {
        let n = self.order.arity();
        // Candidate pool: any tuple matching the predicate at position m
        // must contain t's E(k) values for every k > m, and equal them
        // for k < m. In both cases it shares t's values on every
        // attribute except possibly the composition attribute itself —
        // so for each position m, tuples in the pool appear in the
        // postings of any value of t on any attribute other than m.
        // Probing two distinct attributes' postings therefore covers
        // every m: a candidate misses attribute a's postings only when
        // m = a.
        let mut pool: Vec<Slot> = Vec::new();
        if n == 1 {
            // Degenerate arity: the position-0 predicate is vacuous, so
            // every live tuple is a potential candidate.
            pool.extend((0..self.arena.len()).filter(|&s| self.arena[s].is_some()));
        } else {
            let probe_a = self.order.attr_at(n - 1);
            let probe_b = self.order.attr_at(n - 2);
            for attr in [probe_a, probe_b] {
                let v = t.component(attr).as_slice()[0];
                if let Some(slots) = self.postings.get(&(attr, v)) {
                    pool.extend_from_slice(slots);
                }
            }
        }
        pool.sort_unstable();
        pool.dedup();

        let mut best: Option<(Slot, usize)> = None;
        for slot in pool {
            let Some(s) = self.arena[slot].as_ref() else {
                continue;
            };
            cost.candidate_probes += 1;
            for m in 0..n {
                if best.is_some_and(|(_, bm)| bm <= m) {
                    break;
                }
                if self.is_candidate_at(s, t, m) {
                    debug_assert!(
                        best.is_none_or(|(bs, bm)| bm != m || bs == slot),
                        "Lemma A-1: at most one candidate at the minimal position"
                    );
                    best = Some((slot, m));
                    break;
                }
            }
        }
        best
    }

    fn is_candidate_at(&self, s: &NfTuple, t: &NfTuple, m: usize) -> bool {
        let n = self.order.arity();
        for k in 0..n {
            let attr = self.order.attr_at(k);
            let (sc, tc) = (s.component(attr), t.component(attr));
            if k < m {
                if sc != tc {
                    return false;
                }
            } else if k > m && !tc.is_subset_of(sc) {
                return false;
            }
        }
        true
    }

    /// The §4 `recons`, identical control flow to the scan engine.
    fn recons(&mut self, t: NfTuple, cost: &mut CostCounter) {
        cost.recons_calls += 1;
        match self.candt(&t, cost) {
            None => {
                self.arena_insert(t);
            }
            Some((slot, m)) => {
                let mut p = self.arena_remove(slot);
                let n = self.order.arity();
                for pos in ((m + 1)..n).rev() {
                    let attr = self.order.attr_at(pos);
                    let split = decompose_set(&p, attr, t.component(attr))
                        .expect("candidate predicate guarantees containment above m");
                    if let Some(rem) = split.remainder {
                        cost.decompositions += 1;
                        self.recons(rem, cost);
                    }
                    p = split.isolated;
                }
                let attr_m = self.order.attr_at(m);
                let w = compose(&p, &t, attr_m).expect("Lemma A-2");
                cost.compositions += 1;
                self.recons(w, cost);
            }
        }
    }

    fn arena_insert(&mut self, t: NfTuple) -> Slot {
        let slot = match self.free.pop() {
            Some(s) => {
                self.arena[s] = Some(t);
                s
            }
            None => {
                self.arena.push(Some(t));
                self.arena.len() - 1
            }
        };
        let t = self.arena[slot].as_ref().expect("just inserted");
        for attr in 0..self.schema.arity() {
            for v in t.component(attr).iter() {
                self.postings.entry((attr, v)).or_default().push(slot);
            }
        }
        self.live += 1;
        slot
    }

    fn arena_remove(&mut self, slot: Slot) -> NfTuple {
        let t = self.arena[slot].take().expect("slot must be live");
        for attr in 0..self.schema.arity() {
            for v in t.component(attr).iter() {
                if let Some(list) = self.postings.get_mut(&(attr, v)) {
                    if let Some(pos) = list.iter().position(|&s| s == slot) {
                        list.swap_remove(pos);
                    }
                    if list.is_empty() {
                        self.postings.remove(&(attr, v));
                    }
                }
            }
        }
        self.free.push(slot);
        self.live -= 1;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maintenance::CanonicalRelation;
    use crate::schema::Schema;

    fn schema3() -> Arc<Schema> {
        Schema::new("R", &["A", "B", "C"]).unwrap()
    }

    fn row(vals: &[u32]) -> FlatTuple {
        vals.iter().map(|&v| Atom(v)).collect()
    }

    #[test]
    fn indexed_matches_scan_engine_on_random_streams() {
        for order in NestOrder::all(3) {
            let mut indexed = IndexedCanonicalRelation::new(schema3(), order.clone()).unwrap();
            let mut scan = CanonicalRelation::new(schema3(), order.clone()).unwrap();
            let mut state = 0xabcdefu64;
            for _ in 0..400 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let r = row(&[
                    (state >> 8) as u32 % 5,
                    10 + (state >> 24) as u32 % 5,
                    20 + (state >> 40) as u32 % 4,
                ]);
                let mut c1 = CostCounter::new();
                if state.is_multiple_of(3) {
                    let a = indexed.delete(&r, &mut c1).unwrap();
                    let b = scan.delete(&r).unwrap();
                    assert_eq!(a, b);
                } else {
                    let a = indexed.insert(r.clone(), &mut c1).unwrap();
                    let b = scan.insert(r).unwrap();
                    assert_eq!(a, b);
                }
            }
            assert_eq!(
                &indexed.to_relation(),
                scan.relation(),
                "indexed and scan engines must agree for order {order}"
            );
        }
    }

    #[test]
    fn indexed_from_flat_matches_scan() {
        let flat = FlatRelation::from_rows(
            schema3(),
            (0..60u32).map(|i| row(&[i % 6, 10 + i % 4, 20 + i % 3])),
        )
        .unwrap();
        let order = NestOrder::identity(3);
        let indexed = IndexedCanonicalRelation::from_flat(&flat, order.clone()).unwrap();
        let scan = CanonicalRelation::from_flat(&flat, order).unwrap();
        assert_eq!(&indexed.to_relation(), scan.relation());
        assert_eq!(indexed.tuple_count(), scan.tuple_count());
    }

    #[test]
    fn indexed_probes_fewer_tuples_on_large_relations() {
        // The whole point: candidate probes scale with postings, not with
        // the relation size.
        let flat = FlatRelation::from_rows(
            schema3(),
            (0..4000u32).map(|i| row(&[i % 500, 10_000 + i % 40, 20_000 + i % 7])),
        )
        .unwrap();
        let order = NestOrder::identity(3);
        let mut indexed = IndexedCanonicalRelation::from_flat(&flat, order.clone()).unwrap();
        let mut scan = CanonicalRelation::from_flat(&flat, order).unwrap();

        let probe = row(&[501, 10_041, 20_008]); // fresh values
        let mut ic = CostCounter::new();
        indexed.insert(probe.clone(), &mut ic).unwrap();
        let mut sc = CostCounter::new();
        scan.insert_counted(probe, &mut sc).unwrap();
        assert!(
            ic.candidate_probes * 10 < sc.candidate_probes.max(1),
            "indexed probes ({}) should be far below scan probes ({})",
            ic.candidate_probes,
            sc.candidate_probes
        );
    }

    #[test]
    fn contains_and_counts() {
        let mut idx = IndexedCanonicalRelation::new(schema3(), NestOrder::identity(3)).unwrap();
        let mut cost = CostCounter::new();
        assert!(idx.insert(row(&[1, 11, 21]), &mut cost).unwrap());
        assert!(!idx.insert(row(&[1, 11, 21]), &mut cost).unwrap());
        assert!(idx.contains(&row(&[1, 11, 21])));
        assert!(!idx.contains(&row(&[2, 11, 21])));
        assert_eq!(idx.tuple_count(), 1);
        assert!(idx.delete(&row(&[1, 11, 21]), &mut cost).unwrap());
        assert!(!idx.delete(&row(&[1, 11, 21]), &mut cost).unwrap());
        assert_eq!(idx.tuple_count(), 0);
    }

    #[test]
    fn arity_checks() {
        let mut idx = IndexedCanonicalRelation::new(schema3(), NestOrder::identity(3)).unwrap();
        let mut cost = CostCounter::new();
        assert!(idx.insert(row(&[1]), &mut cost).is_err());
        assert!(idx.delete(&row(&[1]), &mut cost).is_err());
        assert!(IndexedCanonicalRelation::new(schema3(), NestOrder::identity(2)).is_err());
    }

    #[test]
    fn slot_reuse_keeps_postings_consistent() {
        let mut idx = IndexedCanonicalRelation::new(schema3(), NestOrder::identity(3)).unwrap();
        let mut cost = CostCounter::new();
        for i in 0..30u32 {
            idx.insert(row(&[i % 3, 10 + i % 3, 20 + i % 2]), &mut cost)
                .unwrap();
        }
        for i in 0..30u32 {
            idx.delete(&row(&[i % 3, 10 + i % 3, 20 + i % 2]), &mut cost)
                .unwrap();
        }
        assert_eq!(idx.tuple_count(), 0);
        assert!(
            idx.postings.is_empty(),
            "no stale postings after full teardown"
        );
        // Rebuild after teardown works.
        idx.insert(row(&[9, 19, 29]), &mut cost).unwrap();
        assert!(idx.contains(&row(&[9, 19, 29])));
    }
}
