//! Property tests for the typed-IR checker and the rewrite-soundness
//! gate: over randomly composed well-typed plans,
//!
//! 1. [`try_optimize`] never rejects — the gate has **zero false
//!    positives** on legal plans, in both rewrite modes;
//! 2. optimization preserves the inferred output attributes;
//! 3. the optimized plan evaluates to exactly the original's tuples
//!    (and fails exactly when the original fails).
//!
//! Plans are grown instruction-by-instruction from two base relations,
//! each step tracking the live attribute list so every constructed
//! operator is schema-legal — the space the checker must accept.

use std::collections::BTreeSet;

use proptest::prelude::*;

use nf2_algebra::{infer, try_optimize, CheckCatalog, Env, Expr, RewriteMode, SchemaCatalog};
use nf2_core::nest::canonical_of_flat;
use nf2_core::relation::FlatRelation;
use nf2_core::schema::{NestOrder, Schema};
use nf2_core::tuple::FlatTuple;
use nf2_core::value::Atom;

/// Attribute domains are disjoint decades so natural joins share
/// exactly the intended attributes: A ∈ 0..4, B ∈ 10..14, C ∈ 20..24,
/// D ∈ 30..34.
fn domain_base(attr: &str) -> u32 {
    match attr {
        "A" => 0,
        "B" => 10,
        "C" => 20,
        _ => 30,
    }
}

fn load(name: &str, attrs: &[&str], rows: &[Vec<u32>]) -> nf2_core::relation::NfRelation {
    let schema = Schema::new(name, attrs).unwrap();
    let flat = FlatRelation::from_rows(
        schema,
        rows.iter().map(|r| {
            r.iter()
                .zip(attrs)
                .map(|(v, a)| Atom(domain_base(a) + v))
                .collect::<FlatTuple>()
        }),
    )
    .unwrap();
    canonical_of_flat(&flat, &NestOrder::identity(attrs.len()))
}

/// One growth step; fields are raw entropy interpreted modulo the
/// current schema, so every instruction is legal wherever it lands.
#[derive(Debug, Clone, Copy)]
struct Instr {
    op: u8,
    x: u8,
    y: u8,
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    (0u8..6, any::<u8>(), any::<u8>()).prop_map(|(op, x, y)| Instr { op, x, y })
}

/// Applies instructions to `Rel(r)`, tracking attribute names.
fn grow(instrs: &[Instr]) -> (Expr, Vec<String>) {
    let mut expr = Expr::rel("r");
    let mut names: Vec<String> = ["A", "B", "C"].iter().map(|s| s.to_string()).collect();
    for &Instr { op, x, y } in instrs {
        match op {
            0 => {
                // σ on one live attribute with a 1–2 value box.
                let attr = names[x as usize % names.len()].clone();
                let base = domain_base(&attr);
                let mut values = vec![Atom(base + u32::from(y % 4))];
                if y % 3 == 0 {
                    values.push(Atom(base + u32::from((y + 1) % 4)));
                }
                expr = Expr::SelectBox {
                    input: Box::new(expr),
                    constraints: vec![(attr, values)],
                };
            }
            1 => {
                // π keeping a non-empty bitmask of the live attributes.
                let mask = (x as usize % ((1 << names.len()) - 1)) + 1;
                let kept: Vec<String> = names
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, n)| n.clone())
                    .collect();
                names = kept.clone();
                expr = Expr::Project {
                    input: Box::new(expr),
                    attrs: kept,
                };
            }
            2 => {
                // ⋈ with the second base relation (shared attrs by name).
                for extra in ["B", "C", "D"] {
                    if !names.iter().any(|n| n == extra) {
                        names.push(extra.to_string());
                    }
                }
                expr = Expr::Join(Box::new(expr), Box::new(Expr::rel("s")));
            }
            op @ 3..=5 => {
                // Set op against a selection of the same subtree — both
                // sides share schema and nest structure by construction.
                let attr = names[x as usize % names.len()].clone();
                let filtered = Expr::SelectBox {
                    input: Box::new(expr.clone()),
                    constraints: vec![(
                        attr.clone(),
                        vec![Atom(domain_base(&attr) + u32::from(y % 4))],
                    )],
                };
                let (l, r) = (Box::new(expr), Box::new(filtered));
                expr = match op {
                    3 => Expr::Union(l, r),
                    4 => Expr::Intersect(l, r),
                    _ => Expr::Difference(l, r),
                };
            }
            _ => unreachable!("op is drawn from 0..6"),
        }
    }
    (expr, names)
}

fn catalog() -> SchemaCatalog {
    let mut cat = SchemaCatalog::new();
    cat.insert("r", vec!["A".into(), "B".into(), "C".into()]);
    cat.insert("s", vec!["B".into(), "C".into(), "D".into()]);
    cat
}

fn env(r_rows: &[Vec<u32>], s_rows: &[Vec<u32>]) -> Env {
    let mut env = Env::new();
    env.insert("r", load("r", &["A", "B", "C"], r_rows));
    env.insert("s", load("s", &["B", "C", "D"], s_rows));
    env
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gate_accepts_and_preserves_random_well_typed_plans(
        instrs in proptest::collection::vec(arb_instr(), 0..5),
        r_rows in proptest::collection::vec(proptest::collection::vec(0u32..4, 3), 0..12),
        s_rows in proptest::collection::vec(proptest::collection::vec(0u32..4, 3), 0..12),
    ) {
        let (expr, names) = grow(&instrs);
        let cat = catalog();
        let check_cat = CheckCatalog::from_schema_catalog(&cat);

        // The generator only emits well-typed plans; the checker must
        // agree and report exactly the tracked attribute list.
        let ty = infer(&expr, &check_cat).expect("generated plan is well-typed");
        prop_assert_eq!(ty.names(), names.iter().map(String::as_str).collect::<Vec<_>>());

        let env = env(&r_rows, &s_rows);
        for mode in [RewriteMode::Structural, RewriteMode::Realization] {
            // Property 1: zero false positives from the soundness gate.
            let result = try_optimize(&expr, &cat, mode);
            prop_assert!(
                result.is_ok(),
                "gate rejected a sound plan in {:?}: {}\nplan: {}",
                mode,
                result.as_ref().unwrap_err(),
                &expr
            );
            let opt = result.unwrap();

            // Property 2: output attributes survive optimization.
            let opt_ty = infer(&opt.expr, &check_cat).expect("optimized plan is well-typed");
            prop_assert_eq!(opt_ty.names(), ty.names());

            // Property 3: the optimized plan computes the same tuples,
            // and fails only when the original fails.
            match expr.eval(&env) {
                Ok(base) => {
                    let opt_rel = opt.expr.eval(&env).expect("optimized plan evaluates");
                    let base_rows: BTreeSet<FlatTuple> = base.expand().into_rows();
                    let opt_rows: BTreeSet<FlatTuple> = opt_rel.expand().into_rows();
                    prop_assert_eq!(&base_rows, &opt_rows, "mode {:?}, plan {}", mode, &expr);
                }
                Err(_) => prop_assert!(
                    opt.expr.eval(&env).is_err(),
                    "optimization repaired a failing plan {}", &expr
                ),
            }
        }
    }
}
