//! Property tests for the algebra laws (`nf2_algebra::laws`) and the
//! rewrite soundness of the optimizer (`nf2_algebra::optimize`).
//!
//! * Every universally-quantified law must hold on arbitrary NFRs,
//!   whichever way they were produced (canonical forms, greedy
//!   irreducible reductions, raw singleton embeddings).
//! * Optimizing a random well-typed expression must preserve the result
//!   exactly in structural mode and up to realization view (`R*`) in
//!   realization mode.

use proptest::prelude::*;

use nf2_algebra::laws;
use nf2_algebra::optimize::{optimize, RewriteMode, SchemaCatalog};
use nf2_algebra::{Env, Expr};
use nf2_core::irreducible::{reduce, ReduceStrategy};
use nf2_core::nest::canonical_of_flat;
use nf2_core::relation::{FlatRelation, NfRelation};
use nf2_core::schema::{NestOrder, Schema};
use nf2_core::tuple::FlatTuple;
use nf2_core::value::Atom;

/// Random flat relation over (A, B, C) with small, per-attribute-offset
/// domains so values collide across tuples but never across attributes.
fn arb_flat(name: &'static str) -> impl Strategy<Value = FlatRelation> {
    proptest::collection::vec(proptest::collection::vec(0u32..4, 3), 0..16).prop_map(move |rows| {
        let schema = Schema::new(name, &["A", "B", "C"]).unwrap();
        FlatRelation::from_rows(
            schema,
            rows.into_iter().map(|r| {
                r.into_iter()
                    .enumerate()
                    .map(|(i, v)| Atom(v + 10 * i as u32))
                    .collect::<FlatTuple>()
            }),
        )
        .unwrap()
    })
}

/// An NFR derived from `flat` by one of the reachable construction
/// paths: singleton embedding, a canonical form, or a greedy reduction.
fn arb_nfr(name: &'static str) -> impl Strategy<Value = NfRelation> {
    (arb_flat(name), any::<u64>(), 0usize..3).prop_map(|(flat, seed, kind)| match kind {
        0 => NfRelation::from_flat(&flat),
        1 => {
            let orders = NestOrder::all(3);
            canonical_of_flat(&flat, &orders[(seed as usize) % orders.len()])
        }
        _ => reduce(&NfRelation::from_flat(&flat), ReduceStrategy::FirstFit),
    })
}

/// Well-typed random expressions over two same-schema relations `r`/`s`.
/// Projections permute all attributes (never drop), so every node keeps
/// the (A, B, C) schema and any operator can stack on any subtree.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![Just(Expr::rel("r")), Just(Expr::rel("s"))];
    leaf.prop_recursive(4, 24, 3, |inner| {
        let attr = prop_oneof![
            Just("A".to_string()),
            Just("B".to_string()),
            Just("C".to_string())
        ];
        let values = proptest::collection::vec(0u32..4, 1..3);
        prop_oneof![
            (inner.clone(), attr.clone(), values).prop_map(|(e, a, vs)| {
                let offset = match a.as_str() {
                    "A" => 0,
                    "B" => 10,
                    _ => 20,
                };
                Expr::SelectBox {
                    input: Box::new(e),
                    constraints: vec![(a, vs.into_iter().map(|v| Atom(v + offset)).collect())],
                }
            }),
            (inner.clone(), 0usize..6).prop_map(|(e, p)| {
                let perms: [[&str; 3]; 6] = [
                    ["A", "B", "C"],
                    ["A", "C", "B"],
                    ["B", "A", "C"],
                    ["B", "C", "A"],
                    ["C", "A", "B"],
                    ["C", "B", "A"],
                ];
                Expr::Project {
                    input: Box::new(e),
                    attrs: perms[p].iter().map(|s| s.to_string()).collect(),
                }
            }),
            (inner.clone(), attr.clone()).prop_map(|(e, a)| Expr::Nest {
                input: Box::new(e),
                attr: a
            }),
            (inner.clone(), attr.clone()).prop_map(|(e, a)| Expr::Unnest {
                input: Box::new(e),
                attr: a
            }),
            (inner.clone(), 0usize..6).prop_map(|(e, p)| {
                let perms: [[&str; 3]; 6] = [
                    ["A", "B", "C"],
                    ["A", "C", "B"],
                    ["B", "A", "C"],
                    ["B", "C", "A"],
                    ["C", "A", "B"],
                    ["C", "B", "A"],
                ];
                Expr::Canonicalize {
                    input: Box::new(e),
                    order: perms[p].iter().map(|s| s.to_string()).collect(),
                }
            }),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::Union(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| Expr::Difference(Box::new(l), Box::new(r))),
            (inner.clone(), inner).prop_map(|(l, r)| Expr::Intersect(Box::new(l), Box::new(r))),
        ]
    })
}

fn env_for(r: &FlatRelation, s: &FlatRelation) -> Env {
    let mut env = Env::new();
    env.insert("r", NfRelation::from_flat(r));
    env.insert("s", canonical_of_flat(s, &NestOrder::identity(3)));
    env
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Projection permutations can change attribute *positions*; the
    /// law checker is position-based, so feed it same-schema relations.
    #[test]
    fn all_laws_hold_on_arbitrary_nfrs(rel in arb_nfr("R")) {
        let failures = laws::check_all(&rel);
        prop_assert!(failures.is_empty(), "violated: {failures:?} on {rel:?}");
    }

    /// L4 witness frequency: whenever the two nest orders disagree, both
    /// must still expand to the same flat relation.
    #[test]
    fn nest_order_sensitivity_is_realization_safe(rel in arb_nfr("R"), a in 0usize..3, b in 0usize..3) {
        prop_assume!(a != b);
        let ab = nf2_core::nest::nest(&nf2_core::nest::nest(&rel, b), a);
        let ba = nf2_core::nest::nest(&nf2_core::nest::nest(&rel, a), b);
        prop_assert_eq!(ab.expand(), ba.expand());
    }

    /// Structural-mode optimization returns a tuple-identical result.
    #[test]
    fn structural_rewrites_are_exact(
        r in arb_flat("R"),
        s in arb_flat("S"),
        expr in arb_expr(),
    ) {
        let env = env_for(&r, &s);
        let catalog = SchemaCatalog::from_env(&env);
        let optimized = optimize(&expr, &catalog, RewriteMode::Structural);
        // Permuted projections can make set operands schema-incompatible;
        // then both the original and the optimized plan must report it.
        match (expr.eval(&env), optimized.expr.eval(&env)) {
            (Ok(base), Ok(opt)) => {
                prop_assert_eq!(base, opt, "plan {} vs {}", expr, optimized.expr)
            }
            (Err(_), Err(_)) => {}
            (base, opt) => prop_assert!(
                false,
                "error behaviour diverged: {base:?} vs {opt:?} for {} vs {}",
                expr,
                optimized.expr
            ),
        }
    }

    /// Realization-mode optimization preserves R*.
    #[test]
    fn realization_rewrites_preserve_rstar(
        r in arb_flat("R"),
        s in arb_flat("S"),
        expr in arb_expr(),
    ) {
        let env = env_for(&r, &s);
        let catalog = SchemaCatalog::from_env(&env);
        let optimized = optimize(&expr, &catalog, RewriteMode::Realization);
        match (expr.eval(&env), optimized.expr.eval(&env)) {
            // Rows compared, not derived schema names (merge-projects
            // shortens them).
            (Ok(base), Ok(opt)) => prop_assert_eq!(
                base.expand().into_rows(),
                opt.expand().into_rows(),
                "plan {} vs {}",
                expr,
                optimized.expr
            ),
            (Err(_), Err(_)) => {}
            (base, opt) => prop_assert!(
                false,
                "error behaviour diverged: {base:?} vs {opt:?} for {} vs {}",
                expr,
                optimized.expr
            ),
        }
    }

    /// The optimizer never loses selections: a plan with a selective
    /// conjunct must evaluate to a subset of the unconstrained plan.
    #[test]
    fn selections_never_dropped(
        r in arb_flat("R"),
        s in arb_flat("S"),
        v in 0u32..4,
    ) {
        let env = env_for(&r, &s);
        let catalog = SchemaCatalog::from_env(&env);
        let base = Expr::Union(Box::new(Expr::rel("r")), Box::new(Expr::rel("s")));
        let constrained = Expr::SelectBox {
            input: Box::new(base.clone()),
            constraints: vec![("B".into(), vec![Atom(v + 10)])],
        };
        for mode in [RewriteMode::Structural, RewriteMode::Realization] {
            let opt = optimize(&constrained, &catalog, mode).expr.eval(&env).unwrap();
            for row in opt.expand().rows() {
                prop_assert_eq!(row[1], Atom(v + 10), "selection survived in mode {:?}", mode);
            }
        }
    }
}
