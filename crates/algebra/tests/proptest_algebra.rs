//! Property tests: every algebra operator agrees with its 1NF (flat)
//! semantics on random relations, and rectangle-level fast paths preserve
//! the partition invariant.

use std::collections::BTreeSet;

use proptest::prelude::*;

use nf2_algebra::{difference, intersect, natural_join, project, select_box, union, unnest};
use nf2_core::nest::{canonical_of_flat, nest};
use nf2_core::relation::{FlatRelation, NfRelation};
use nf2_core::schema::{NestOrder, Schema};
use nf2_core::tuple::{FlatTuple, ValueSet};
use nf2_core::value::Atom;

/// Random flat relation over a fixed 3-attribute schema with small
/// domains (so operators hit overlapping values often).
fn arb_flat(name: &'static str) -> impl Strategy<Value = FlatRelation> {
    proptest::collection::vec(proptest::collection::vec(0u32..4, 3), 0..20).prop_map(move |rows| {
        let schema = Schema::new(name, &["A", "B", "C"]).unwrap();
        FlatRelation::from_rows(
            schema,
            rows.into_iter().map(|r| {
                r.into_iter()
                    .enumerate()
                    .map(|(i, v)| Atom(v + 10 * i as u32))
                    .collect::<FlatTuple>()
            }),
        )
        .unwrap()
    })
}

fn nested(flat: &FlatRelation, seed: u64) -> NfRelation {
    let orders = NestOrder::all(3);
    canonical_of_flat(flat, &orders[(seed as usize) % orders.len()])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// σ by value box == flat filter.
    #[test]
    fn select_box_matches_flat_filter(flat in arb_flat("R"), seed in any::<u64>(), v in 0u32..4) {
        let rel = nested(&flat, seed);
        let value = Atom(v + 10); // attribute B's domain
        let selected = select_box(&rel, &[(1, ValueSet::singleton(value))]).unwrap();
        let expected: BTreeSet<FlatTuple> =
            flat.rows().filter(|r| r[1] == value).cloned().collect();
        prop_assert_eq!(selected.expand().into_rows(), expected);
        prop_assert!(selected.validate().is_ok());
    }

    /// π == flat projection with duplicate elimination, whichever path
    /// (fixed fast path or expansion) was taken.
    #[test]
    fn project_matches_flat_projection(flat in arb_flat("R"), seed in any::<u64>(), keep in 0usize..3) {
        let rel = nested(&flat, seed);
        let p = project(&rel, &[keep], &NestOrder::identity(1)).unwrap();
        let expected: BTreeSet<FlatTuple> = flat.rows().map(|r| vec![r[keep]]).collect();
        prop_assert_eq!(p.expand().into_rows(), expected);
        prop_assert!(p.validate().is_ok());
    }

    /// ∪, −, ∩ == flat set algebra.
    #[test]
    fn set_ops_match_flat_semantics(
        a in arb_flat("R"),
        b in arb_flat("S"),
        seed in any::<u64>(),
    ) {
        let (ra, rb) = (nested(&a, seed), nested(&b, seed.wrapping_add(1)));
        let order = NestOrder::identity(3);

        let u = union(&ra, &rb, &order).unwrap();
        let mut expected = a.clone().into_rows();
        expected.extend(b.clone().into_rows());
        prop_assert_eq!(u.expand().into_rows(), expected);

        let d = difference(&ra, &rb, &order).unwrap();
        let b_rows = b.clone().into_rows();
        let expected: BTreeSet<FlatTuple> =
            a.rows().filter(|r| !b_rows.contains(*r)).cloned().collect();
        prop_assert_eq!(d.expand().into_rows(), expected);

        let i = intersect(&ra, &rb).unwrap();
        let expected: BTreeSet<FlatTuple> =
            a.rows().filter(|r| b_rows.contains(*r)).cloned().collect();
        prop_assert_eq!(i.expand().into_rows(), expected);
        prop_assert!(i.validate().is_ok());
    }

    /// ⋈ == flat natural join, and the rectangle-level output is a valid
    /// partition without re-nesting.
    #[test]
    fn join_matches_flat_join(a in arb_flat("R"), seed in any::<u64>()) {
        // Join R(A,B,C) with S(C,D): build S from R's C values.
        let ra = nested(&a, seed);
        let schema = Schema::new("S", &["C", "D"]).unwrap();
        let s_flat = FlatRelation::from_rows(
            schema,
            a.rows()
                .map(|r| r[2])
                .collect::<BTreeSet<_>>()
                .into_iter()
                .enumerate()
                .map(|(i, c)| vec![c, Atom(100 + (i as u32 % 2))]),
        )
        .unwrap();
        let rs = canonical_of_flat(&s_flat, &NestOrder::identity(2));

        let joined = natural_join(&ra, &rs).unwrap();
        let mut expected = BTreeSet::new();
        for l in a.rows() {
            for r in s_flat.rows() {
                if l[2] == r[0] {
                    expected.insert(vec![l[0], l[1], l[2], r[1]]);
                }
            }
        }
        prop_assert_eq!(joined.expand().into_rows(), expected);
        prop_assert!(joined.validate().is_ok());
    }

    /// NEST then UNNEST on the same attribute is identity on R*, and
    /// UNNEST of a nested relation has one tuple per (attr value, rest)
    /// combination.
    #[test]
    fn nest_unnest_laws(flat in arb_flat("R"), seed in any::<u64>(), attr in 0usize..3) {
        let rel = nested(&flat, seed);
        let nested_rel = nest(&rel, attr);
        let unnested = unnest(&nested_rel, attr);
        prop_assert_eq!(unnested.expand(), flat);
        // Every unnested tuple has a singleton attr component.
        prop_assert!(unnested
            .tuples()
            .iter()
            .all(|t| t.component(attr).is_singleton()));
    }

    /// Streaming evaluation == strict evaluation, tuple for tuple, on
    /// random expression shapes over random relations (pipeline
    /// operators and blocking fallbacks alike).
    #[test]
    fn eval_stream_matches_eval(
        a in arb_flat("R"),
        b in arb_flat("S"),
        seed in any::<u64>(),
        v in 0u32..4,
        shape in 0usize..8,
    ) {
        use nf2_algebra::{eval_stream, Env, Expr, StreamEnv};
        let (ra, rb) = (nested(&a, seed), nested(&b, seed / 3));
        let sel = |input: Expr| Expr::SelectBox {
            input: Box::new(input),
            constraints: vec![("B".into(), vec![Atom(v + 10), Atom(10)])],
        };
        let same_attr_twice = |input: Expr| Expr::SelectBox {
            input: Box::new(input),
            constraints: vec![
                ("B".into(), vec![Atom(v + 10), Atom(10), Atom(11)]),
                ("B".into(), vec![Atom(10), Atom(12)]),
            ],
        };
        let expr = match shape {
            0 => Expr::rel("r"),
            1 => sel(Expr::rel("r")),
            2 => Expr::Project { input: Box::new(sel(Expr::rel("r"))), attrs: vec!["C".into(), "A".into()] },
            3 => sel(Expr::Join(Box::new(Expr::rel("r")), Box::new(Expr::rel("s")))),
            4 => Expr::Union(Box::new(Expr::rel("r")), Box::new(sel(Expr::rel("s")))),
            5 => Expr::Unnest { input: Box::new(Expr::rel("r")), attr: "A".into() },
            6 => Expr::Nest { input: Box::new(sel(Expr::rel("r"))), attr: "C".into() },
            _ => same_attr_twice(Expr::rel("r")),
        };
        let mut env = Env::new();
        env.insert("r", ra.clone());
        env.insert("s", rb.clone());
        let strict = expr.eval(&env).unwrap();
        let mut senv = StreamEnv::new();
        senv.insert_relation("r", &ra);
        senv.insert_relation("s", &rb);
        let streamed = eval_stream(&expr, &senv).unwrap().into_relation().unwrap();
        prop_assert_eq!(&strict, &streamed, "shape {}: {}", shape, expr);
        prop_assert!(streamed.validate().is_ok(), "pipeline preserved the invariant");
    }
}
