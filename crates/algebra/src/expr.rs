//! Algebra expression trees.
//!
//! A small logical algebra over named NF² relations, evaluated against an
//! [`Env`]. This is the layer the query language (`nf2-query`) plans
//! into, and a convenient way to compose the §3.3 operators
//! programmatically.

use std::collections::HashMap;

use nf2_core::error::{NfError, Result};
use nf2_core::relation::NfRelation;
use nf2_core::schema::NestOrder;
use nf2_core::tuple::ValueSet;
use nf2_core::value::Atom;

use crate::ops;

/// A named-relation environment for evaluation.
#[derive(Debug, Default, Clone)]
pub struct Env {
    rels: HashMap<String, NfRelation>,
}

impl Env {
    /// An empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a relation under `name`.
    pub fn insert(&mut self, name: impl Into<String>, rel: NfRelation) {
        self.rels.insert(name.into(), rel);
    }

    /// Looks up a relation.
    pub fn get(&self, name: &str) -> Result<&NfRelation> {
        self.rels
            .get(name)
            .ok_or_else(|| NfError::UnknownAttribute(format!("relation {name}")))
    }

    /// Registered relation names, sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.rels.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }
}

/// A logical algebra expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A base relation by name.
    Rel(String),
    /// Per-attribute membership selection ([`ops::select_box`]).
    SelectBox {
        /// Input expression.
        input: Box<Expr>,
        /// `(attribute name, allowed values)` conjuncts.
        constraints: Vec<(String, Vec<Atom>)>,
    },
    /// Projection with duplicate elimination on `R*` ([`ops::project`]).
    Project {
        /// Input expression.
        input: Box<Expr>,
        /// Kept attribute names, in output order.
        attrs: Vec<String>,
    },
    /// Set union on `R*`.
    Union(Box<Expr>, Box<Expr>),
    /// Set difference on `R*`.
    Difference(Box<Expr>, Box<Expr>),
    /// Set intersection on `R*`.
    Intersect(Box<Expr>, Box<Expr>),
    /// Natural join on shared attribute names.
    Join(Box<Expr>, Box<Expr>),
    /// NEST over one attribute (Def. 4).
    Nest {
        /// Input expression.
        input: Box<Expr>,
        /// Attribute to nest on.
        attr: String,
    },
    /// UNNEST over one attribute.
    Unnest {
        /// Input expression.
        input: Box<Expr>,
        /// Attribute to unnest.
        attr: String,
    },
    /// Full canonicalization `ν_P` (Def. 5) with the named application
    /// order.
    Canonicalize {
        /// Input expression.
        input: Box<Expr>,
        /// Attribute names in nest application order.
        order: Vec<String>,
    },
}

impl Expr {
    /// Convenience constructor for a base relation.
    pub fn rel(name: impl Into<String>) -> Expr {
        Expr::Rel(name.into())
    }

    /// Evaluates the expression against `env`.
    pub fn eval(&self, env: &Env) -> Result<NfRelation> {
        match self {
            Expr::Rel(name) => env.get(name).cloned(),
            Expr::SelectBox { input, constraints } => {
                let rel = input.eval(env)?;
                let resolved = constraints
                    .iter()
                    .map(|(name, values)| {
                        let attr = rel.schema().attr_id(name)?;
                        let set =
                            ValueSet::new(values.clone()).ok_or(NfError::EmptyValueSet { attr })?;
                        Ok((attr, set))
                    })
                    .collect::<Result<Vec<_>>>()?;
                ops::select_box(&rel, &resolved)
            }
            Expr::Project { input, attrs } => {
                let rel = input.eval(env)?;
                let ids = attrs
                    .iter()
                    .map(|n| rel.schema().attr_id(n))
                    .collect::<Result<Vec<_>>>()?;
                ops::project(&rel, &ids, &NestOrder::identity(ids.len()))
            }
            Expr::Union(l, r) => {
                let (l, r) = (l.eval(env)?, r.eval(env)?);
                let order = NestOrder::identity(l.arity());
                ops::union(&l, &r, &order)
            }
            Expr::Difference(l, r) => {
                let (l, r) = (l.eval(env)?, r.eval(env)?);
                let order = NestOrder::identity(l.arity());
                ops::difference(&l, &r, &order)
            }
            Expr::Intersect(l, r) => {
                let (l, r) = (l.eval(env)?, r.eval(env)?);
                ops::intersect(&l, &r)
            }
            Expr::Join(l, r) => {
                let (l, r) = (l.eval(env)?, r.eval(env)?);
                ops::natural_join(&l, &r)
            }
            Expr::Nest { input, attr } => {
                let rel = input.eval(env)?;
                let id = rel.schema().attr_id(attr)?;
                Ok(ops::nest(&rel, id))
            }
            Expr::Unnest { input, attr } => {
                let rel = input.eval(env)?;
                let id = rel.schema().attr_id(attr)?;
                Ok(ops::unnest(&rel, id))
            }
            Expr::Canonicalize { input, order } => {
                let rel = input.eval(env)?;
                let names: Vec<&str> = order.iter().map(String::as_str).collect();
                let order = NestOrder::from_names(rel.schema(), &names)?;
                Ok(nf2_core::nest::canonicalize(&rel, &order))
            }
        }
    }
}

impl std::fmt::Display for Expr {
    /// Compact algebra notation, e.g. `π[Course](σ[Student∈{…}](sc))` —
    /// used by EXPLAIN output and optimizer traces.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Expr::Rel(name) => write!(f, "{name}"),
            Expr::SelectBox { input, constraints } => {
                write!(f, "σ[")?;
                for (i, (attr, values)) in constraints.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    let vals: Vec<String> = values.iter().map(|a| a.to_string()).collect();
                    write!(f, "{attr}∈{{{}}}", vals.join(","))?;
                }
                write!(f, "]({input})")
            }
            Expr::Project { input, attrs } => write!(f, "π[{}]({input})", attrs.join(",")),
            Expr::Union(l, r) => write!(f, "({l} ∪ {r})"),
            Expr::Difference(l, r) => write!(f, "({l} − {r})"),
            Expr::Intersect(l, r) => write!(f, "({l} ∩ {r})"),
            Expr::Join(l, r) => write!(f, "({l} ⋈ {r})"),
            Expr::Nest { input, attr } => write!(f, "ν[{attr}]({input})"),
            Expr::Unnest { input, attr } => write!(f, "μ[{attr}]({input})"),
            Expr::Canonicalize { input, order } => {
                write!(f, "ν[{}]({input})", order.join("→"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf2_core::relation::FlatRelation;
    use nf2_core::schema::Schema;

    fn env_with_sc() -> Env {
        let schema = Schema::new("SC", &["Student", "Course"]).unwrap();
        let flat = FlatRelation::from_rows(
            schema,
            vec![
                vec![Atom(1), Atom(10)],
                vec![Atom(1), Atom(11)],
                vec![Atom(2), Atom(10)],
            ],
        )
        .unwrap();
        let mut env = Env::new();
        env.insert("sc", NfRelation::from_flat(&flat));
        env
    }

    #[test]
    fn env_lookup() {
        let env = env_with_sc();
        assert!(env.get("sc").is_ok());
        assert!(env.get("missing").is_err());
        assert_eq!(env.names(), vec!["sc"]);
    }

    #[test]
    fn eval_select_project_pipeline() {
        let env = env_with_sc();
        let expr = Expr::Project {
            input: Box::new(Expr::SelectBox {
                input: Box::new(Expr::rel("sc")),
                constraints: vec![("Student".into(), vec![Atom(1)])],
            }),
            attrs: vec!["Course".into()],
        };
        let out = expr.eval(&env).unwrap();
        assert_eq!(out.expand().len(), 2);
        assert_eq!(
            out.schema().attr_names().collect::<Vec<_>>(),
            vec!["Course"]
        );
    }

    #[test]
    fn eval_nest_then_unnest_round_trips() {
        let env = env_with_sc();
        let nested = Expr::Nest {
            input: Box::new(Expr::rel("sc")),
            attr: "Student".into(),
        };
        let round = Expr::Unnest {
            input: Box::new(nested.clone()),
            attr: "Student".into(),
        };
        let base = env.get("sc").unwrap().expand();
        assert_eq!(round.eval(&env).unwrap().expand(), base);
        assert!(nested.eval(&env).unwrap().tuple_count() < 3);
    }

    #[test]
    fn eval_canonicalize_by_names() {
        let env = env_with_sc();
        let expr = Expr::Canonicalize {
            input: Box::new(Expr::rel("sc")),
            order: vec!["Student".into(), "Course".into()],
        };
        let out = expr.eval(&env).unwrap();
        assert!(nf2_core::nest::is_canonical(&out, &NestOrder::identity(2)));
    }

    #[test]
    fn eval_unknown_attr_errors() {
        let env = env_with_sc();
        let expr = Expr::Nest {
            input: Box::new(Expr::rel("sc")),
            attr: "Nope".into(),
        };
        assert!(expr.eval(&env).is_err());
    }

    #[test]
    fn eval_set_operators() {
        let env = env_with_sc();
        let u = Expr::Union(Box::new(Expr::rel("sc")), Box::new(Expr::rel("sc")));
        assert_eq!(u.eval(&env).unwrap().expand().len(), 3);
        let d = Expr::Difference(Box::new(Expr::rel("sc")), Box::new(Expr::rel("sc")));
        assert!(d.eval(&env).unwrap().is_empty());
        let i = Expr::Intersect(Box::new(Expr::rel("sc")), Box::new(Expr::rel("sc")));
        assert_eq!(i.eval(&env).unwrap().expand().len(), 3);
    }

    #[test]
    fn eval_join_via_expr() {
        let mut env = env_with_sc();
        let cp_schema = Schema::new("CP", &["Course", "Prereq"]).unwrap();
        let cp = FlatRelation::from_rows(
            cp_schema,
            vec![vec![Atom(10), Atom(90)], vec![Atom(11), Atom(91)]],
        )
        .unwrap();
        env.insert("cp", NfRelation::from_flat(&cp));
        let j = Expr::Join(Box::new(Expr::rel("sc")), Box::new(Expr::rel("cp")));
        let out = j.eval(&env).unwrap();
        assert_eq!(out.expand().len(), 3);
        assert_eq!(out.arity(), 3);
    }
}
