//! # nf2-algebra — the NF² relational algebra substrate
//!
//! The paper extends the Jaeschke–Schek algebra of non-first-normal-form
//! relations (reference \[7\]): the classical operators plus NEST and
//! UNNEST, all defined on the realization view `R*` with rectangle-level
//! fast paths where the partition invariant provably survives
//! (see [`ops`]). [`expr`] provides a composable logical expression tree
//! over named relations, used by `nf2-query` as its plan representation;
//! [`stream`] evaluates the same trees as pull-based iterator pipelines
//! over borrowed relations (this is what query cursors ride on).
//!
//! [`laws`] states the algebra's interaction laws (unnest∘nest, nest
//! order-sensitivity, selection-pushdown strength, …) as executable
//! checkers, and [`optimize`](mod@optimize) turns them into a rule-based plan rewriter
//! with structural vs realization-view guarantees — the "optimization
//! strategy" §5 of the paper leaves open. [`check`] is the static
//! verification layer over both: a typed-IR checker that infers nest
//! structure for every operator and gates each optimizer rewrite on
//! type preservation (see `README.md` § Plan verification).

pub mod check;
pub mod expr;
pub mod laws;
pub mod ops;
pub mod optimize;
pub mod stream;

pub use check::{
    check_rewrite, infer, AttrType, CheckCatalog, CheckError, CheckReport, NestLevel, RelType,
    RewriteViolation,
};
pub use expr::{Env, Expr};
pub use laws::{check_all, LawOutcome};
pub use ops::{
    difference, intersect, natural_join, nest, product, project, select_box, select_where, union,
    unnest,
};
pub use optimize::{
    estimate, optimize, optimize_observed, try_optimize, verify_enabled, CostEstimate, Optimized,
    RewriteMode, SchemaCatalog,
};
pub use stream::{
    eval_stream, lazy_iter, AtomCmp, JoinLayout, OpTally, RelStream, SortDir, StreamEnv,
    StreamSource, TopKStats, TupleIter, TupleOrder,
};
