//! Iterator-driven ("streaming") evaluation of algebra expressions.
//!
//! [`Expr::eval`](crate::Expr::eval) materializes the full result of every
//! node before its parent sees one tuple — fine for the paper repro,
//! hostile to a serving engine where most consumers want the first rows
//! fast. This module evaluates the same expressions as pull-based
//! pipelines over *borrowed* relations:
//!
//! * `Rel` scans yield [`TupleView::Borrowed`] straight from the source —
//!   no clone, no copy;
//! * box selection intersects components tuple-at-a-time, keeping the
//!   borrow whenever no component shrinks;
//! * UNNEST splits each tuple independently;
//! * natural join materializes only its **build side** (the right input)
//!   and streams the probe side through it;
//! * inherently blocking operators — projection (duplicate elimination /
//!   fixedness check), nest, canonicalize, union, difference, intersect —
//!   fall back to materializing their inputs and calling the exact same
//!   [`ops`] functions the strict evaluator uses, so results are
//!   tuple-identical to `eval` by construction.
//!
//! Every pipeline operator preserves the partition invariant (disjoint
//! rectangles in, disjoint rectangles out), which is what lets
//! [`RelStream::into_relation`] materialize with the linear-time
//! [`NfRelation::from_disjoint_tuples`] instead of the quadratic
//! validating constructor.

use std::cmp::Ordering;
use std::sync::atomic::AtomicUsize;
use std::sync::Arc;

use nf2_core::error::{NfError, Result};
use nf2_core::relation::NfRelation;
use nf2_core::schema::{NestOrder, Schema};
use nf2_core::tuple::{NfTuple, TupleView, ValueSet};
use nf2_core::value::Atom;

use crate::expr::Expr;
use crate::ops;

/// A boxed pull-based tuple pipeline.
pub type TupleIter<'a> = Box<dyn Iterator<Item = TupleView<'a>> + 'a>;

/// Wraps a pipeline factory so the inner pipeline is built on the
/// **first pull**, not when the enclosing plan is assembled.
///
/// Blocking operators (a join's build side, projection's input, a
/// top-k's drain) do real work — scans included — the moment they are
/// constructed. Deferring construction behind this adapter keeps the
/// whole plan pull-driven end to end: a consumer that never asks for a
/// tuple (`LIMIT 0`, an early-dropped cursor) never pays a single scan
/// probe, whatever the plan shape.
pub fn lazy_iter<'a>(make: impl FnOnce() -> TupleIter<'a> + 'a) -> TupleIter<'a> {
    enum Lazy<'a> {
        Pending(Option<Box<dyn FnOnce() -> TupleIter<'a> + 'a>>),
        Running(TupleIter<'a>),
    }
    impl<'a> Iterator for Lazy<'a> {
        type Item = TupleView<'a>;
        fn next(&mut self) -> Option<TupleView<'a>> {
            loop {
                match self {
                    Lazy::Running(iter) => return iter.next(),
                    Lazy::Pending(make) => {
                        let make = make.take().expect("pending state holds the factory");
                        *self = Lazy::Running(make());
                    }
                }
            }
        }
    }
    Box::new(Lazy::Pending(Some(Box::new(make))))
}

/// Sort direction of an `ORDER BY` / top-k operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortDir {
    /// Smallest key first.
    Asc,
    /// Largest key first.
    Desc,
}

/// An atom comparator: how two attribute values rank against each other.
///
/// The algebra itself only sees opaque [`Atom`]s; a storage layer with a
/// dictionary plugs in a comparator that ranks atoms by their *resolved*
/// values (this is how `nf2-query` gives `ORDER BY` lexicographic string
/// semantics instead of intern-order semantics).
pub type AtomCmp = Arc<dyn Fn(Atom, Atom) -> Ordering + Send + Sync>;

/// A total order on NF² tuples over one attribute — the key of the
/// [`sorted`](RelStream::sorted) and [`top_k`](RelStream::top_k)
/// operators.
///
/// An NF² tuple's component on the attribute is a *set*; the tuple's
/// sort key is the set's **extreme member under the direction** — the
/// minimum for [`SortDir::Asc`], the maximum for [`SortDir::Desc`] — so
/// "top-k groups" ranks each group by its best value. Tuples with equal
/// keys compare equal; both operators break such ties by stream
/// position (stable), which is what makes `top_k(k)` tuple-identical to
/// a stable full sort followed by `take(k)`.
#[derive(Clone)]
pub struct TupleOrder {
    attr: usize,
    dir: SortDir,
    cmp: AtomCmp,
}

impl std::fmt::Debug for TupleOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TupleOrder")
            .field("attr", &self.attr)
            .field("dir", &self.dir)
            .finish_non_exhaustive()
    }
}

impl TupleOrder {
    /// Orders by raw atom id (dictionary intern order) — the right
    /// choice when atoms *are* the values, as in the workload benches.
    pub fn by_atom_id(attr: usize, dir: SortDir) -> Self {
        Self::with_cmp(attr, dir, Arc::new(|a: Atom, b: Atom| a.id().cmp(&b.id())))
    }

    /// Orders with a caller-supplied atom comparator (`cmp` must be a
    /// total order).
    pub fn with_cmp(attr: usize, dir: SortDir, cmp: AtomCmp) -> Self {
        TupleOrder { attr, dir, cmp }
    }

    /// The attribute being ordered on.
    pub fn attr(&self) -> usize {
        self.attr
    }

    /// The direction.
    pub fn dir(&self) -> SortDir {
        self.dir
    }

    /// The tuple's sort key: the extreme member of its component under
    /// the direction (min for ASC, max for DESC).
    pub fn key_of(&self, t: &NfTuple) -> Atom {
        let comp = t.component(self.attr).as_slice();
        let mut best = comp[0];
        for &v in &comp[1..] {
            let better = match self.dir {
                SortDir::Asc => (self.cmp)(v, best) == Ordering::Less,
                SortDir::Desc => (self.cmp)(v, best) == Ordering::Greater,
            };
            if better {
                best = v;
            }
        }
        best
    }

    /// Compares two already-extracted keys in *emission* order (the
    /// direction folded in): `Less` means "emitted first".
    pub fn cmp_keys(&self, a: Atom, b: Atom) -> Ordering {
        match self.dir {
            SortDir::Asc => (self.cmp)(a, b),
            SortDir::Desc => (self.cmp)(b, a),
        }
    }
}

/// The compound sort key of a tuple under a multi-attribute order: one
/// extreme member per [`TupleOrder`], in order-list position. `ORDER BY
/// a, b` ranks by `a`'s key first and breaks ties with `b`'s.
pub fn compound_key_of(orders: &[TupleOrder], t: &NfTuple) -> Vec<Atom> {
    orders.iter().map(|o| o.key_of(t)).collect()
}

/// Lexicographic comparison of two compound keys in emission order
/// (each position compared under its own [`TupleOrder`], directions
/// folded in). Keys must come from [`compound_key_of`] over the same
/// `orders`.
pub fn cmp_compound_keys(orders: &[TupleOrder], a: &[Atom], b: &[Atom]) -> Ordering {
    orders
        .iter()
        .zip(a.iter().zip(b))
        .map(|(o, (&ka, &kb))| o.cmp_keys(ka, kb))
        .find(|&c| c != Ordering::Equal)
        .unwrap_or(Ordering::Equal)
}

/// Observable counters of one [`top_k`](RelStream::top_k) execution:
/// how many tuples the operator pulled from its input and the largest
/// number it ever held at once (`≤ k` by construction — this is the
/// bounded-memory claim, pinned by tests and the E19 experiment).
#[derive(Debug, Default)]
pub struct TopKStats {
    /// Tuples pulled from the input stream.
    pub pulled: AtomicUsize,
    /// Peak number of tuples retained in the heap.
    pub peak_retained: AtomicUsize,
}

/// Per-operator actuals for `EXPLAIN ANALYZE`: tuples yielded and
/// inclusive wall time (nanoseconds, measured by the caller — this
/// crate never touches a clock). One tally may be shared by several
/// pipelines (a sharded scan's per-shard streams all feed the same
/// plan node), so both fields are cumulative across clones of the
/// owning `Arc`. All accesses are `Relaxed`: tallies are read only
/// after the cursor is fully drained on the draining thread.
#[derive(Debug, Default)]
pub struct OpTally {
    rows: std::sync::atomic::AtomicU64,
    nanos: std::sync::atomic::AtomicU64,
}

impl OpTally {
    /// Records one tuple yielded by the operator.
    #[inline]
    pub fn add_row(&self) {
        self.rows.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Adds inclusive operator time in nanoseconds.
    #[inline]
    pub fn add_nanos(&self, n: u64) {
        self.nanos
            .fetch_add(n, std::sync::atomic::Ordering::Relaxed);
    }

    /// Total tuples yielded so far.
    pub fn rows(&self) -> u64 {
        self.rows.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Total inclusive nanoseconds so far.
    pub fn nanos(&self) -> u64 {
        self.nanos.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// A streamed relation: the schema plus a lazily-evaluated tuple pipeline.
pub struct RelStream<'a> {
    schema: Arc<Schema>,
    iter: TupleIter<'a>,
}

impl std::fmt::Debug for RelStream<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RelStream")
            .field("schema", &self.schema)
            .finish_non_exhaustive()
    }
}

impl<'a> RelStream<'a> {
    /// Wraps an existing pipeline under a schema.
    pub fn new(schema: Arc<Schema>, iter: TupleIter<'a>) -> Self {
        Self { schema, iter }
    }

    /// A stream with no tuples.
    pub fn empty(schema: Arc<Schema>) -> Self {
        Self {
            schema,
            iter: Box::new(std::iter::empty()),
        }
    }

    /// A stream over a borrowed relation's tuples (zero-copy).
    pub fn scan(rel: &'a NfRelation) -> Self {
        Self {
            schema: rel.schema().clone(),
            iter: Box::new(rel.tuples().iter().map(TupleView::Borrowed)),
        }
    }

    /// A stream that owns its tuples (e.g. a materialized intermediate).
    pub fn from_relation(rel: NfRelation) -> Self {
        let schema = rel.schema().clone();
        Self {
            schema,
            iter: Box::new(rel.into_tuples().into_iter().map(TupleView::Owned)),
        }
    }

    /// Concatenates several streams under one schema — the shape a
    /// sharded table presents to a pipeline: per-shard tuple streams,
    /// back-to-back, still fully lazy (a consumer that stops early never
    /// pulls the later shards at all).
    ///
    /// Correctness requirement (the sharded store guarantees it by
    /// value-routing): the parts' expansions must be pairwise disjoint,
    /// so the concatenation is a valid NFR over the same `R*`.
    pub fn concat(schema: Arc<Schema>, parts: Vec<RelStream<'a>>) -> Self {
        Self {
            schema,
            iter: Box::new(parts.into_iter().flat_map(|p| p.iter)),
        }
    }

    /// The output schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Drains the stream into a relation.
    ///
    /// Linear in the number of tuples: the pipeline operators preserve
    /// pairwise disjointness, so no overlap re-validation is needed.
    pub fn into_relation(self) -> Result<NfRelation> {
        let tuples: Vec<NfTuple> = self.iter.map(TupleView::into_owned).collect();
        NfRelation::from_disjoint_tuples(self.schema, tuples)
    }

    /// Sums `|R*|` over the stream without materializing any tuple list.
    pub fn flat_count(self) -> u128 {
        self.iter.map(|t| t.expansion_count()).sum()
    }

    /// Blocking sort by `order` (stable: equal keys keep their stream
    /// order). The input is drained on the **first pull**, not at
    /// construction, so an unconsumed sorted stream costs nothing.
    pub fn sorted(self, order: TupleOrder) -> RelStream<'a> {
        let RelStream { schema, iter } = self;
        let out = lazy_iter(move || {
            let mut entries: Vec<(Atom, usize, TupleView<'a>)> = iter
                .enumerate()
                .map(|(seq, t)| (order.key_of(t.as_tuple()), seq, t))
                .collect();
            entries.sort_by(|(ka, sa, _), (kb, sb, _)| order.cmp_keys(*ka, *kb).then(sa.cmp(sb)));
            Box::new(entries.into_iter().map(|(_, _, t)| t)) as TupleIter<'a>
        });
        RelStream::new(schema, out)
    }

    /// Blocking sort by a **compound** order (`ORDER BY a, b DESC, …`):
    /// lexicographic over the orders' keys, stable on full ties. With a
    /// single order this is exactly [`sorted`](Self::sorted).
    pub fn sorted_by(self, orders: Vec<TupleOrder>) -> RelStream<'a> {
        let RelStream { schema, iter } = self;
        let out = lazy_iter(move || {
            let mut entries: Vec<(Vec<Atom>, usize, TupleView<'a>)> = iter
                .enumerate()
                .map(|(seq, t)| (compound_key_of(&orders, t.as_tuple()), seq, t))
                .collect();
            entries.sort_by(|(ka, sa, _), (kb, sb, _)| {
                cmp_compound_keys(&orders, ka, kb).then(sa.cmp(sb))
            });
            Box::new(entries.into_iter().map(|(_, _, t)| t)) as TupleIter<'a>
        });
        RelStream::new(schema, out)
    }

    /// Streaming merge of **already-sorted** parts into one sorted
    /// stream — the `ORDER BY` fast path over a sharded store whose
    /// per-shard segments are kernel-sorted on the order key: no shard
    /// is drained, no heap over the full input, each pull compares the
    /// parts' current heads and emits the best.
    ///
    /// Correctness requirement: every part must already be sorted under
    /// `orders` (compound keys non-decreasing in emission order). Ties
    /// across parts go to the lowest part index, and each part is FIFO
    /// within itself, so the merge is tuple-identical to
    /// `concat(parts).sorted_by(orders)` — the stable blocking sort —
    /// whenever the parts arrive in concatenation order.
    ///
    /// Head selection is a linear scan over the parts: with shard
    /// counts in the tens, that beats heap bookkeeping and keeps the
    /// code obviously correct. Construction is lazy; the first pull
    /// primes one head per part, after which `LIMIT k` costs about
    /// `k + parts` input pulls instead of a full drain.
    pub fn merge_sorted(
        schema: Arc<Schema>,
        parts: Vec<RelStream<'a>>,
        orders: Vec<TupleOrder>,
    ) -> RelStream<'a> {
        if parts.len() == 1 {
            // Single part: already sorted, nothing to merge.
            let mut parts = parts;
            let only = parts.pop().expect("one part is present");
            return RelStream::new(schema, only.iter);
        }
        let out = lazy_iter(move || {
            let mut iters: Vec<TupleIter<'a>> = parts.into_iter().map(|p| p.iter).collect();
            let mut heads: Vec<Option<(Vec<Atom>, TupleView<'a>)>> = iters
                .iter_mut()
                .map(|it| {
                    it.next()
                        .map(|t| (compound_key_of(&orders, t.as_tuple()), t))
                })
                .collect();
            let merged = std::iter::from_fn(move || {
                let mut best: Option<usize> = None;
                for i in 0..heads.len() {
                    let Some((ki, _)) = &heads[i] else { continue };
                    best = match best {
                        None => Some(i),
                        Some(b) => {
                            let (kb, _) = heads[b].as_ref().expect("best head is occupied");
                            // Strict Less: on equal keys the earlier
                            // part wins, matching stable concat order.
                            if cmp_compound_keys(&orders, ki, kb) == Ordering::Less {
                                Some(i)
                            } else {
                                Some(b)
                            }
                        }
                    };
                }
                let b = best?;
                let (_, t) = heads[b].take().expect("best head is occupied");
                heads[b] = iters[b]
                    .next()
                    .map(|t| (compound_key_of(&orders, t.as_tuple()), t));
                Some(t)
            });
            Box::new(merged) as TupleIter<'a>
        });
        RelStream::new(schema, out)
    }

    /// Streaming top-k: the first `k` tuples of [`sorted`](Self::sorted)
    /// — tuple-identical, ties included — computed with a **bounded
    /// binary heap** that pulls the input exactly once and retains at
    /// most `k` tuples at any moment (never the full input). `k = 0`
    /// yields nothing and pulls nothing. Work happens on the first pull.
    pub fn top_k(self, order: TupleOrder, k: usize) -> RelStream<'a> {
        self.top_k_with_stats(order, k, Arc::new(TopKStats::default()))
    }

    /// [`top_k`](Self::top_k) with shared counters: `stats` records the
    /// tuples pulled and the peak heap occupancy (`≤ k`), which is how
    /// tests and the E19 experiment pin the bounded-memory claim.
    pub fn top_k_with_stats(
        self,
        order: TupleOrder,
        k: usize,
        stats: Arc<TopKStats>,
    ) -> RelStream<'a> {
        let RelStream { schema, iter } = self;
        if k == 0 {
            // Nothing can survive the limit: do not even build the
            // upstream pipeline (no scan probes — the LIMIT 0 tests pin
            // this across plan shapes).
            return RelStream::empty(schema);
        }
        let (key_order, cmp_order) = (order.clone(), order);
        let out = bounded_top_k(
            iter,
            k,
            stats,
            move |t| key_order.key_of(t),
            move |&a, &b| cmp_order.cmp_keys(a, b),
        );
        RelStream::new(schema, out)
    }

    /// [`top_k`](Self::top_k) under a compound order — the first `k`
    /// tuples of [`sorted_by`](Self::sorted_by), computed with the same
    /// bounded heap (at most `k` tuples retained).
    pub fn top_k_by(self, orders: Vec<TupleOrder>, k: usize) -> RelStream<'a> {
        self.top_k_by_with_stats(orders, k, Arc::new(TopKStats::default()))
    }

    /// [`top_k_by`](Self::top_k_by) with shared counters.
    pub fn top_k_by_with_stats(
        self,
        orders: Vec<TupleOrder>,
        k: usize,
        stats: Arc<TopKStats>,
    ) -> RelStream<'a> {
        let RelStream { schema, iter } = self;
        if k == 0 {
            return RelStream::empty(schema);
        }
        let (key_orders, cmp_orders) = (orders.clone(), orders);
        let out = bounded_top_k(
            iter,
            k,
            stats,
            move |t| compound_key_of(&key_orders, t),
            move |a: &Vec<Atom>, b| cmp_compound_keys(&cmp_orders, a, b),
        );
        RelStream::new(schema, out)
    }
}

/// The bounded-heap top-k core shared by the single-key and compound
/// operators: pulls the input exactly once, retains at most `k` entries,
/// emits the stable-sort prefix. `cmp` ranks extracted keys in emission
/// order (`Less` = emitted first).
fn bounded_top_k<'a, K: 'a>(
    iter: TupleIter<'a>,
    k: usize,
    stats: Arc<TopKStats>,
    key_of: impl Fn(&NfTuple) -> K + 'a,
    cmp: impl Fn(&K, &K) -> Ordering + 'a,
) -> TupleIter<'a> {
    use std::sync::atomic::Ordering::Relaxed;
    lazy_iter(move || {
        // Max-heap with the *worst* retained entry at the root
        // ("worst" = latest in emission order), so a better incoming
        // tuple evicts it in O(log k).
        let mut heap: Vec<(K, usize, TupleView<'a>)> = Vec::with_capacity(k.min(1024));
        let worse = |a: &(K, usize, TupleView<'a>), b: &(K, usize, TupleView<'a>)| {
            cmp(&a.0, &b.0).then(a.1.cmp(&b.1)) == Ordering::Greater
        };
        for (seq, t) in iter.enumerate() {
            stats.pulled.fetch_add(1, Relaxed);
            let entry = (key_of(t.as_tuple()), seq, t);
            if heap.len() < k {
                // Sift up.
                heap.push(entry);
                let mut i = heap.len() - 1;
                while i > 0 {
                    let parent = (i - 1) / 2;
                    if worse(&heap[i], &heap[parent]) {
                        heap.swap(i, parent);
                        i = parent;
                    } else {
                        break;
                    }
                }
                stats.peak_retained.fetch_max(heap.len(), Relaxed);
            } else if worse(&heap[0], &entry) {
                // Replace the root and sift down. (A later tuple with
                // an equal key is *worse* — larger seq — so ties
                // never evict, exactly like a stable sort.)
                heap[0] = entry;
                let mut i = 0;
                loop {
                    let (l, r) = (2 * i + 1, 2 * i + 2);
                    let mut biggest = i;
                    if l < heap.len() && worse(&heap[l], &heap[biggest]) {
                        biggest = l;
                    }
                    if r < heap.len() && worse(&heap[r], &heap[biggest]) {
                        biggest = r;
                    }
                    if biggest == i {
                        break;
                    }
                    heap.swap(i, biggest);
                    i = biggest;
                }
            }
        }
        heap.sort_by(|(ka, sa, _), (kb, sb, _)| cmp(ka, kb).then(sa.cmp(sb)));
        Box::new(heap.into_iter().map(|(_, _, t)| t)) as TupleIter<'a>
    })
}

impl<'a> Iterator for RelStream<'a> {
    type Item = TupleView<'a>;

    fn next(&mut self) -> Option<TupleView<'a>> {
        self.iter.next()
    }
}

/// One named streaming source: a schema plus a factory producing a fresh
/// scan on demand (a relation referenced twice in a plan scans twice).
/// Sharded sources may additionally carry a **pruned**-scan factory
/// (see [`StreamEnv::insert_sharded_relations_routed`]).
pub struct StreamSource<'a> {
    schema: Arc<Schema>,
    scan: Box<dyn Fn() -> TupleIter<'a> + 'a>,
    /// `(routing attribute, factory)`: given the selection's allowed
    /// value set on that attribute, produce a scan covering only the
    /// shards those values route to.
    #[allow(clippy::type_complexity)]
    pruned: Option<(usize, Box<dyn Fn(&ValueSet) -> TupleIter<'a> + 'a>)>,
}

impl std::fmt::Debug for StreamSource<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamSource")
            .field("schema", &self.schema)
            .finish_non_exhaustive()
    }
}

/// A named-source environment for streaming evaluation — the borrowing
/// counterpart of [`Env`](crate::Env). Sources are usually whole borrowed
/// relations ([`StreamEnv::insert_relation`]), but a storage engine can
/// plug in instrumented scans via [`StreamEnv::insert_source`] (this is
/// how `nf2-query` routes cursors through `NfTable`'s counted scans).
///
/// Backed by a small vector with linear-scan lookup: environments are
/// rebuilt per query over the handful of tables a plan touches, so
/// avoiding hash-map setup matters more than O(1) lookup.
#[derive(Debug, Default)]
pub struct StreamEnv<'a> {
    sources: Vec<(String, StreamSource<'a>)>,
}

impl<'a> StreamEnv<'a> {
    /// An empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a borrowed relation under `name`.
    pub fn insert_relation(&mut self, name: impl Into<String>, rel: &'a NfRelation) {
        let schema = rel.schema().clone();
        self.insert_source(name, schema, move || {
            Box::new(rel.tuples().iter().map(TupleView::Borrowed))
        });
    }

    /// Registers a **sharded** relation under `name`: every scan yields
    /// the shards' borrowed tuples back-to-back (shard order), exactly
    /// like [`RelStream::concat`] of per-shard scans. This is how a
    /// partitioned store (`nf2-storage`'s sharded `NfTable`) plugs into
    /// streaming evaluation without merging shards first — the
    /// concatenation carries the same `R*`, so selections, joins and
    /// counts are unaffected.
    ///
    /// The shards' expansions must be pairwise disjoint (guaranteed by
    /// value-based routing).
    pub fn insert_sharded_relations(
        &mut self,
        name: impl Into<String>,
        schema: Arc<Schema>,
        shards: Vec<&'a NfRelation>,
    ) {
        self.insert_source(name, schema, move || {
            let shards = shards.clone();
            Box::new(
                shards
                    .into_iter()
                    .flat_map(|rel| rel.tuples().iter().map(TupleView::Borrowed)),
            )
        });
    }

    /// [`insert_sharded_relations`](Self::insert_sharded_relations) plus
    /// the router the shards were partitioned by — which unlocks **shard
    /// pruning**: when [`eval_stream`] meets a box selection directly
    /// over this source whose conjunct constrains the routing attribute,
    /// the scan covers only the shards the allowed values route to, and
    /// the other shards are never touched at all.
    ///
    /// `shards[i]` must hold exactly the rows `router` sends to shard
    /// `i` (the invariant the sharded store maintains by construction).
    pub fn insert_sharded_relations_routed(
        &mut self,
        name: impl Into<String>,
        schema: Arc<Schema>,
        shards: Vec<&'a NfRelation>,
        router: nf2_core::shard::ShardRouter,
    ) {
        let name = name.into();
        let all = shards.clone();
        self.insert_source(name.clone(), schema, move || {
            let all = all.clone();
            Box::new(
                all.into_iter()
                    .flat_map(|rel| rel.tuples().iter().map(TupleView::Borrowed)),
            )
        });
        if let Some(attr) = router.attr() {
            let slot = self
                .sources
                .iter_mut()
                .rev()
                .find(|(n, _)| *n == name)
                .expect("just inserted");
            slot.1.pruned = Some((
                attr,
                Box::new(move |values: &ValueSet| {
                    let keep = router.shards_for_values(values.as_slice());
                    let shards = shards.clone();
                    Box::new(
                        keep.into_iter()
                            .filter_map(move |i| shards.get(i).copied())
                            .flat_map(|rel| rel.tuples().iter().map(TupleView::Borrowed)),
                    )
                }),
            ));
        }
    }

    /// Registers an arbitrary scan factory under `name` (replacing any
    /// previous source of that name).
    pub fn insert_source(
        &mut self,
        name: impl Into<String>,
        schema: Arc<Schema>,
        scan: impl Fn() -> TupleIter<'a> + 'a,
    ) {
        let name = name.into();
        let source = StreamSource {
            schema,
            scan: Box::new(scan),
            pruned: None,
        };
        match self.sources.iter_mut().find(|(n, _)| *n == name) {
            Some(slot) => slot.1 = source,
            None => self.sources.push((name, source)),
        }
    }

    fn get(&self, name: &str) -> Result<&StreamSource<'a>> {
        self.sources
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
            .ok_or_else(|| NfError::UnknownAttribute(format!("relation {name}")))
    }
}

/// Evaluates `expr` against `env` as a pull-based pipeline.
///
/// The result is tuple-identical to [`Expr::eval`](crate::Expr::eval) on
/// an [`Env`](crate::Env) holding the same relations (property-tested in
/// this crate): streaming operators compute the exact per-tuple rewrites
/// of their strict counterparts, and blocking operators *are* the strict
/// counterparts, applied to materialized inputs.
pub fn eval_stream<'a>(expr: &Expr, env: &StreamEnv<'a>) -> Result<RelStream<'a>> {
    match expr {
        Expr::Rel(name) => {
            let source = env.get(name)?;
            Ok(RelStream::new(source.schema.clone(), (source.scan)()))
        }
        Expr::SelectBox { input, constraints } => {
            let child = match input.as_ref() {
                // Selection directly over a routed sharded source: let
                // the source skip the shards no allowed value routes to.
                // The selection below still filters tuple-by-tuple, so
                // this only removes provably-empty work.
                Expr::Rel(name) => {
                    let source = env.get(name)?;
                    let schema = source.schema.clone();
                    let pruned = source.pruned.as_ref().and_then(|(attr, make)| {
                        constraints
                            .iter()
                            .find(|(name, _)| schema.attr_id(name) == Ok(*attr))
                            .map(|(_, values)| {
                                let set = ValueSet::new(values.clone())
                                    .ok_or(NfError::EmptyValueSet { attr: *attr })?;
                                Ok(make(&set))
                            })
                    });
                    match pruned {
                        Some(iter) => RelStream::new(schema, iter?),
                        None => eval_stream(input, env)?,
                    }
                }
                _ => eval_stream(input, env)?,
            };
            let schema = child.schema.clone();
            let resolved = constraints
                .iter()
                .map(|(name, values)| {
                    let attr = schema.attr_id(name)?;
                    let set =
                        ValueSet::new(values.clone()).ok_or(NfError::EmptyValueSet { attr })?;
                    Ok((attr, set))
                })
                .collect::<Result<Vec<_>>>()?;
            let iter = child.iter.filter_map(move |t| filter_box(t, &resolved));
            Ok(RelStream::new(schema, Box::new(iter)))
        }
        Expr::Unnest { input, attr } => {
            let child = eval_stream(input, env)?;
            let schema = child.schema.clone();
            let attr = schema.attr_id(attr)?;
            let iter = child.iter.flat_map(move |t| {
                if t.component(attr).is_singleton() {
                    // Already flat on `attr`: pass the view through.
                    vec![t]
                } else {
                    t.component(attr)
                        .iter()
                        .map(|v| TupleView::Owned(t.with_component(attr, ValueSet::singleton(v))))
                        .collect()
                }
            });
            Ok(RelStream::new(schema, Box::new(iter)))
        }
        Expr::Join(l, r) => {
            let left = eval_stream(l, env)?;
            let right = eval_stream(r, env)?;
            stream_join(left, right)
        }
        // Blocking operators: materialize the inputs and delegate to the
        // strict implementations (identical results by construction).
        Expr::Project { input, attrs } => {
            let rel = eval_stream(input, env)?.into_relation()?;
            let ids = attrs
                .iter()
                .map(|n| rel.schema().attr_id(n))
                .collect::<Result<Vec<_>>>()?;
            let out = ops::project(&rel, &ids, &NestOrder::identity(ids.len()))?;
            Ok(RelStream::from_relation(out))
        }
        Expr::Union(l, r) => {
            let (l, r) = (
                eval_stream(l, env)?.into_relation()?,
                eval_stream(r, env)?.into_relation()?,
            );
            let order = NestOrder::identity(l.arity());
            Ok(RelStream::from_relation(ops::union(&l, &r, &order)?))
        }
        Expr::Difference(l, r) => {
            let (l, r) = (
                eval_stream(l, env)?.into_relation()?,
                eval_stream(r, env)?.into_relation()?,
            );
            let order = NestOrder::identity(l.arity());
            Ok(RelStream::from_relation(ops::difference(&l, &r, &order)?))
        }
        Expr::Intersect(l, r) => {
            let (l, r) = (
                eval_stream(l, env)?.into_relation()?,
                eval_stream(r, env)?.into_relation()?,
            );
            Ok(RelStream::from_relation(ops::intersect(&l, &r)?))
        }
        Expr::Nest { input, attr } => {
            let rel = eval_stream(input, env)?.into_relation()?;
            let id = rel.schema().attr_id(attr)?;
            Ok(RelStream::from_relation(ops::nest(&rel, id)))
        }
        Expr::Canonicalize { input, order } => {
            let rel = eval_stream(input, env)?.into_relation()?;
            let names: Vec<&str> = order.iter().map(String::as_str).collect();
            let order = NestOrder::from_names(rel.schema(), &names)?;
            Ok(RelStream::from_relation(nf2_core::nest::canonicalize(
                &rel, &order,
            )))
        }
    }
}

/// Applies box-selection constraints to one tuple. `None` drops the
/// tuple; an unchanged tuple keeps its (possibly borrowed) view.
///
/// Public so physical executors built on this pipeline (the query
/// layer's compiled prepared plans) apply exactly the same per-tuple
/// selection semantics.
pub fn filter_box<'a>(
    t: TupleView<'a>,
    constraints: &[(usize, ValueSet)],
) -> Option<TupleView<'a>> {
    // First pass: compute the narrowed components, bailing early on an
    // empty intersection. Constraints fold progressively — a second
    // conjunct on the same attribute intersects the already-narrowed
    // component, exactly like the strict [`ops::select_box`].
    let mut narrowed: Vec<(usize, ValueSet)> = Vec::new();
    'conjunct: for (attr, set) in constraints {
        for entry in narrowed.iter_mut() {
            if entry.0 == *attr {
                entry.1 = entry.1.intersection(set)?;
                continue 'conjunct;
            }
        }
        let reduced = t.component(*attr).intersection(set)?;
        if reduced.len() != t.component(*attr).len() {
            narrowed.push((*attr, reduced));
        }
    }
    if narrowed.is_empty() {
        return Some(t); // every component survived intact — zero-copy
    }
    let mut out = t.into_owned();
    for (attr, set) in narrowed {
        out = out.with_component(attr, set);
    }
    Some(TupleView::Owned(out))
}

/// Natural join with a streamed probe (left) side and a materialized
/// build (right) side — the per-pair rectangle intersection of
/// [`ops::natural_join`], reordered so left tuples flow through.
/// The precomputed shape of a natural join: which right-side components
/// intersect which left-side components, which are appended, and the
/// output schema. Public so physical executors (the query layer's
/// compiled prepared plans) share one copy of the join semantics with
/// the streaming evaluator.
#[derive(Debug, Clone)]
pub struct JoinLayout {
    /// `(right attr, left attr)` pairs of shared attribute names.
    pub shared: Vec<(usize, usize)>,
    /// Right-side attributes appended after the left schema.
    pub right_only: Vec<usize>,
    /// Output schema: left attributes then right-only attributes
    /// (mirrors [`ops::natural_join`]).
    pub schema: Arc<Schema>,
}

impl JoinLayout {
    /// Computes the join layout of two input schemas.
    pub fn of(lschema: &Schema, rschema: &Schema) -> Result<JoinLayout> {
        let mut shared: Vec<(usize, usize)> = Vec::new(); // (right, left)
        let mut right_only: Vec<usize> = Vec::new();
        for (r_id, r_name) in rschema.attr_names().enumerate() {
            match lschema.attr_id(r_name) {
                Ok(l_id) => shared.push((r_id, l_id)),
                Err(_) => right_only.push(r_id),
            }
        }
        let mut names: Vec<&str> = lschema.attr_names().collect();
        let right_names: Vec<&str> = rschema.attr_names().collect();
        for &r_id in &right_only {
            names.push(right_names[r_id]);
        }
        let schema = Schema::new(
            format!("{}_join_{}", lschema.name(), rschema.name()),
            &names,
        )?;
        Ok(JoinLayout {
            shared,
            right_only,
            schema,
        })
    }

    /// Joins one probe tuple against the whole build side, appending the
    /// surviving combined rectangles to `out` — the per-pair rectangle
    /// intersection of [`ops::natural_join`].
    pub fn probe<'a>(
        &self,
        l: &TupleView<'a>,
        build: &[TupleView<'a>],
        out: &mut Vec<TupleView<'a>>,
    ) {
        'pair: for r in build {
            let mut comps: Vec<ValueSet> = l.components().to_vec();
            for &(r_id, l_id) in &self.shared {
                match comps[l_id].intersection(r.component(r_id)) {
                    Some(c) => comps[l_id] = c,
                    None => continue 'pair,
                }
            }
            for &r_id in &self.right_only {
                comps.push(r.component(r_id).clone());
            }
            out.push(TupleView::Owned(NfTuple::new(comps)));
        }
    }
}

fn stream_join<'a>(left: RelStream<'a>, right: RelStream<'a>) -> Result<RelStream<'a>> {
    let layout = JoinLayout::of(&left.schema, &right.schema)?;
    let schema = layout.schema.clone();
    // The build side stays as views: borrowed tuples are not cloned,
    // only held until the probe side finishes.
    let build: Vec<TupleView<'a>> = right.iter.collect();
    let iter = left.iter.flat_map(move |l| {
        let mut out = Vec::new();
        layout.probe(&l, &build, &mut out);
        out
    });
    Ok(RelStream::new(schema, Box::new(iter)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Env;
    use nf2_core::relation::FlatRelation;
    use nf2_core::value::Atom;

    fn sc() -> NfRelation {
        let schema = Schema::new("SC", &["Student", "Course"]).unwrap();
        let flat = FlatRelation::from_rows(
            schema,
            vec![
                vec![Atom(1), Atom(10)],
                vec![Atom(1), Atom(11)],
                vec![Atom(2), Atom(10)],
                vec![Atom(3), Atom(12)],
            ],
        )
        .unwrap();
        nf2_core::nest::canonical_of_flat(&flat, &NestOrder::identity(2))
    }

    fn cp() -> NfRelation {
        let schema = Schema::new("CP", &["Course", "Prof"]).unwrap();
        let flat = FlatRelation::from_rows(
            schema,
            vec![
                vec![Atom(10), Atom(90)],
                vec![Atom(11), Atom(91)],
                vec![Atom(12), Atom(90)],
            ],
        )
        .unwrap();
        NfRelation::from_flat(&flat)
    }

    /// Strict and streaming evaluation over the same relations.
    fn both(expr: &Expr) -> (NfRelation, NfRelation) {
        let (sc, cp) = (sc(), cp());
        let mut env = Env::new();
        env.insert("sc", sc.clone());
        env.insert("cp", cp.clone());
        let strict = expr.eval(&env).unwrap();
        let mut senv = StreamEnv::new();
        senv.insert_relation("sc", &sc);
        senv.insert_relation("cp", &cp);
        let streamed = eval_stream(expr, &senv).unwrap().into_relation().unwrap();
        (strict, streamed)
    }

    #[test]
    fn scan_is_zero_copy() {
        let rel = sc();
        let mut stream = RelStream::scan(&rel);
        let first = stream.next().unwrap();
        assert!(first.is_borrowed());
        assert_eq!(stream.count() + 1, rel.tuple_count());
    }

    #[test]
    fn select_keeps_borrow_when_nothing_shrinks() {
        let rel = sc();
        // Student ∈ {1, 2, 3} keeps every component intact.
        let all = ValueSet::new(vec![Atom(1), Atom(2), Atom(3)]).unwrap();
        let kept = filter_box(
            TupleView::Borrowed(&rel.tuples()[0]),
            &[(0usize, all.clone())],
        )
        .unwrap();
        assert!(kept.is_borrowed(), "no narrowing → zero-copy");
        // Student ∈ {1} must narrow multi-student tuples into owned ones.
        let narrow = ValueSet::singleton(Atom(1));
        for t in rel.tuples() {
            if let Some(out) = filter_box(TupleView::Borrowed(t), &[(0usize, narrow.clone())]) {
                assert!(out.component(0).is_singleton());
            }
        }
    }

    #[test]
    fn repeated_attr_conjuncts_fold_progressively() {
        // σ[Student∈{1}](σ[Student∈{1,2}]-style conjuncts on ONE select
        // node: the second constraint must intersect the already-narrowed
        // component, not the original (last-write-wins would wrongly keep
        // a tuple here).
        let expr = Expr::SelectBox {
            input: Box::new(Expr::rel("sc")),
            constraints: vec![
                ("Student".into(), vec![Atom(1)]),
                ("Student".into(), vec![Atom(2)]),
            ],
        };
        let (strict, streamed) = both(&expr);
        assert!(strict.is_empty(), "{{1}} ∩ {{2}} = ∅");
        assert_eq!(strict, streamed);
        // And a satisfiable pair narrows to the common value.
        let expr = Expr::SelectBox {
            input: Box::new(Expr::rel("sc")),
            constraints: vec![
                ("Student".into(), vec![Atom(1), Atom(2)]),
                ("Student".into(), vec![Atom(2), Atom(3)]),
            ],
        };
        let (strict, streamed) = both(&expr);
        assert_eq!(strict, streamed);
        for t in streamed.tuples() {
            assert!(t.component(0).as_slice() == [Atom(2)]);
        }
    }

    #[test]
    fn streaming_matches_strict_select_project() {
        let expr = Expr::Project {
            input: Box::new(Expr::SelectBox {
                input: Box::new(Expr::rel("sc")),
                constraints: vec![("Student".into(), vec![Atom(1)])],
            }),
            attrs: vec!["Course".into()],
        };
        let (strict, streamed) = both(&expr);
        assert_eq!(strict, streamed);
    }

    #[test]
    fn streaming_matches_strict_join() {
        let expr = Expr::Join(Box::new(Expr::rel("sc")), Box::new(Expr::rel("cp")));
        let (strict, streamed) = both(&expr);
        assert_eq!(strict, streamed);
        assert_eq!(strict.expand(), streamed.expand());
    }

    #[test]
    fn streaming_matches_strict_blocking_ops() {
        for expr in [
            Expr::Union(Box::new(Expr::rel("sc")), Box::new(Expr::rel("sc"))),
            Expr::Difference(Box::new(Expr::rel("sc")), Box::new(Expr::rel("sc"))),
            Expr::Intersect(Box::new(Expr::rel("sc")), Box::new(Expr::rel("sc"))),
            Expr::Nest {
                input: Box::new(Expr::rel("sc")),
                attr: "Student".into(),
            },
            Expr::Canonicalize {
                input: Box::new(Expr::rel("sc")),
                order: vec!["Student".into(), "Course".into()],
            },
        ] {
            let (strict, streamed) = both(&expr);
            assert_eq!(strict, streamed, "expr {expr}");
        }
    }

    #[test]
    fn streaming_unnest_splits_lazily() {
        let expr = Expr::Unnest {
            input: Box::new(Expr::rel("sc")),
            attr: "Student".into(),
        };
        let (strict, streamed) = both(&expr);
        assert_eq!(strict, streamed);
    }

    #[test]
    fn flat_count_streams_without_materializing() {
        let rel = sc();
        let mut env = StreamEnv::new();
        env.insert_relation("sc", &rel);
        let stream = eval_stream(&Expr::rel("sc"), &env).unwrap();
        assert_eq!(stream.flat_count(), rel.flat_count());
    }

    #[test]
    fn unknown_relation_and_attr_error() {
        let rel = sc();
        let mut env = StreamEnv::new();
        env.insert_relation("sc", &rel);
        assert!(eval_stream(&Expr::rel("ghost"), &env).is_err());
        let bad = Expr::SelectBox {
            input: Box::new(Expr::rel("sc")),
            constraints: vec![("Nope".into(), vec![Atom(1)])],
        };
        assert!(eval_stream(&bad, &env).is_err());
    }

    #[test]
    fn concat_streams_lazily_in_order() {
        let rel = sc();
        let (a, b) = (RelStream::scan(&rel), RelStream::scan(&rel));
        let cat = RelStream::concat(rel.schema().clone(), vec![a, b]);
        assert_eq!(cat.count(), 2 * rel.tuple_count());
        // Laziness: taking one tuple pulls one tuple.
        let (a, b) = (RelStream::scan(&rel), RelStream::scan(&rel));
        let mut cat = RelStream::concat(rel.schema().clone(), vec![a, b]);
        assert!(cat.next().unwrap().is_borrowed());
    }

    #[test]
    fn sharded_sources_evaluate_like_the_whole_relation() {
        // Split sc() into two disjoint parts (by first student value)
        // and register them as one sharded source.
        let rel = sc();
        let tuples = rel.tuples();
        let part = |keep: &dyn Fn(usize) -> bool| {
            NfRelation::from_disjoint_tuples(
                rel.schema().clone(),
                tuples
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| keep(*i))
                    .map(|(_, t)| t.clone())
                    .collect(),
            )
            .unwrap()
        };
        let (even, odd) = (part(&|i| i % 2 == 0), part(&|i| i % 2 == 1));
        let mut env = StreamEnv::new();
        env.insert_sharded_relations("sc", rel.schema().clone(), vec![&even, &odd]);
        // Scan covers both shards.
        let scanned = eval_stream(&Expr::rel("sc"), &env).unwrap();
        assert_eq!(scanned.flat_count(), rel.flat_count());
        // Selections and projections see the same R* as the unsharded
        // relation (NFR shapes may differ; expansions may not).
        let expr = Expr::Project {
            input: Box::new(Expr::SelectBox {
                input: Box::new(Expr::rel("sc")),
                constraints: vec![("Student".into(), vec![Atom(1)])],
            }),
            attrs: vec!["Course".into()],
        };
        let mut whole = Env::new();
        whole.insert("sc", rel.clone());
        let strict = expr.eval(&whole).unwrap();
        let streamed = eval_stream(&expr, &env).unwrap().into_relation().unwrap();
        assert_eq!(strict.expand(), streamed.expand());
    }

    /// Sort-then-truncate oracle for the top-k operator, sharing the
    /// exact key/tie rules.
    fn sort_truncate(rel: &NfRelation, order: &TupleOrder, k: usize) -> Vec<NfTuple> {
        let mut keyed: Vec<(Atom, usize, NfTuple)> = rel
            .tuples()
            .iter()
            .enumerate()
            .map(|(i, t)| (order.key_of(t), i, t.clone()))
            .collect();
        keyed.sort_by(|(ka, sa, _), (kb, sb, _)| order.cmp_keys(*ka, *kb).then(sa.cmp(sb)));
        keyed.into_iter().take(k).map(|(_, _, t)| t).collect()
    }

    #[test]
    fn sorted_is_a_stable_full_sort() {
        let rel = sc();
        for dir in [SortDir::Asc, SortDir::Desc] {
            for attr in 0..2 {
                let order = TupleOrder::by_atom_id(attr, dir);
                let got: Vec<NfTuple> = RelStream::scan(&rel)
                    .sorted(order.clone())
                    .map(TupleView::into_owned)
                    .collect();
                assert_eq!(
                    got,
                    sort_truncate(&rel, &order, usize::MAX),
                    "{attr} {dir:?}"
                );
                // Keys are monotone in emission order.
                for w in got.windows(2) {
                    assert_ne!(
                        order.cmp_keys(order.key_of(&w[0]), order.key_of(&w[1])),
                        std::cmp::Ordering::Greater
                    );
                }
            }
        }
    }

    #[test]
    fn top_k_equals_sort_then_truncate_and_stays_bounded() {
        let rel = sc();
        for dir in [SortDir::Asc, SortDir::Desc] {
            for attr in 0..2 {
                for k in 0..=rel.tuple_count() + 1 {
                    let order = TupleOrder::by_atom_id(attr, dir);
                    let stats = Arc::new(TopKStats::default());
                    let got: Vec<NfTuple> = RelStream::scan(&rel)
                        .top_k_with_stats(order.clone(), k, stats.clone())
                        .map(TupleView::into_owned)
                        .collect();
                    assert_eq!(got, sort_truncate(&rel, &order, k), "attr {attr} k {k}");
                    let peak = stats
                        .peak_retained
                        .load(std::sync::atomic::Ordering::Relaxed);
                    assert!(peak <= k, "heap bound: retained {peak} > k {k}");
                    let pulled = stats.pulled.load(std::sync::atomic::Ordering::Relaxed);
                    if k == 0 {
                        assert_eq!(pulled, 0, "k = 0 must not pull the input at all");
                    } else {
                        assert_eq!(pulled, rel.tuple_count(), "input pulled exactly once");
                    }
                }
            }
        }
    }

    #[test]
    fn top_k_ties_are_stable() {
        // Three tuples share Course=10 on attr 1 after a custom build:
        // the kept prefix must preserve stream order among equal keys.
        let schema = Schema::new("T", &["A", "B"]).unwrap();
        let tuples: Vec<NfTuple> = [(1u32, 10u32), (2, 10), (3, 10), (4, 5)]
            .iter()
            .map(|&(a, b)| NfTuple::from_flat(&[Atom(a), Atom(b)]))
            .collect();
        let rel = NfRelation::from_disjoint_tuples(schema, tuples).unwrap();
        let order = TupleOrder::by_atom_id(1, SortDir::Asc);
        let got: Vec<NfTuple> = RelStream::scan(&rel)
            .top_k(order.clone(), 3)
            .map(TupleView::into_owned)
            .collect();
        assert_eq!(got, sort_truncate(&rel, &order, 3));
        // (4,5) first (smallest B), then (1,10) and (2,10) in stream order.
        assert_eq!(got[0].component(0).as_slice(), [Atom(4)]);
        assert_eq!(got[1].component(0).as_slice(), [Atom(1)]);
        assert_eq!(got[2].component(0).as_slice(), [Atom(2)]);
    }

    #[test]
    fn tuple_order_keys_use_the_set_extreme() {
        // A set-valued component ranks by its min (ASC) / max (DESC).
        let t = NfTuple::new(vec![
            ValueSet::new(vec![Atom(5), Atom(2), Atom(9)]).unwrap(),
            ValueSet::singleton(Atom(1)),
        ]);
        assert_eq!(TupleOrder::by_atom_id(0, SortDir::Asc).key_of(&t), Atom(2));
        assert_eq!(TupleOrder::by_atom_id(0, SortDir::Desc).key_of(&t), Atom(9));
    }

    #[test]
    fn custom_comparator_reorders_atoms() {
        // Reverse-id comparator: ASC under it is DESC by id.
        let rel = sc();
        let cmp: AtomCmp = Arc::new(|a: Atom, b: Atom| b.id().cmp(&a.id()));
        let order = TupleOrder::with_cmp(0, SortDir::Asc, cmp);
        let got: Vec<NfTuple> = RelStream::scan(&rel)
            .sorted(order)
            .map(TupleView::into_owned)
            .collect();
        let by_id_desc: Vec<NfTuple> = RelStream::scan(&rel)
            .sorted(TupleOrder::by_atom_id(0, SortDir::Desc))
            .map(TupleView::into_owned)
            .collect();
        assert_eq!(got, by_id_desc);
    }

    #[test]
    fn lazy_iter_defers_construction_until_first_pull() {
        let built = std::cell::Cell::new(false);
        let mut it = lazy_iter(|| {
            built.set(true);
            Box::new(std::iter::empty())
        });
        assert!(!built.get(), "construction must not run the factory");
        assert!(it.next().is_none());
        assert!(built.get());
        // And an unpulled sorted/top-k stream does no work either.
        let rel = sc();
        let pulls = std::cell::Cell::new(0usize);
        let counted: TupleIter<'_> =
            Box::new(rel.tuples().iter().map(TupleView::Borrowed).inspect(|_| {
                pulls.set(pulls.get() + 1);
            }));
        let stream = RelStream::new(rel.schema().clone(), counted)
            .sorted(TupleOrder::by_atom_id(0, SortDir::Asc));
        drop(stream);
        assert_eq!(pulls.get(), 0, "dropped-before-pull sort reads nothing");
    }

    #[test]
    fn routed_sharded_sources_prune_non_matching_shards() {
        use nf2_core::relation::FlatRelation;
        use nf2_core::shard::{ShardRouter, ShardSpec};

        // Partition sc() on Course (P(n−1) under the identity order).
        let rel = sc();
        let order = NestOrder::identity(2);
        let router = ShardRouter::new(ShardSpec::hash(3).unwrap(), &order);
        let mut parts: Vec<Vec<Vec<Atom>>> = vec![Vec::new(); 3];
        for row in rel.expand().rows() {
            parts[router.route_row(row)].push(row.clone());
        }
        let target = Atom(10); // Course = 10
        let home = router.spec().route_value(target);
        // White-box probe: plant a decoy (99, 10) in a shard the value
        // does NOT route to. A pruned scan never reaches that shard, so
        // the decoy stays invisible — which is exactly the claim that
        // non-matching shards are skipped entirely, not filtered.
        let decoy_shard = (home + 1) % 3;
        parts[decoy_shard].push(vec![Atom(99), target]);
        let shards: Vec<NfRelation> = parts
            .into_iter()
            .map(|rows| {
                let flat = FlatRelation::from_rows(rel.schema().clone(), rows).unwrap();
                nf2_core::nest::canonical_of_flat(&flat, &order)
            })
            .collect();
        let expr = Expr::SelectBox {
            input: Box::new(Expr::rel("sc")),
            constraints: vec![("Course".into(), vec![target])],
        };

        // Routed source: the decoy's shard is pruned away.
        let mut env = StreamEnv::new();
        env.insert_sharded_relations_routed(
            "sc",
            rel.schema().clone(),
            shards.iter().collect(),
            router.clone(),
        );
        let pruned = eval_stream(&expr, &env).unwrap().into_relation().unwrap();
        assert!(
            !pruned.expand().rows().any(|r| r[0] == Atom(99)),
            "the decoy shard must never be scanned"
        );
        // On correctly-routed data (no decoy) the pruned result equals
        // the strict evaluation over the whole relation.
        let mut whole = Env::new();
        whole.insert("sc", rel.clone());
        assert_eq!(
            pruned.expand().into_rows(),
            expr.eval(&whole).unwrap().expand().into_rows()
        );

        // The plain (router-less) sharded source scans everything and
        // does see the decoy — the difference IS the pruning.
        let mut env = StreamEnv::new();
        env.insert_sharded_relations("sc", rel.schema().clone(), shards.iter().collect());
        let unpruned = eval_stream(&expr, &env).unwrap().into_relation().unwrap();
        assert!(unpruned.expand().rows().any(|r| r[0] == Atom(99)));

        // A full scan of the routed source still covers every shard.
        let mut env = StreamEnv::new();
        env.insert_sharded_relations_routed(
            "sc",
            rel.schema().clone(),
            shards.iter().collect(),
            router,
        );
        let all = eval_stream(&Expr::rel("sc"), &env).unwrap();
        assert_eq!(all.flat_count(), rel.flat_count() + 1);
    }

    /// Four tuples with ties on A so a second key matters.
    fn multi_key_rel() -> NfRelation {
        let schema = Schema::new("T", &["A", "B"]).unwrap();
        let tuples: Vec<NfTuple> = [(2u32, 7u32), (1, 9), (2, 3), (1, 4)]
            .iter()
            .map(|&(a, b)| NfTuple::from_flat(&[Atom(a), Atom(b)]))
            .collect();
        NfRelation::from_disjoint_tuples(schema, tuples).unwrap()
    }

    #[test]
    fn sorted_by_orders_lexicographically() {
        let rel = multi_key_rel();
        let orders = vec![
            TupleOrder::by_atom_id(0, SortDir::Asc),
            TupleOrder::by_atom_id(1, SortDir::Desc),
        ];
        let got: Vec<Vec<Atom>> = RelStream::scan(&rel)
            .sorted_by(orders)
            .map(|t| vec![t.component(0).as_slice()[0], t.component(1).as_slice()[0]])
            .collect();
        // A ascending, B descending within equal A.
        assert_eq!(
            got,
            vec![
                vec![Atom(1), Atom(9)],
                vec![Atom(1), Atom(4)],
                vec![Atom(2), Atom(7)],
                vec![Atom(2), Atom(3)],
            ]
        );
        // A single compound key degenerates to the plain sort.
        let single: Vec<NfTuple> = RelStream::scan(&rel)
            .sorted_by(vec![TupleOrder::by_atom_id(0, SortDir::Asc)])
            .map(TupleView::into_owned)
            .collect();
        let plain: Vec<NfTuple> = RelStream::scan(&rel)
            .sorted(TupleOrder::by_atom_id(0, SortDir::Asc))
            .map(TupleView::into_owned)
            .collect();
        assert_eq!(single, plain);
    }

    #[test]
    fn top_k_by_matches_sorted_by_prefix_and_stays_bounded() {
        let rel = multi_key_rel();
        let orders = vec![
            TupleOrder::by_atom_id(0, SortDir::Asc),
            TupleOrder::by_atom_id(1, SortDir::Asc),
        ];
        for k in 0..=rel.tuple_count() + 1 {
            let stats = Arc::new(TopKStats::default());
            let got: Vec<NfTuple> = RelStream::scan(&rel)
                .top_k_by_with_stats(orders.clone(), k, stats.clone())
                .map(TupleView::into_owned)
                .collect();
            let want: Vec<NfTuple> = RelStream::scan(&rel)
                .sorted_by(orders.clone())
                .map(TupleView::into_owned)
                .take(k)
                .collect();
            assert_eq!(got, want, "k {k}");
            let peak = stats
                .peak_retained
                .load(std::sync::atomic::Ordering::Relaxed);
            assert!(peak <= k, "heap bound: retained {peak} > k {k}");
        }
    }

    #[test]
    fn merge_sorted_equals_blocking_sort_of_concat() {
        // Split a relation into sorted runs, merge them, compare with
        // sorting the concatenation — the streaming/blocking agreement
        // that lets the query layer swap one for the other.
        let rel = sc();
        let order = TupleOrder::by_atom_id(1, SortDir::Asc);
        let sorted_all: Vec<NfTuple> = RelStream::scan(&rel)
            .sorted(order.clone())
            .map(TupleView::into_owned)
            .collect();
        // Parts = odd/even positions of the sorted list (each sorted).
        let split = |keep: &dyn Fn(usize) -> bool| {
            NfRelation::from_disjoint_tuples(
                rel.schema().clone(),
                sorted_all
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| keep(*i))
                    .map(|(_, t)| t.clone())
                    .collect(),
            )
            .unwrap()
        };
        let (even, odd) = (split(&|i| i % 2 == 0), split(&|i| i % 2 == 1));
        let merged: Vec<NfTuple> = RelStream::merge_sorted(
            rel.schema().clone(),
            vec![RelStream::scan(&even), RelStream::scan(&odd)],
            vec![order.clone()],
        )
        .map(TupleView::into_owned)
        .collect();
        assert_eq!(merged, sorted_all);
        // Keys are monotone in emission order.
        for w in merged.windows(2) {
            assert_ne!(
                order.cmp_keys(order.key_of(&w[0]), order.key_of(&w[1])),
                std::cmp::Ordering::Greater
            );
        }
        // Empty parts and a single part are handled.
        let one: Vec<NfTuple> = RelStream::merge_sorted(
            rel.schema().clone(),
            vec![RelStream::scan(&even)],
            vec![order.clone()],
        )
        .map(TupleView::into_owned)
        .collect();
        assert_eq!(one.len(), even.tuple_count());
        let with_empty: Vec<NfTuple> = RelStream::merge_sorted(
            rel.schema().clone(),
            vec![
                RelStream::empty(rel.schema().clone()),
                RelStream::scan(&even),
                RelStream::empty(rel.schema().clone()),
            ],
            vec![order],
        )
        .map(TupleView::into_owned)
        .collect();
        assert_eq!(with_empty.len(), even.tuple_count());
    }

    #[test]
    fn merge_sorted_breaks_ties_by_part_index() {
        // Two parts with the same single key: part 0's tuple must come
        // first, matching stable concat order.
        let schema = Schema::new("T", &["A", "B"]).unwrap();
        let mk = |a: u32, b: u32| {
            NfRelation::from_disjoint_tuples(
                schema.clone(),
                vec![NfTuple::from_flat(&[Atom(a), Atom(b)])],
            )
            .unwrap()
        };
        let (p0, p1) = (mk(1, 10), mk(2, 10));
        let order = TupleOrder::by_atom_id(1, SortDir::Asc);
        let got: Vec<NfTuple> = RelStream::merge_sorted(
            schema.clone(),
            vec![RelStream::scan(&p0), RelStream::scan(&p1)],
            vec![order],
        )
        .map(TupleView::into_owned)
        .collect();
        assert_eq!(got[0].component(0).as_slice(), [Atom(1)]);
        assert_eq!(got[1].component(0).as_slice(), [Atom(2)]);
    }

    #[test]
    fn merge_sorted_pulls_lazily() {
        // LIMIT-style consumption: taking 1 tuple from a merge of two
        // parts pulls one head per part plus one refill — never a drain.
        fn counted<'r>(r: &'r NfRelation, pulls: &'r std::cell::Cell<usize>) -> TupleIter<'r> {
            Box::new(
                r.tuples()
                    .iter()
                    .map(TupleView::Borrowed)
                    .inspect(move |_| {
                        pulls.set(pulls.get() + 1);
                    }),
            )
        }
        let rel = sc();
        let pulls = std::cell::Cell::new(0usize);
        let order = TupleOrder::by_atom_id(0, SortDir::Asc);
        let merged = RelStream::merge_sorted(
            rel.schema().clone(),
            vec![
                RelStream::new(rel.schema().clone(), counted(&rel, &pulls)),
                RelStream::new(rel.schema().clone(), counted(&rel, &pulls)),
            ],
            vec![order],
        );
        assert_eq!(pulls.get(), 0, "construction pulls nothing");
        let first = merged.take(1).count();
        assert_eq!(first, 1);
        assert!(
            pulls.get() <= 3,
            "one emission needs at most heads + refill pulls, got {}",
            pulls.get()
        );
    }

    #[test]
    fn custom_source_scans_are_used() {
        let rel = sc();
        let scans = std::cell::Cell::new(0usize);
        let mut env = StreamEnv::new();
        let (rel_ref, scans_ref) = (&rel, &scans);
        env.insert_source("sc", rel.schema().clone(), move || {
            scans_ref.set(scans_ref.get() + 1);
            Box::new(rel_ref.tuples().iter().map(TupleView::Borrowed))
        });
        let stream = eval_stream(&Expr::rel("sc"), &env).unwrap();
        assert_eq!(stream.count(), rel.tuple_count());
        assert_eq!(scans.get(), 1, "one Rel node → one scan");
    }
}
