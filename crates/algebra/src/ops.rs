//! NF² relational algebra operators.
//!
//! The paper builds on the Jaeschke–Schek algebra of NF² relations
//! (reference \[7\]): ordinary relational operators extended with NEST and
//! UNNEST. Every operator here is defined by its effect on the underlying
//! 1NF relation `R*` (the realization view), with fast tuple-level
//! ("rectangle") implementations used whenever they provably preserve the
//! partition invariant:
//!
//! * selection by per-attribute value sets intersects rectangles directly;
//! * projection uses tuple-level projection when the kept attributes are
//!   *fixed* (Def. 7) — fixedness is exactly pairwise disjointness of the
//!   projections — and falls back to expansion otherwise;
//! * natural join intersects shared components pairwise (disjointness of
//!   the inputs carries over to the output);
//! * union/difference/intersection work on `R*` and re-nest.

use std::collections::BTreeSet;
use std::sync::Arc;

use nf2_core::error::{NfError, Result};
use nf2_core::nest::canonical_of_flat;
use nf2_core::properties::is_fixed_on;
use nf2_core::relation::{FlatRelation, NfRelation};
use nf2_core::schema::{AttrId, NestOrder, Schema};
use nf2_core::tuple::{FlatTuple, NfTuple, ValueSet};
use nf2_core::value::Atom;

/// Re-exported relation-level NEST (Def. 4) for algebra users.
pub use nf2_core::nest::nest;
/// Re-exported relation-level UNNEST for algebra users.
pub use nf2_core::nest::unnest;

/// Selection by per-attribute membership: keeps the flat tuples whose
/// `attr` value lies in the given set, for every listed constraint.
///
/// Implemented by intersecting each rectangle with the constraint box —
/// the intersection of disjoint rectangles stays disjoint, so no
/// re-nesting is needed.
pub fn select_box(rel: &NfRelation, constraints: &[(AttrId, ValueSet)]) -> Result<NfRelation> {
    for (attr, _) in constraints {
        if *attr >= rel.arity() {
            return Err(NfError::AttrOutOfBounds {
                attr: *attr,
                arity: rel.arity(),
            });
        }
    }
    let mut tuples = Vec::new();
    'tuple: for t in rel.tuples() {
        let mut out = t.clone();
        for (attr, set) in constraints {
            match out.component(*attr).intersection(set) {
                Some(reduced) => out = out.with_component(*attr, reduced),
                None => continue 'tuple,
            }
        }
        tuples.push(out);
    }
    NfRelation::from_tuples(rel.schema().clone(), tuples)
}

/// Selection by an arbitrary predicate over flat tuples (realization-view
/// semantics): expands, filters, and re-nests with `order`.
pub fn select_where<F>(rel: &NfRelation, pred: F, order: &NestOrder) -> NfRelation
where
    F: Fn(&[Atom]) -> bool,
{
    let flat = rel.expand();
    let mut kept = FlatRelation::new(rel.schema().clone());
    for row in flat.rows() {
        if pred(row) {
            kept.insert(row.clone()).expect("row arity matches schema");
        }
    }
    canonical_of_flat(&kept, order)
}

/// Builds the schema of a projection.
fn project_schema(schema: &Schema, attrs: &[AttrId]) -> Result<Arc<Schema>> {
    let names = attrs
        .iter()
        .map(|&a| schema.attr_name(a))
        .collect::<Result<Vec<_>>>()?;
    Schema::new(format!("{}_proj", schema.name()), &names)
}

/// Projection onto `attrs` (duplicates eliminated on `R*`, as in 1NF
/// algebra).
///
/// When the relation is fixed on `attrs` (Def. 7) the projections of
/// distinct tuples are pairwise disjoint, so tuple-level projection is
/// sound and no expansion happens — the paper's fixedness notion doing
/// real optimizer work. Otherwise the projection is computed on `R*` and
/// re-nested with `order`.
pub fn project(rel: &NfRelation, attrs: &[AttrId], order: &NestOrder) -> Result<NfRelation> {
    let schema = project_schema(rel.schema(), attrs)?;
    if order.arity() != attrs.len() {
        return Err(NfError::InvalidNestOrder(format!(
            "projection keeps {} attributes but order covers {}",
            attrs.len(),
            order.arity()
        )));
    }
    if is_fixed_on(rel, attrs) {
        // Fast path: componentwise projection of each rectangle.
        let mut tuples: Vec<NfTuple> = rel
            .tuples()
            .iter()
            .map(|t| NfTuple::new(attrs.iter().map(|&a| t.component(a).clone()).collect()))
            .collect();
        tuples.sort();
        tuples.dedup();
        return NfRelation::from_tuples(schema, tuples);
    }
    let mut rows: BTreeSet<FlatTuple> = BTreeSet::new();
    for t in rel.tuples() {
        for row in t.expand() {
            rows.insert(attrs.iter().map(|&a| row[a]).collect());
        }
    }
    let flat = FlatRelation::from_rows(schema, rows)?;
    Ok(canonical_of_flat(&flat, order))
}

fn require_compatible(left: &NfRelation, right: &NfRelation) -> Result<()> {
    if !left.schema().compatible_with(right.schema()) {
        return Err(NfError::SchemaMismatch {
            left: left.schema().to_string(),
            right: right.schema().to_string(),
        });
    }
    Ok(())
}

/// Set union on `R*`, re-nested with `order`.
pub fn union(left: &NfRelation, right: &NfRelation, order: &NestOrder) -> Result<NfRelation> {
    require_compatible(left, right)?;
    let mut rows = left.expand().into_rows();
    rows.extend(right.expand().into_rows());
    let flat = FlatRelation::from_rows(left.schema().clone(), rows)?;
    Ok(canonical_of_flat(&flat, order))
}

/// Set difference `left* − right*`, re-nested with `order`.
pub fn difference(left: &NfRelation, right: &NfRelation, order: &NestOrder) -> Result<NfRelation> {
    require_compatible(left, right)?;
    let right_rows = right.expand().into_rows();
    let rows: BTreeSet<FlatTuple> = left
        .expand()
        .into_rows()
        .into_iter()
        .filter(|r| !right_rows.contains(r))
        .collect();
    let flat = FlatRelation::from_rows(left.schema().clone(), rows)?;
    Ok(canonical_of_flat(&flat, order))
}

/// Set intersection on `R*`.
///
/// Computed tuple-level: the intersection of two rectangles is a
/// rectangle, and intersections inherit disjointness from the left input.
pub fn intersect(left: &NfRelation, right: &NfRelation) -> Result<NfRelation> {
    require_compatible(left, right)?;
    let mut tuples = Vec::new();
    for l in left.tuples() {
        for r in right.tuples() {
            let mut comps = Vec::with_capacity(l.arity());
            let mut ok = true;
            for a in 0..l.arity() {
                match l.component(a).intersection(r.component(a)) {
                    Some(c) => comps.push(c),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                tuples.push(NfTuple::new(comps));
            }
        }
    }
    NfRelation::from_tuples(left.schema().clone(), tuples)
}

/// Natural join on shared attribute *names*.
///
/// Output schema: all of `left`'s attributes followed by `right`'s
/// non-shared attributes. Tuple-level: for each pair of rectangles,
/// intersect the shared components; if none is empty, emit the combined
/// rectangle. Disjointness of the inputs implies disjointness of the
/// output, so the result is a valid NFR without re-nesting.
pub fn natural_join(left: &NfRelation, right: &NfRelation) -> Result<NfRelation> {
    let lschema = left.schema();
    let rschema = right.schema();
    // Map of right attr -> left attr for shared names; list of right-only attrs.
    let mut shared: Vec<(AttrId, AttrId)> = Vec::new(); // (right, left)
    let mut right_only: Vec<AttrId> = Vec::new();
    for (r_id, r_name) in rschema.attr_names().enumerate() {
        match lschema.attr_id(r_name) {
            Ok(l_id) => shared.push((r_id, l_id)),
            Err(_) => right_only.push(r_id),
        }
    }
    let mut names: Vec<&str> = lschema.attr_names().collect();
    let right_names: Vec<&str> = rschema.attr_names().collect();
    for &r_id in &right_only {
        names.push(right_names[r_id]);
    }
    let schema = Schema::new(
        format!("{}_join_{}", lschema.name(), rschema.name()),
        &names,
    )?;

    let mut tuples = Vec::new();
    for l in left.tuples() {
        'pair: for r in right.tuples() {
            let mut comps: Vec<ValueSet> = l.components().to_vec();
            for &(r_id, l_id) in &shared {
                match comps[l_id].intersection(r.component(r_id)) {
                    Some(c) => comps[l_id] = c,
                    None => continue 'pair,
                }
            }
            for &r_id in &right_only {
                comps.push(r.component(r_id).clone());
            }
            tuples.push(NfTuple::new(comps));
        }
    }
    NfRelation::from_tuples(schema, tuples)
}

/// Cartesian product — natural join of relations with disjoint attribute
/// names.
pub fn product(left: &NfRelation, right: &NfRelation) -> Result<NfRelation> {
    for name in right.schema().attr_names() {
        if left.schema().attr_id(name).is_ok() {
            return Err(NfError::SchemaMismatch {
                left: left.schema().to_string(),
                right: format!("{} (shares attribute {name})", right.schema()),
            });
        }
    }
    natural_join(left, right)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema(name: &str, attrs: &[&str]) -> Arc<Schema> {
        Schema::new(name, attrs).unwrap()
    }

    fn vs(ids: &[u32]) -> ValueSet {
        ValueSet::new(ids.iter().map(|&i| Atom(i)).collect()).unwrap()
    }

    fn t(comps: &[&[u32]]) -> NfTuple {
        NfTuple::new(comps.iter().map(|c| vs(c)).collect())
    }

    fn rel(s: Arc<Schema>, tuples: Vec<NfTuple>) -> NfRelation {
        NfRelation::from_tuples(s, tuples).unwrap()
    }

    fn flat_of(rel: &NfRelation) -> BTreeSet<FlatTuple> {
        rel.expand().into_rows()
    }

    #[test]
    fn select_box_intersects_rectangles() {
        let r = rel(
            schema("R", &["A", "B"]),
            vec![t(&[&[1, 2], &[10, 11]]), t(&[&[3], &[10]])],
        );
        let sel = select_box(&r, &[(0, vs(&[2, 3]))]).unwrap();
        assert_eq!(
            flat_of(&sel),
            BTreeSet::from([
                vec![Atom(2), Atom(10)],
                vec![Atom(2), Atom(11)],
                vec![Atom(3), Atom(10)]
            ])
        );
    }

    #[test]
    fn select_box_drops_empty_tuples() {
        let r = rel(schema("R", &["A", "B"]), vec![t(&[&[1], &[10]])]);
        let sel = select_box(&r, &[(0, vs(&[9]))]).unwrap();
        assert!(sel.is_empty());
        assert!(select_box(&r, &[(7, vs(&[1]))]).is_err());
    }

    #[test]
    fn select_where_matches_flat_semantics() {
        let r = rel(schema("R", &["A", "B"]), vec![t(&[&[1, 2], &[10, 11]])]);
        let sel = select_where(
            &r,
            |row| row[0] == Atom(1) || row[1] == Atom(11),
            &NestOrder::identity(2),
        );
        assert_eq!(sel.expand().len(), 3);
        assert!(sel.validate().is_ok());
    }

    #[test]
    fn project_fixed_fast_path() {
        // Fixed on {B}: B-sets disjoint — tuple-level projection sound.
        let r = rel(
            schema("R", &["A", "B"]),
            vec![t(&[&[1, 2], &[10]]), t(&[&[2, 3], &[11]])],
        );
        assert!(is_fixed_on(&r, &[1]));
        let p = project(&r, &[1], &NestOrder::identity(1)).unwrap();
        assert_eq!(p.tuple_count(), 2);
        assert_eq!(
            flat_of(&p),
            BTreeSet::from([vec![Atom(10)], vec![Atom(11)]])
        );
    }

    #[test]
    fn project_unfixed_falls_back_to_expansion() {
        // Not fixed on {A}: a2 in both tuples; expansion dedup needed.
        let r = rel(
            schema("R", &["A", "B"]),
            vec![t(&[&[1, 2], &[10]]), t(&[&[2, 3], &[11]])],
        );
        assert!(!is_fixed_on(&r, &[0]));
        let p = project(&r, &[0], &NestOrder::identity(1)).unwrap();
        assert_eq!(
            flat_of(&p),
            BTreeSet::from([vec![Atom(1)], vec![Atom(2)], vec![Atom(3)]])
        );
        assert!(p.validate().is_ok());
    }

    #[test]
    fn project_reorders_attributes() {
        let r = rel(schema("R", &["A", "B"]), vec![t(&[&[1], &[10]])]);
        let p = project(&r, &[1, 0], &NestOrder::identity(2)).unwrap();
        assert_eq!(p.schema().attr_names().collect::<Vec<_>>(), vec!["B", "A"]);
        assert_eq!(flat_of(&p), BTreeSet::from([vec![Atom(10), Atom(1)]]));
    }

    #[test]
    fn union_difference_intersect_flat_semantics() {
        let s = schema("R", &["A", "B"]);
        let l = rel(s.clone(), vec![t(&[&[1, 2], &[10]])]);
        let r = rel(schema("S", &["A", "B"]), vec![t(&[&[2, 3], &[10]])]);
        let order = NestOrder::identity(2);
        let u = union(&l, &r, &order).unwrap();
        assert_eq!(u.expand().len(), 3);
        let d = difference(&l, &r, &order).unwrap();
        assert_eq!(flat_of(&d), BTreeSet::from([vec![Atom(1), Atom(10)]]));
        let i = intersect(&l, &r).unwrap();
        assert_eq!(flat_of(&i), BTreeSet::from([vec![Atom(2), Atom(10)]]));
    }

    #[test]
    fn set_ops_reject_incompatible_schemas() {
        let l = rel(schema("R", &["A", "B"]), vec![]);
        let r = rel(schema("S", &["A", "C"]), vec![]);
        let order = NestOrder::identity(2);
        assert!(union(&l, &r, &order).is_err());
        assert!(difference(&l, &r, &order).is_err());
        assert!(intersect(&l, &r).is_err());
    }

    #[test]
    fn natural_join_matches_flat_join() {
        // SC(Student, Course) ⋈ CP(Course, Prereq).
        let sc = rel(
            schema("SC", &["Student", "Course"]),
            vec![t(&[&[1], &[10, 11]]), t(&[&[2], &[11]])],
        );
        let cp = rel(
            schema("CP", &["Course", "Prereq"]),
            vec![t(&[&[10], &[90]]), t(&[&[11], &[91, 92]])],
        );
        let j = natural_join(&sc, &cp).unwrap();
        assert_eq!(
            j.schema().attr_names().collect::<Vec<_>>(),
            vec!["Student", "Course", "Prereq"]
        );
        // Flat check: (1,10,90), (1,11,91), (1,11,92), (2,11,91), (2,11,92).
        assert_eq!(j.expand().len(), 5);
        assert!(j.validate().is_ok());
    }

    #[test]
    fn join_with_no_shared_attrs_is_product() {
        let l = rel(schema("L", &["A"]), vec![t(&[&[1, 2]])]);
        let r = rel(schema("R", &["B"]), vec![t(&[&[10]]), t(&[&[11]])]);
        let p = product(&l, &r).unwrap();
        assert_eq!(p.expand().len(), 4);
    }

    #[test]
    fn product_rejects_shared_names() {
        let l = rel(schema("L", &["A"]), vec![]);
        let r = rel(schema("R", &["A"]), vec![]);
        assert!(product(&l, &r).is_err());
    }

    #[test]
    fn join_disjointness_carries_to_output() {
        // Two left rectangles sharing course sets but disjoint students.
        let sc = rel(
            schema("SC", &["S", "C"]),
            vec![t(&[&[1], &[10, 11]]), t(&[&[2], &[10, 11]])],
        );
        let cd = rel(schema("CD", &["C", "D"]), vec![t(&[&[10, 11], &[5]])]);
        let j = natural_join(&sc, &cd).unwrap();
        assert!(j.validate().is_ok(), "output tuples must stay disjoint");
        assert_eq!(j.tuple_count(), 2);
    }
}
