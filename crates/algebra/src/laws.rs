//! Executable algebraic laws of the NF² operators.
//!
//! The paper builds on the Jaeschke–Schek algebra (reference \[7\]), whose
//! central results are *interaction laws* between NEST, UNNEST and the
//! classical operators. This module states each law as an executable
//! checker so that the test suite (and the `repro laws` experiment) can
//! witness them on arbitrary relations rather than trusting the prose.
//!
//! Two strengths of equality appear, and keeping them apart is the whole
//! point of §2's "realization view":
//!
//! * **structural** equality — same NF² tuples (`NfRelation::eq`);
//! * **realization** equality — same underlying 1NF relation `R*`
//!   (Theorem 1 makes this well-defined).
//!
//! Structural laws license plan rewrites that preserve the user-visible
//! grouping; realization laws license rewrites whose output is
//! re-canonicalized afterwards (see [`crate::optimize`](mod@crate::optimize)).
//!
//! | Law | Statement | Strength |
//! |-----|-----------|----------|
//! | L1 | `μ_E(ν_E(R)) = μ_E(R)` (so `= R` when `R` is E-flat) | structural |
//! | L2 | `ν_E(μ_E(R)) = ν_E(R)` (so `= R` when `R` is E-nested) | structural |
//! | L3 | `μ_A(μ_B(R)) = μ_B(μ_A(R))` | structural |
//! | L4 | `ν_A(ν_B(R)) ≠ ν_B(ν_A(R))` in general | counterexample |
//! | L5 | `ν_E(ν_E(R)) = ν_E(R)` | structural |
//! | L6 | `σ[E∈S](ν_E(R)) = ν_E(σ[E∈S](R))` — selection on the nest attribute | structural |
//! | L7 | `σ[F∈S](ν_E(R)) ≈ ν_E(σ[F∈S](R))` for `F ≠ E` | realization only |
//! | L8 | `(L ⋈ R)* = L* ⋈ R*` — join is computed on rectangles but means the flat join | realization (soundness) |
//! | L9 | `σ` distributes over `∪, −, ∩` | realization |
//! | L10 | `ν_P(R)` is irreducible (Def. 5 claim) | structural property |

use nf2_core::irreducible::is_irreducible;
use nf2_core::nest::{canonicalize, nest, unnest};
use nf2_core::relation::{FlatRelation, NfRelation};
use nf2_core::schema::{AttrId, NestOrder};
use nf2_core::tuple::{NfTuple, ValueSet};

use crate::ops;

/// Outcome of checking one law on one relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LawOutcome {
    /// The law held on this input.
    Holds,
    /// The law failed; the two sides that differed are carried for
    /// diagnosis.
    Violated {
        /// Result of evaluating the left-hand side.
        left: Box<NfRelation>,
        /// Result of evaluating the right-hand side.
        right: Box<NfRelation>,
    },
}

impl LawOutcome {
    fn of_structural(left: NfRelation, right: NfRelation) -> LawOutcome {
        if left == right {
            LawOutcome::Holds
        } else {
            LawOutcome::Violated {
                left: Box::new(left),
                right: Box::new(right),
            }
        }
    }

    fn of_realization(left: NfRelation, right: NfRelation) -> LawOutcome {
        if left.expand() == right.expand() {
            LawOutcome::Holds
        } else {
            LawOutcome::Violated {
                left: Box::new(left),
                right: Box::new(right),
            }
        }
    }

    /// Whether the law held.
    pub fn holds(&self) -> bool {
        matches!(self, LawOutcome::Holds)
    }
}

/// L1 — `μ_E(ν_E(R)) = μ_E(R)`.
///
/// Grouping by the non-`E` components and then splitting `E` into
/// singletons is the same as splitting directly: within a group the
/// `E`-sets are pairwise disjoint (the partition invariant forces it), so
/// unioning before splitting changes nothing.
pub fn law_unnest_nest(rel: &NfRelation, attr: AttrId) -> LawOutcome {
    LawOutcome::of_structural(unnest(&nest(rel, attr), attr), unnest(rel, attr))
}

/// L2 — `ν_E(μ_E(R)) = ν_E(R)`.
///
/// Splitting `E` into singletons and regrouping reaches the same `ν_E`
/// fixpoint as nesting directly. Consequently `ν_E(μ_E(R)) = R` exactly
/// when `R` is already `E`-nested — the Jaeschke–Schek observation that
/// NEST is *not* a left inverse of UNNEST in general.
pub fn law_nest_unnest(rel: &NfRelation, attr: AttrId) -> LawOutcome {
    LawOutcome::of_structural(nest(&unnest(rel, attr), attr), nest(rel, attr))
}

/// L3 — `μ_A(μ_B(R)) = μ_B(μ_A(R))`.
///
/// Unnests commute: both sides replace every rectangle by its grid of
/// `A×B`-singletons.
pub fn law_unnest_commutes(rel: &NfRelation, a: AttrId, b: AttrId) -> LawOutcome {
    LawOutcome::of_structural(unnest(&unnest(rel, b), a), unnest(&unnest(rel, a), b))
}

/// L4 — nests do **not** commute in general: `ν_A(ν_B(R))` and
/// `ν_B(ν_A(R))` are the two canonical forms of a 2-attribute relation,
/// and Example 1 already separates them. Returns whether the two orders
/// agree *on this input* (so tests can both confirm the counterexample
/// and measure how often real workloads are order-sensitive).
pub fn nests_commute(rel: &NfRelation, a: AttrId, b: AttrId) -> bool {
    nest(&nest(rel, b), a) == nest(&nest(rel, a), b)
}

/// The paper's Example 1 instance — the canonical witness that nest order
/// matters (`ν_A∘ν_B ≠ ν_B∘ν_A`).
pub fn example1_counterexample() -> NfRelation {
    let schema = nf2_core::schema::Schema::new("Ex1", &["A", "B"]).expect("valid schema");
    let rows = [[1u32, 11], [2, 11], [2, 12], [3, 12]];
    let flat = FlatRelation::from_rows(
        schema,
        rows.iter()
            .map(|r| r.iter().map(|&v| nf2_core::value::Atom(v)).collect()),
    )
    .expect("valid rows");
    NfRelation::from_flat(&flat)
}

/// L5 — `ν_E(ν_E(R)) = ν_E(R)` (nest is idempotent: it is a fixpoint
/// operator by Def. 4).
pub fn law_nest_idempotent(rel: &NfRelation, attr: AttrId) -> LawOutcome {
    let once = nest(rel, attr);
    let twice = nest(&once, attr);
    LawOutcome::of_structural(twice, once)
}

/// L6 — `σ[E∈S](ν_E(R)) = ν_E(σ[E∈S](R))`: box selection **on the nest
/// attribute** commutes with nesting *structurally*.
///
/// Nesting groups by the non-`E` components, which the selection does not
/// touch; and intersecting each `E`-set with `S` before or after taking
/// the group union is the same because `∩` distributes over `∪`.
pub fn law_select_nest_same_attr(rel: &NfRelation, attr: AttrId, allow: &ValueSet) -> LawOutcome {
    let constraint = [(attr, allow.clone())];
    let lhs = match ops::select_box(&nest(rel, attr), &constraint) {
        Ok(r) => r,
        Err(_) => return LawOutcome::Holds, // out-of-bounds attr: vacuous
    };
    let rhs = nest(
        &ops::select_box(rel, &constraint).expect("attr checked above"),
        attr,
    );
    LawOutcome::of_structural(lhs, rhs)
}

/// L7 — `σ[F∈S](ν_E(R)) ≈ ν_E(σ[F∈S](R))` for `F ≠ E`: selection on a
/// *grouping* attribute commutes with nesting only up to realization
/// view. (Removing values from `F`-components can make previously
/// distinct group keys equal, so the right-hand side may be *more*
/// composed.)
pub fn law_select_nest_other_attr(
    rel: &NfRelation,
    nest_attr: AttrId,
    sel_attr: AttrId,
    allow: &ValueSet,
) -> LawOutcome {
    debug_assert_ne!(nest_attr, sel_attr);
    let constraint = [(sel_attr, allow.clone())];
    let lhs = match ops::select_box(&nest(rel, nest_attr), &constraint) {
        Ok(r) => r,
        Err(_) => return LawOutcome::Holds,
    };
    let rhs = nest(
        &ops::select_box(rel, &constraint).expect("attr checked above"),
        nest_attr,
    );
    LawOutcome::of_realization(lhs, rhs)
}

/// A structural counterexample to L7: selecting on `B` *before* nesting
/// `A` merges two groups that were distinct only through a filtered-out
/// `B` value. Returns `(relation, nest_attr, sel_attr, allow)` with
/// `σ(ν(R)) ≠ ν(σ(R))` structurally.
pub fn select_nest_structural_counterexample() -> (NfRelation, AttrId, AttrId, ValueSet) {
    use nf2_core::value::Atom;
    let schema = nf2_core::schema::Schema::new("L7", &["A", "B"]).expect("valid schema");
    // R = { [A(1) B(10)], [A(2) B(10, 11)] }. Nest A groups by B-set:
    // keys {10} and {10,11} differ, so ν_A(R) = R. Selecting B ∈ {10}
    // afterwards keeps two tuples [A(1) B(10)], [A(2) B(10)].
    // Selecting first makes the keys equal, so ν_A merges: [A(1,2) B(10)].
    let tuples = vec![
        NfTuple::new(vec![
            ValueSet::singleton(Atom(1)),
            ValueSet::singleton(Atom(10)),
        ]),
        NfTuple::new(vec![
            ValueSet::singleton(Atom(2)),
            ValueSet::new(vec![Atom(10), Atom(11)]).expect("literal value list is non-empty"),
        ]),
    ];
    let rel = NfRelation::from_tuples(schema, tuples).expect("disjoint by construction");
    (rel, 0, 1, ValueSet::singleton(Atom(10)))
}

/// L8 — join soundness: the realization view of the rectangle-level
/// [`ops::natural_join`] equals the classical 1NF natural join of the
/// realization views.
pub fn law_join_realization(left: &NfRelation, right: &NfRelation) -> LawOutcome {
    let joined = match ops::natural_join(left, right) {
        Ok(j) => j,
        Err(_) => return LawOutcome::Holds, // incompatible schemas: vacuous
    };
    // Flat-side oracle: nested-loop join on the expansions.
    let lschema = left.schema();
    let rschema = right.schema();
    let mut shared: Vec<(AttrId, AttrId)> = Vec::new();
    let mut right_only: Vec<AttrId> = Vec::new();
    for (r_id, r_name) in rschema.attr_names().enumerate() {
        match lschema.attr_id(r_name) {
            Ok(l_id) => shared.push((r_id, l_id)),
            Err(_) => right_only.push(r_id),
        }
    }
    let mut rows = std::collections::BTreeSet::new();
    for l in left.expand().rows() {
        for r in right.expand().rows() {
            if shared.iter().all(|&(r_id, l_id)| l[l_id] == r[r_id]) {
                let mut row = l.clone();
                for &r_id in &right_only {
                    row.push(r[r_id]);
                }
                rows.insert(row);
            }
        }
    }
    let oracle_rows: std::collections::BTreeSet<_> = rows;
    let joined_rows: std::collections::BTreeSet<_> = joined.expand().into_rows();
    if joined_rows == oracle_rows {
        LawOutcome::Holds
    } else {
        // Build a relation from the oracle for the report.
        let oracle = NfRelation::from_flat(
            &FlatRelation::from_rows(joined.schema().clone(), oracle_rows).expect("oracle rows"),
        );
        LawOutcome::Violated {
            left: Box::new(joined),
            right: Box::new(oracle),
        }
    }
}

/// L9 — box selection distributes over the set operators at realization
/// view: `σ(L ∪ R) ≈ σ(L) ∪ σ(R)`, and likewise for `−` and `∩`.
pub fn law_select_distributes(
    left: &NfRelation,
    right: &NfRelation,
    attr: AttrId,
    allow: &ValueSet,
) -> LawOutcome {
    let order = NestOrder::identity(left.arity());
    let constraint = [(attr, allow.clone())];
    let all = [
        (
            ops::union(left, right, &order).and_then(|u| ops::select_box(&u, &constraint)),
            ops::select_box(left, &constraint).and_then(|l| {
                ops::select_box(right, &constraint).and_then(|r| ops::union(&l, &r, &order))
            }),
        ),
        (
            ops::difference(left, right, &order).and_then(|u| ops::select_box(&u, &constraint)),
            ops::select_box(left, &constraint).and_then(|l| {
                ops::select_box(right, &constraint).and_then(|r| ops::difference(&l, &r, &order))
            }),
        ),
        (
            ops::intersect(left, right).and_then(|u| ops::select_box(&u, &constraint)),
            ops::select_box(left, &constraint).and_then(|l| {
                ops::select_box(right, &constraint).and_then(|r| ops::intersect(&l, &r))
            }),
        ),
    ];
    for (lhs, rhs) in all {
        match (lhs, rhs) {
            (Ok(l), Ok(r)) => {
                if l.expand() != r.expand() {
                    return LawOutcome::Violated {
                        left: Box::new(l),
                        right: Box::new(r),
                    };
                }
            }
            (Err(_), Err(_)) => continue, // both reject (schema mismatch): vacuous
            _ => unreachable!("sides agree on schema validity"),
        }
    }
    LawOutcome::Holds
}

/// L10 — every canonical form is irreducible (the claim under Def. 5:
/// "it is easy to show that ν_P(R) is irreducible").
pub fn law_canonical_is_irreducible(rel: &NfRelation, order: &NestOrder) -> bool {
    is_irreducible(&canonicalize(rel, order))
}

/// Runs every universally-quantified law (L1–L3, L5–L10) on one relation,
/// returning the labels of any that failed. Used by property tests and
/// the `repro laws` experiment; an empty vector means all laws held.
pub fn check_all(rel: &NfRelation) -> Vec<&'static str> {
    let mut failures = Vec::new();
    let arity = rel.arity();
    // A selection set that actually bites: the first two values seen on
    // each attribute.
    let sample_set = |attr: AttrId| -> Option<ValueSet> {
        let mut vals = Vec::new();
        for t in rel.tuples() {
            for v in t.component(attr).iter() {
                vals.push(v);
                if vals.len() == 2 {
                    return ValueSet::new(vals);
                }
            }
        }
        ValueSet::new(vals)
    };
    for a in 0..arity {
        if !law_unnest_nest(rel, a).holds() {
            failures.push("L1 unnest∘nest");
        }
        if !law_nest_unnest(rel, a).holds() {
            failures.push("L2 nest∘unnest");
        }
        if !law_nest_idempotent(rel, a).holds() {
            failures.push("L5 nest idempotent");
        }
        if let Some(set) = sample_set(a) {
            if !law_select_nest_same_attr(rel, a, &set).holds() {
                failures.push("L6 select/nest same attr");
            }
        }
        for b in 0..arity {
            if a == b {
                continue;
            }
            if !law_unnest_commutes(rel, a, b).holds() {
                failures.push("L3 unnest commutes");
            }
            if let Some(set) = sample_set(b) {
                if !law_select_nest_other_attr(rel, a, b, &set).holds() {
                    failures.push("L7 select/nest other attr (realization)");
                }
            }
        }
    }
    if !law_join_realization(rel, rel).holds() {
        failures.push("L8 join realization (self-join)");
    }
    if let Some(set) = sample_set(0) {
        if !law_select_distributes(rel, rel, 0, &set).holds() {
            failures.push("L9 select distributes");
        }
    }
    for order in NestOrder::all(arity.min(3)) {
        if order.arity() == arity && !law_canonical_is_irreducible(rel, &order) {
            failures.push("L10 canonical irreducible");
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf2_core::schema::Schema;
    use nf2_core::value::Atom;
    use std::sync::Arc;

    fn schema(attrs: &[&str]) -> Arc<Schema> {
        Schema::new("R", attrs).unwrap()
    }

    fn vs(ids: &[u32]) -> ValueSet {
        ValueSet::new(ids.iter().map(|&i| Atom(i)).collect()).unwrap()
    }

    fn t(comps: &[&[u32]]) -> NfTuple {
        NfTuple::new(comps.iter().map(|c| vs(c)).collect())
    }

    fn rel(attrs: &[&str], tuples: Vec<NfTuple>) -> NfRelation {
        NfRelation::from_tuples(schema(attrs), tuples).unwrap()
    }

    /// A small mixed relation used across the tests: some nesting already
    /// present, overlapping values across tuples.
    fn mixed() -> NfRelation {
        rel(
            &["A", "B", "C"],
            vec![
                t(&[&[1, 2], &[10], &[100]]),
                t(&[&[3], &[10, 11], &[100]]),
                t(&[&[1], &[12], &[101]]),
            ],
        )
    }

    #[test]
    fn l1_unnest_nest_equals_unnest() {
        for a in 0..3 {
            assert!(law_unnest_nest(&mixed(), a).holds(), "attr {a}");
        }
    }

    #[test]
    fn l1_specializes_to_identity_on_flat_component() {
        // When every E-component is a singleton, μ_E(ν_E(R)) = R.
        let r = rel(&["A", "B"], vec![t(&[&[1], &[10]]), t(&[&[2], &[10]])]);
        let back = unnest(&nest(&r, 0), 0);
        assert_eq!(back, r);
    }

    #[test]
    fn l2_nest_unnest_equals_nest() {
        for a in 0..3 {
            assert!(law_nest_unnest(&mixed(), a).holds(), "attr {a}");
        }
    }

    #[test]
    fn l2_nest_is_not_left_inverse_of_unnest() {
        // R not nested over A: ν_A(μ_A(R)) ≠ R.
        let r = rel(&["A", "B"], vec![t(&[&[1], &[10]]), t(&[&[2], &[10]])]);
        let round = nest(&unnest(&r, 0), 0);
        assert_ne!(round, r);
        assert_eq!(round.expand(), r.expand(), "realization view survives");
    }

    #[test]
    fn l3_unnests_commute() {
        assert!(law_unnest_commutes(&mixed(), 0, 1).holds());
        assert!(law_unnest_commutes(&mixed(), 1, 2).holds());
        assert!(law_unnest_commutes(&mixed(), 0, 2).holds());
    }

    #[test]
    fn l4_example1_separates_nest_orders() {
        let r = example1_counterexample();
        assert!(!nests_commute(&r, 0, 1), "Example 1 is the counterexample");
    }

    #[test]
    fn l4_nests_commute_on_product_data() {
        // A full product has an MVD both ways; nest order is irrelevant.
        let r = rel(
            &["A", "B"],
            vec![
                t(&[&[1], &[10]]),
                t(&[&[1], &[11]]),
                t(&[&[2], &[10]]),
                t(&[&[2], &[11]]),
            ],
        );
        assert!(nests_commute(&r, 0, 1));
    }

    #[test]
    fn l5_nest_idempotent() {
        for a in 0..3 {
            assert!(law_nest_idempotent(&mixed(), a).holds());
        }
    }

    #[test]
    fn l6_select_on_nest_attr_commutes_structurally() {
        assert!(law_select_nest_same_attr(&mixed(), 0, &vs(&[1, 3])).holds());
        assert!(law_select_nest_same_attr(&mixed(), 1, &vs(&[10])).holds());
        // Selection that empties the relation.
        assert!(law_select_nest_same_attr(&mixed(), 0, &vs(&[99])).holds());
    }

    #[test]
    fn l7_select_on_other_attr_holds_at_realization() {
        assert!(law_select_nest_other_attr(&mixed(), 0, 1, &vs(&[10])).holds());
        assert!(law_select_nest_other_attr(&mixed(), 2, 0, &vs(&[1])).holds());
    }

    #[test]
    fn l7_structural_counterexample_is_real() {
        let (r, nest_attr, sel_attr, allow) = select_nest_structural_counterexample();
        let constraint = [(sel_attr, allow)];
        let lhs = ops::select_box(&nest(&r, nest_attr), &constraint).unwrap();
        let rhs = nest(&ops::select_box(&r, &constraint).unwrap(), nest_attr);
        assert_ne!(lhs, rhs, "structurally different");
        assert_eq!(lhs.expand(), rhs.expand(), "same realization view");
        assert_eq!(lhs.tuple_count(), 2);
        assert_eq!(rhs.tuple_count(), 1, "selecting first enables a merge");
    }

    #[test]
    fn l8_join_matches_flat_oracle() {
        let sc = rel(&["S", "C"], vec![t(&[&[1], &[10, 11]]), t(&[&[2], &[11]])]);
        let cp = NfRelation::from_tuples(
            Schema::new("CP", &["C", "P"]).unwrap(),
            vec![t(&[&[10], &[90]]), t(&[&[11], &[91, 92]])],
        )
        .unwrap();
        assert!(law_join_realization(&sc, &cp).holds());
    }

    #[test]
    fn l9_select_distributes_over_set_ops() {
        let l = rel(&["A", "B"], vec![t(&[&[1, 2], &[10]])]);
        let r = rel(&["A", "B"], vec![t(&[&[2, 3], &[10]])]);
        assert!(law_select_distributes(&l, &r, 0, &vs(&[2])).holds());
        assert!(law_select_distributes(&l, &r, 1, &vs(&[10])).holds());
    }

    #[test]
    fn l10_canonical_forms_are_irreducible() {
        let r = mixed();
        for order in NestOrder::all(3) {
            assert!(law_canonical_is_irreducible(&r, &order), "order {order}");
        }
    }

    #[test]
    fn check_all_passes_on_mixed_relation() {
        assert!(check_all(&mixed()).is_empty());
    }

    #[test]
    fn check_all_passes_on_example1() {
        assert!(check_all(&example1_counterexample()).is_empty());
    }

    #[test]
    fn check_all_passes_on_empty_relation() {
        let r = rel(&["A", "B"], vec![]);
        assert!(check_all(&r).is_empty());
    }

    #[test]
    fn law_outcome_reports_sides() {
        let l = rel(&["A"], vec![t(&[&[1]])]);
        let r = rel(&["A"], vec![t(&[&[2]])]);
        let out = LawOutcome::of_structural(l.clone(), r.clone());
        match out {
            LawOutcome::Violated { left, right } => {
                assert_eq!(*left, l);
                assert_eq!(*right, r);
            }
            LawOutcome::Holds => panic!("distinct relations must violate"),
        }
        assert!(LawOutcome::of_structural(l.clone(), l).holds());
    }
}
