//! Static typing and soundness checks for [`Expr`] plans.
//!
//! Every identity in the paper's §3 is conditioned on *structural* side
//! conditions — ν/μ are only meaningful on the §2 structures, selection
//! boxes must name attributes of their input, set operators require
//! compatible schemas, and the canonical form `ν_P` fixes a routing
//! attribute `P(n−1)`. The optimizer assumes those conditions hold; this
//! module makes them checkable *before* evaluation.
//!
//! [`infer`] walks an expression bottom-up and assigns every node a
//! [`RelType`]: the output attribute list, a conservative
//! [`NestLevel`] per attribute (is the component provably a singleton,
//! or possibly a set?), and the routing attribute when the grouping
//! discipline is known. Level inference is deliberately conservative —
//! `Set` means "may hold more than one value", never "must" — so a
//! well-typed verdict is sound while ill-typed plans are always real
//! errors (zero false positives on legal plans).
//!
//! [`check_rewrite`] is the **rewrite-soundness gate** built on top: a
//! rule application `before → after` is accepted only if `after`
//! type-checks whenever `before` does, with an identical output
//! attribute list (and, for structural-mode rules, identical nest
//! levels). The optimizer runs the gate on every rule application in
//! debug builds and under `NF2_VERIFY=1` in release builds; violations
//! name the offending rule and subtree.

use std::collections::HashMap;
use std::fmt;

use crate::expr::{Env, Expr};
use crate::optimize::{RewriteMode, SchemaCatalog};

/// How deeply an attribute's component may be nested in the output.
///
/// The paper's §2 structures have exactly two levels per attribute:
/// an atomic value or a set of atomic values. `Atomic` is a *guarantee*
/// (every component holds exactly one value); `Set` is the conservative
/// default (the component may hold several).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NestLevel {
    /// Every component of this attribute is a singleton (post-μ).
    Atomic,
    /// Components may hold several values (base canonical form, post-ν).
    Set,
}

impl NestLevel {
    /// The level after intersecting components from two inputs: a
    /// singleton intersected with anything stays at most a singleton.
    fn meet(self, other: NestLevel) -> NestLevel {
        if self == NestLevel::Atomic || other == NestLevel::Atomic {
            NestLevel::Atomic
        } else {
            NestLevel::Set
        }
    }
}

/// One attribute of an inferred output schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrType {
    /// Attribute name.
    pub name: String,
    /// Inferred nest level.
    pub level: NestLevel,
}

/// The inferred type of an expression: its output attributes with nest
/// levels, plus the routing attribute `P(n−1)` when the grouping
/// discipline is statically known.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelType {
    /// Output attributes in order.
    pub attrs: Vec<AttrType>,
    /// Index of the routing attribute (the last-applied nest attribute
    /// of a canonical form), when known.
    pub routing: Option<usize>,
}

impl RelType {
    /// A type where every attribute is set-valued (the canonical-form
    /// default) and the routing attribute is unknown.
    pub fn all_set<S: AsRef<str>>(names: &[S]) -> Self {
        RelType {
            attrs: names
                .iter()
                .map(|n| AttrType {
                    name: n.as_ref().to_owned(),
                    level: NestLevel::Set,
                })
                .collect(),
            routing: None,
        }
    }

    /// Number of output attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Output attribute names in order.
    pub fn names(&self) -> Vec<&str> {
        self.attrs.iter().map(|a| a.name.as_str()).collect()
    }

    /// Resolves an attribute name to its position.
    pub fn attr_index(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.name == name)
    }

    fn levels(&self) -> Vec<NestLevel> {
        self.attrs.iter().map(|a| a.level).collect()
    }
}

impl fmt::Display for RelType {
    /// Renders as `(Student, {Course})`: set-valued attributes braced,
    /// with the routing attribute (if known) appended.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match a.level {
                NestLevel::Atomic => write!(f, "{}", a.name)?,
                NestLevel::Set => write!(f, "{{{}}}", a.name)?,
            }
        }
        write!(f, ")")?;
        if let Some(r) = self.routing {
            if let Some(a) = self.attrs.get(r) {
                write!(f, " routed by {}", a.name)?;
            }
        }
        Ok(())
    }
}

/// Base-relation types for the checker, keyed by relation name.
#[derive(Debug, Clone, Default)]
pub struct CheckCatalog {
    rels: HashMap<String, RelType>,
}

impl CheckCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a base relation with an explicit type.
    pub fn insert(&mut self, name: impl Into<String>, ty: RelType) {
        self.rels.insert(name.into(), ty);
    }

    /// Registers a base relation as an all-set canonical form with an
    /// optional routing attribute index.
    pub fn insert_base<S: AsRef<str>>(
        &mut self,
        name: impl Into<String>,
        attrs: &[S],
        routing: Option<usize>,
    ) {
        let mut ty = RelType::all_set(attrs);
        ty.routing = routing;
        self.insert(name, ty);
    }

    /// Builds a catalog from the optimizer's name-only [`SchemaCatalog`]:
    /// every attribute is conservatively set-valued, routing unknown.
    pub fn from_schema_catalog(catalog: &SchemaCatalog) -> Self {
        let mut cat = Self::new();
        for (name, attrs) in catalog.relations() {
            cat.insert_base(name, attrs, None);
        }
        cat
    }

    /// Builds a catalog from an evaluation environment.
    pub fn from_env(env: &Env) -> Self {
        let mut cat = Self::new();
        for name in env.names() {
            if let Ok(rel) = env.get(name) {
                let attrs: Vec<&str> = rel.schema().attr_names().collect();
                cat.insert_base(name, &attrs, None);
            }
        }
        cat
    }

    fn get(&self, name: &str) -> Option<&RelType> {
        self.rels.get(name)
    }
}

/// A static typing error, carrying the offending subtree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckError {
    /// What was wrong.
    pub reason: String,
    /// The subtree (rendered algebra notation) where it was detected.
    pub node: String,
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} in subtree {}", self.reason, self.node)
    }
}

impl std::error::Error for CheckError {}

fn err(node: &Expr, reason: impl Into<String>) -> CheckError {
    CheckError {
        reason: reason.into(),
        node: node.to_string(),
    }
}

/// The result of a full [`check`] pass.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Inferred type of the root expression.
    pub ty: RelType,
    /// Number of operator nodes inspected.
    pub nodes: usize,
    /// Non-fatal observations (e.g. a vacuous μ over an already-atomic
    /// attribute, which §2 renders meaningless but the engine treats as
    /// the identity).
    pub warnings: Vec<String>,
}

/// Infers the output type of `expr` against `catalog`.
///
/// Errors when an operator's §2/§3 side conditions are violated:
/// unknown relations or attributes, duplicate projection attributes,
/// empty selection value lists, incompatible set-operation schemas, or a
/// non-permutation canonicalization order.
pub fn infer(expr: &Expr, catalog: &CheckCatalog) -> Result<RelType, CheckError> {
    let mut nodes = 0usize;
    let mut warnings = Vec::new();
    walk(expr, catalog, &mut nodes, &mut warnings)
}

/// Runs [`infer`] and also reports node counts and warnings.
pub fn check(expr: &Expr, catalog: &CheckCatalog) -> Result<CheckReport, CheckError> {
    let mut nodes = 0usize;
    let mut warnings = Vec::new();
    let ty = walk(expr, catalog, &mut nodes, &mut warnings)?;
    Ok(CheckReport {
        ty,
        nodes,
        warnings,
    })
}

fn walk(
    expr: &Expr,
    catalog: &CheckCatalog,
    nodes: &mut usize,
    warnings: &mut Vec<String>,
) -> Result<RelType, CheckError> {
    *nodes += 1;
    match expr {
        Expr::Rel(name) => catalog
            .get(name)
            .cloned()
            .ok_or_else(|| err(expr, format!("unknown relation {name}"))),
        Expr::SelectBox { input, constraints } => {
            let ty = walk(input, catalog, nodes, warnings)?;
            for (attr, values) in constraints {
                if ty.attr_index(attr).is_none() {
                    return Err(err(expr, format!("selection on unknown attribute {attr}")));
                }
                if values.is_empty() {
                    return Err(err(expr, format!("empty value list for attribute {attr}")));
                }
            }
            Ok(ty)
        }
        Expr::Project { input, attrs } => {
            let ty = walk(input, catalog, nodes, warnings)?;
            let mut seen = std::collections::HashSet::new();
            for attr in attrs {
                if ty.attr_index(attr).is_none() {
                    return Err(err(expr, format!("projection of unknown attribute {attr}")));
                }
                if !seen.insert(attr.as_str()) {
                    return Err(err(expr, format!("duplicate projection attribute {attr}")));
                }
            }
            // Projection may re-canonicalize (the non-fixed fallback), so
            // the output is conservatively all-set with unknown routing.
            Ok(RelType::all_set(attrs))
        }
        Expr::Union(l, r) | Expr::Difference(l, r) => {
            let (lt, rt) = (
                walk(l, catalog, nodes, warnings)?,
                walk(r, catalog, nodes, warnings)?,
            );
            if lt.names() != rt.names() {
                return Err(err(
                    expr,
                    format!("incompatible set-operation schemas {lt} vs {rt}"),
                ));
            }
            // Both set operators re-canonicalize under the identity
            // order, so the result routes by the last attribute.
            let mut ty = RelType::all_set(&lt.names());
            ty.routing = lt.arity().checked_sub(1);
            Ok(ty)
        }
        Expr::Intersect(l, r) => {
            let (lt, rt) = (
                walk(l, catalog, nodes, warnings)?,
                walk(r, catalog, nodes, warnings)?,
            );
            if lt.names() != rt.names() {
                return Err(err(
                    expr,
                    format!("incompatible intersection schemas {lt} vs {rt}"),
                ));
            }
            // Pairwise rectangle intersection: componentwise meet.
            let attrs = lt
                .attrs
                .iter()
                .zip(rt.attrs.iter())
                .map(|(a, b)| AttrType {
                    name: a.name.clone(),
                    level: a.level.meet(b.level),
                })
                .collect();
            Ok(RelType {
                attrs,
                routing: if lt.routing == rt.routing {
                    lt.routing
                } else {
                    None
                },
            })
        }
        Expr::Join(l, r) => {
            let (lt, rt) = (
                walk(l, catalog, nodes, warnings)?,
                walk(r, catalog, nodes, warnings)?,
            );
            let mut attrs: Vec<AttrType> = Vec::with_capacity(lt.arity() + rt.arity());
            for a in &lt.attrs {
                let level = match rt.attr_index(&a.name) {
                    // Shared attribute: components intersect.
                    Some(ri) => a.level.meet(rt.attrs[ri].level),
                    None => a.level,
                };
                attrs.push(AttrType {
                    name: a.name.clone(),
                    level,
                });
            }
            for b in &rt.attrs {
                if lt.attr_index(&b.name).is_none() {
                    attrs.push(b.clone());
                }
            }
            Ok(RelType {
                attrs,
                routing: None,
            })
        }
        Expr::Nest { input, attr } => {
            let mut ty = walk(input, catalog, nodes, warnings)?;
            let Some(idx) = ty.attr_index(attr) else {
                return Err(err(expr, format!("nest on unknown attribute {attr}")));
            };
            ty.attrs[idx].level = NestLevel::Set;
            Ok(ty)
        }
        Expr::Unnest { input, attr } => {
            let mut ty = walk(input, catalog, nodes, warnings)?;
            let Some(idx) = ty.attr_index(attr) else {
                return Err(err(expr, format!("unnest on unknown attribute {attr}")));
            };
            if ty.attrs[idx].level == NestLevel::Atomic {
                // §2 defines μ only on set-valued attributes; the engine
                // treats μ over singletons as the identity, so this is a
                // vacuous-but-legal plan, not an error (the gate must
                // accept `μa(νa(X)) → μa(X)` even when X has atomic a).
                warnings.push(format!("vacuous μ over atomic attribute {attr} in {expr}"));
            }
            ty.attrs[idx].level = NestLevel::Atomic;
            Ok(ty)
        }
        Expr::Canonicalize { input, order } => {
            let ty = walk(input, catalog, nodes, warnings)?;
            if order.len() != ty.arity() {
                return Err(err(
                    expr,
                    format!(
                        "canonicalization order covers {} of {} attributes",
                        order.len(),
                        ty.arity()
                    ),
                ));
            }
            let mut seen = std::collections::HashSet::new();
            for attr in order {
                if ty.attr_index(attr).is_none() {
                    return Err(err(
                        expr,
                        format!("canonicalization over unknown attribute {attr}"),
                    ));
                }
                if !seen.insert(attr.as_str()) {
                    return Err(err(
                        expr,
                        format!("attribute {attr} listed twice in canonicalization order"),
                    ));
                }
            }
            // ν_P yields an all-set canonical form routed by the
            // last-applied attribute P(n−1).
            let mut out = RelType::all_set(&ty.names());
            out.routing = order.last().and_then(|last| ty.attr_index(last));
            Ok(out)
        }
    }
}

/// A rewrite-soundness violation: a rule application whose output plan
/// is ill-typed or changes the inferred output schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RewriteViolation {
    /// The rule that produced the unsound plan.
    pub rule: &'static str,
    /// Why the gate rejected it.
    pub reason: String,
    /// The rewritten subtree, rendered.
    pub subtree: String,
}

impl fmt::Display for RewriteViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rule [{}] produced an unsound plan: {}; subtree: {}",
            self.rule, self.reason, self.subtree
        )
    }
}

impl std::error::Error for RewriteViolation {}

/// Checks one optimizer rule application `before → after`.
///
/// The gate is *conditional*: if `before` is already ill-typed (e.g. a
/// user plan over unknown attributes, which rewrites must preserve, not
/// repair), the step is accepted and the error is left for evaluation to
/// report. When `before` type-checks, `after` must too, with the same
/// output attribute names; structural-mode rules must additionally
/// preserve every attribute's nest level (realization-mode rules may
/// regroup, so only the attribute list is compared).
pub fn check_rewrite(
    rule: &'static str,
    before: &Expr,
    after: &Expr,
    catalog: &CheckCatalog,
    mode: RewriteMode,
) -> Result<(), RewriteViolation> {
    let Ok(before_ty) = infer(before, catalog) else {
        return Ok(());
    };
    let after_ty = match infer(after, catalog) {
        Ok(ty) => ty,
        Err(e) => {
            return Err(RewriteViolation {
                rule,
                reason: e.to_string(),
                subtree: after.to_string(),
            })
        }
    };
    if before_ty.names() != after_ty.names() {
        return Err(RewriteViolation {
            rule,
            reason: format!("output schema changed from {} to {}", before_ty, after_ty),
            subtree: after.to_string(),
        });
    }
    if mode == RewriteMode::Structural && before_ty.levels() != after_ty.levels() {
        return Err(RewriteViolation {
            rule,
            reason: format!(
                "nest levels changed from {} to {} under a structural rule",
                before_ty, after_ty
            ),
            subtree: after.to_string(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf2_core::value::Atom;

    fn catalog() -> CheckCatalog {
        let mut cat = CheckCatalog::new();
        cat.insert_base("sc", &["Student", "Course"], Some(1));
        cat.insert_base("cp", &["Course", "Prereq"], Some(1));
        cat
    }

    fn sel(input: Expr, attr: &str, values: &[u32]) -> Expr {
        Expr::SelectBox {
            input: Box::new(input),
            constraints: vec![(attr.into(), values.iter().map(|&v| Atom(v)).collect())],
        }
    }

    #[test]
    fn base_relation_type() {
        let ty = infer(&Expr::rel("sc"), &catalog()).unwrap();
        assert_eq!(ty.names(), vec!["Student", "Course"]);
        assert_eq!(ty.routing, Some(1));
        assert_eq!(ty.to_string(), "({Student}, {Course}) routed by Course");
    }

    #[test]
    fn unknown_relation_rejected() {
        let e = infer(&Expr::rel("nope"), &catalog()).unwrap_err();
        assert!(e.reason.contains("unknown relation"), "{e}");
        assert!(e.node.contains("nope"), "{e}");
    }

    #[test]
    fn selection_checks_attrs_and_values() {
        let cat = catalog();
        assert!(infer(&sel(Expr::rel("sc"), "Student", &[1]), &cat).is_ok());
        let bad_attr = infer(&sel(Expr::rel("sc"), "Nope", &[1]), &cat).unwrap_err();
        assert!(bad_attr.reason.contains("unknown attribute"), "{bad_attr}");
        let empty = infer(&sel(Expr::rel("sc"), "Student", &[]), &cat).unwrap_err();
        assert!(empty.reason.contains("empty value list"), "{empty}");
    }

    #[test]
    fn projection_checks_containment_and_duplicates() {
        let cat = catalog();
        let ok = Expr::Project {
            input: Box::new(Expr::rel("sc")),
            attrs: vec!["Course".into()],
        };
        assert_eq!(infer(&ok, &cat).unwrap().names(), vec!["Course"]);
        let unknown = Expr::Project {
            input: Box::new(Expr::rel("sc")),
            attrs: vec!["Nope".into()],
        };
        assert!(infer(&unknown, &cat).is_err());
        let dup = Expr::Project {
            input: Box::new(Expr::rel("sc")),
            attrs: vec!["Course".into(), "Course".into()],
        };
        assert!(infer(&dup, &cat)
            .unwrap_err()
            .reason
            .contains("duplicate projection attribute"));
    }

    #[test]
    fn set_ops_require_compatible_schemas() {
        let cat = catalog();
        let mismatched = Expr::Union(Box::new(Expr::rel("sc")), Box::new(Expr::rel("cp")));
        assert!(infer(&mismatched, &cat)
            .unwrap_err()
            .reason
            .contains("incompatible"));
        let ok = Expr::Union(Box::new(Expr::rel("sc")), Box::new(Expr::rel("sc")));
        let ty = infer(&ok, &cat).unwrap();
        assert_eq!(ty.names(), vec!["Student", "Course"]);
        assert_eq!(ty.routing, Some(1));
    }

    #[test]
    fn join_merges_schemas_and_levels() {
        let cat = catalog();
        let unnested_cp = Expr::Unnest {
            input: Box::new(Expr::rel("cp")),
            attr: "Course".into(),
        };
        let j = Expr::Join(Box::new(Expr::rel("sc")), Box::new(unnested_cp));
        let ty = infer(&j, &cat).unwrap();
        assert_eq!(ty.names(), vec!["Student", "Course", "Prereq"]);
        // Shared Course meets the right side's atomic level.
        assert_eq!(ty.attrs[1].level, NestLevel::Atomic);
        assert_eq!(ty.attrs[0].level, NestLevel::Set);
    }

    #[test]
    fn nest_unnest_update_levels() {
        let cat = catalog();
        let un = Expr::Unnest {
            input: Box::new(Expr::rel("sc")),
            attr: "Student".into(),
        };
        let ty = infer(&un, &cat).unwrap();
        assert_eq!(ty.attrs[0].level, NestLevel::Atomic);
        let renest = Expr::Nest {
            input: Box::new(un.clone()),
            attr: "Student".into(),
        };
        assert_eq!(infer(&renest, &cat).unwrap().attrs[0].level, NestLevel::Set);
        // A vacuous μ over the now-atomic attribute warns but passes.
        let vacuous = Expr::Unnest {
            input: Box::new(un),
            attr: "Student".into(),
        };
        let report = check(&vacuous, &cat).unwrap();
        assert_eq!(report.warnings.len(), 1);
        assert!(
            report.warnings[0].contains("vacuous"),
            "{:?}",
            report.warnings
        );
    }

    #[test]
    fn canonicalize_requires_permutation() {
        let cat = catalog();
        let ok = Expr::Canonicalize {
            input: Box::new(Expr::rel("sc")),
            order: vec!["Course".into(), "Student".into()],
        };
        let ty = infer(&ok, &cat).unwrap();
        assert_eq!(ty.routing, Some(0), "routing attr is the last applied");
        let short = Expr::Canonicalize {
            input: Box::new(Expr::rel("sc")),
            order: vec!["Course".into()],
        };
        assert!(infer(&short, &cat).is_err());
        let dup = Expr::Canonicalize {
            input: Box::new(Expr::rel("sc")),
            order: vec!["Course".into(), "Course".into()],
        };
        assert!(infer(&dup, &cat).is_err());
    }

    #[test]
    fn check_counts_nodes() {
        let cat = catalog();
        let expr = sel(
            Expr::Join(Box::new(Expr::rel("sc")), Box::new(Expr::rel("cp"))),
            "Student",
            &[1],
        );
        let report = check(&expr, &cat).unwrap();
        assert_eq!(report.nodes, 4);
        assert!(report.warnings.is_empty());
    }

    #[test]
    fn gate_accepts_sound_step() {
        let cat = catalog();
        let before = sel(sel(Expr::rel("sc"), "Student", &[1]), "Course", &[10]);
        let after = Expr::SelectBox {
            input: Box::new(Expr::rel("sc")),
            constraints: vec![
                ("Student".into(), vec![Atom(1)]),
                ("Course".into(), vec![Atom(10)]),
            ],
        };
        check_rewrite(
            "merge-selects",
            &before,
            &after,
            &cat,
            RewriteMode::Structural,
        )
        .unwrap();
    }

    #[test]
    fn gate_skips_ill_typed_inputs() {
        let cat = catalog();
        let before = sel(Expr::rel("sc"), "Nope", &[1]);
        let after = sel(Expr::rel("sc"), "AlsoNope", &[2]);
        // Both sides ill-typed: the gate leaves the error to evaluation.
        check_rewrite("bogus", &before, &after, &cat, RewriteMode::Structural).unwrap();
    }

    #[test]
    fn gate_rejects_schema_change() {
        let cat = catalog();
        let before = Expr::Project {
            input: Box::new(Expr::rel("sc")),
            attrs: vec!["Student".into(), "Course".into()],
        };
        let after = Expr::Project {
            input: Box::new(Expr::rel("sc")),
            attrs: vec!["Student".into()],
        };
        let v =
            check_rewrite("drop-attr", &before, &after, &cat, RewriteMode::Structural).unwrap_err();
        assert_eq!(v.rule, "drop-attr");
        assert!(v.reason.contains("output schema changed"), "{v}");
        assert!(v.subtree.contains("π[Student](sc)"), "{v}");
    }

    #[test]
    fn gate_rejects_ill_typed_output() {
        let cat = catalog();
        let before = sel(Expr::rel("sc"), "Student", &[1]);
        let after = sel(Expr::rel("sc"), "Ghost", &[1]);
        let v = check_rewrite(
            "rename-attr",
            &before,
            &after,
            &cat,
            RewriteMode::Structural,
        )
        .unwrap_err();
        assert!(v.reason.contains("unknown attribute"), "{v}");
    }

    #[test]
    fn gate_rejects_level_change_in_structural_mode() {
        let cat = catalog();
        let before = Expr::rel("sc");
        let after = Expr::Unnest {
            input: Box::new(Expr::rel("sc")),
            attr: "Student".into(),
        };
        let v = check_rewrite(
            "sneaky-unnest",
            &before,
            &after,
            &cat,
            RewriteMode::Structural,
        )
        .unwrap_err();
        assert!(v.reason.contains("nest levels changed"), "{v}");
        // Realization mode only compares the attribute list.
        check_rewrite(
            "sneaky-unnest",
            &before,
            &after,
            &cat,
            RewriteMode::Realization,
        )
        .unwrap();
    }
}
