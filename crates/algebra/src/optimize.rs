//! Rule-based optimizer over [`Expr`] trees.
//!
//! §5 of the paper leaves "the optimization strategy" as an open problem;
//! this module supplies the classical rule-based answer, built directly
//! on the interaction laws of [`crate::laws`]. Every rewrite rule is
//! annotated with the *strength* of equivalence it preserves:
//!
//! * **structural** rules produce a plan whose result is tuple-for-tuple
//!   identical to the original (safe everywhere);
//! * **realization** rules preserve only the underlying 1NF relation
//!   `R*` (Theorem 1); the grouping of the result may differ, so they are
//!   only applied in [`RewriteMode::Realization`] — appropriate whenever
//!   the consumer re-canonicalizes or only looks at flat rows.
//!
//! | Rule | Rewrite | Strength | Law |
//! |------|---------|----------|-----|
//! | `merge-selects` | `σc2(σc1(X)) → σ[c1∧c2](X)` | structural | ∩ associativity |
//! | `elim-empty-select` | `σ[](X) → X` | structural | identity |
//! | `select-into-join` | `σ(L ⋈ R) → σL ⋈ σR` (conjuncts routed by schema) | structural | L8 |
//! | `select-into-intersect` | `σ(L ∩ R) → σL ∩ σR` | structural | ∩ distributivity |
//! | `select-through-unnest` | `σ(μa(X)) → μa(σ(X))` | structural | L3/L6 analogue |
//! | `select-through-nest` | `σ[a∈S](νa(X)) → νa(σ[a∈S](X))` (nest-attr conjuncts only) | structural | L6 |
//! | `select-into-union` | `σ(L ∪ R) → σL ∪ σR` | realization | L9 |
//! | `select-into-difference` | `σ(L − R) → σL − σR` | realization | L9 |
//! | `select-through-nest-all` | `σ(νa(X)) → νa(σ(X))` (all conjuncts) | realization | L7 |
//! | `elim-unnest-nest` | `μa(νa(X)) → μa(X)` | structural | L1 |
//! | `elim-nest-unnest` | `νa(μa(X)) → νa(X)` | structural | L2 |
//! | `elim-nest-nest` | `νa(νa(X)) → νa(X)` | structural | L5 |
//! | `elim-unnest-unnest` | `μa(μa(X)) → μa(X)` | structural | μ idempotent |
//! | `elim-canon-canon` | `νP(νP(X)) → νP(X)` | structural | Thm 5 fixpoint |
//! | `merge-projects` | `π2(π1(X)) → π2(X)` | realization | classical |

use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

use nf2_core::error::{NfError, Result};
use nf2_core::value::Atom;

use crate::check::{self, CheckCatalog, RewriteViolation};
use crate::expr::{Env, Expr};

/// Which equivalence strength the optimizer may exploit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RewriteMode {
    /// Only structural (tuple-identical) rewrites.
    Structural,
    /// Structural plus realization-view (`R*`-preserving) rewrites.
    Realization,
}

/// Static schema information: relation name → attribute names. The
/// optimizer needs it to route selection conjuncts into join sides.
#[derive(Debug, Clone, Default)]
pub struct SchemaCatalog {
    attrs: HashMap<String, Vec<String>>,
}

impl SchemaCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a base relation's attribute names.
    pub fn insert(&mut self, name: impl Into<String>, attrs: Vec<String>) {
        self.attrs.insert(name.into(), attrs);
    }

    /// Builds the catalog from an evaluation environment.
    pub fn from_env(env: &Env) -> Self {
        let mut cat = Self::new();
        for name in env.names() {
            let rel = env.get(name).expect("name listed by env");
            cat.insert(name, rel.schema().attr_names().map(str::to_owned).collect());
        }
        cat
    }

    fn base_attrs(&self, name: &str) -> Result<&[String]> {
        self.attrs
            .get(name)
            .map(Vec::as_slice)
            .ok_or_else(|| NfError::UnknownAttribute(format!("relation {name}")))
    }

    /// Registered relations and their attribute names.
    pub fn relations(&self) -> impl Iterator<Item = (&str, &[String])> {
        self.attrs.iter().map(|(n, a)| (n.as_str(), a.as_slice()))
    }
}

/// Infers the output attribute names of `expr` without evaluating it.
pub fn output_attrs(expr: &Expr, catalog: &SchemaCatalog) -> Result<Vec<String>> {
    match expr {
        Expr::Rel(name) => Ok(catalog.base_attrs(name)?.to_vec()),
        Expr::SelectBox { input, .. }
        | Expr::Nest { input, .. }
        | Expr::Unnest { input, .. }
        | Expr::Canonicalize { input, .. } => output_attrs(input, catalog),
        Expr::Project { attrs, .. } => Ok(attrs.clone()),
        Expr::Union(l, _) | Expr::Difference(l, _) | Expr::Intersect(l, _) => {
            output_attrs(l, catalog)
        }
        Expr::Join(l, r) => {
            let mut out = output_attrs(l, catalog)?;
            for attr in output_attrs(r, catalog)? {
                if !out.contains(&attr) {
                    out.push(attr);
                }
            }
            Ok(out)
        }
    }
}

/// One applied rewrite, for EXPLAIN-style traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Applied {
    /// Rule identifier (see the module table).
    pub rule: &'static str,
    /// The subexpression after the rewrite, rendered.
    pub result: String,
}

/// The optimizer output: the rewritten expression and the rule trace.
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The final expression.
    pub expr: Expr,
    /// Rules applied, in application order.
    pub trace: Vec<Applied>,
}

impl fmt::Display for Optimized {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "plan: {}", self.expr)?;
        for step in &self.trace {
            writeln!(f, "  [{}] → {}", step.rule, step.result)?;
        }
        Ok(())
    }
}

/// Upper bound on rewrite passes; each pass applies at most one rule per
/// node, so this comfortably exceeds any real fixpoint depth.
const MAX_PASSES: usize = 64;

/// Whether the rewrite-soundness gate is active for plain [`optimize`]
/// calls: always in debug builds, and under `NF2_VERIFY=1` in release.
pub fn verify_enabled() -> bool {
    if cfg!(debug_assertions) {
        return true;
    }
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| matches!(std::env::var("NF2_VERIFY"), Ok(v) if !v.is_empty() && v != "0"))
}

/// Optimizes `expr` under `mode`, using `catalog` for attribute routing.
///
/// Runs the rule set to fixpoint (top-down, one rule per pass). The
/// result is guaranteed structurally equivalent in
/// [`RewriteMode::Structural`] and `R*`-equivalent in
/// [`RewriteMode::Realization`]; both guarantees are property-tested.
///
/// When [`verify_enabled`] (debug builds, or `NF2_VERIFY=1`), every rule
/// application is additionally vetted by the
/// [`check`](crate::check::check_rewrite) gate; a violation is a bug in
/// the rule set and panics with the offending rule and subtree. Use
/// [`try_optimize`] for a non-panicking, always-gated variant.
pub fn optimize(expr: &Expr, catalog: &SchemaCatalog, mode: RewriteMode) -> Optimized {
    optimize_observed(expr, catalog, mode, &mut |_, _, _| {})
}

/// [`optimize`], reporting each applied rule to `on_rule` as
/// `(rule, before, after)` immediately after it passes the soundness
/// gate. The callback sees whole-tree expressions, so an observer can
/// cost both sides (this crate stays free of any metrics dependency —
/// callers bring their own cost model and sink). The rule also still
/// lands in [`Optimized::trace`]; the callback is purely additive.
pub fn optimize_observed(
    expr: &Expr,
    catalog: &SchemaCatalog,
    mode: RewriteMode,
    on_rule: &mut dyn FnMut(&'static str, &Expr, &Expr),
) -> Optimized {
    match optimize_gated(expr, catalog, mode, verify_enabled(), on_rule) {
        Ok(opt) => opt,
        Err(v) => panic!("optimizer rewrite-soundness gate: {v}"),
    }
}

/// Optimizes with the rewrite-soundness gate forced on, reporting the
/// first unsound rule application instead of panicking.
pub fn try_optimize(
    expr: &Expr,
    catalog: &SchemaCatalog,
    mode: RewriteMode,
) -> std::result::Result<Optimized, RewriteViolation> {
    optimize_gated(expr, catalog, mode, true, &mut |_, _, _| {})
}

fn optimize_gated(
    expr: &Expr,
    catalog: &SchemaCatalog,
    mode: RewriteMode,
    verify: bool,
    on_rule: &mut dyn FnMut(&'static str, &Expr, &Expr),
) -> std::result::Result<Optimized, RewriteViolation> {
    let check_catalog = verify.then(|| CheckCatalog::from_schema_catalog(catalog));
    let mut current = expr.clone();
    let mut trace = Vec::new();
    for _ in 0..MAX_PASSES {
        match rewrite(&current, catalog, mode) {
            Some((next, rule)) => {
                if let Some(cat) = &check_catalog {
                    check::check_rewrite(rule, &current, &next, cat, mode)?;
                }
                on_rule(rule, &current, &next);
                trace.push(Applied {
                    rule,
                    result: next.to_string(),
                });
                current = next;
            }
            None => break,
        }
    }
    Ok(Optimized {
        expr: current,
        trace,
    })
}

/// Tries to apply one rule anywhere in the tree (root first, then
/// children, left to right). Returns the rewritten tree and rule name.
fn rewrite(
    expr: &Expr,
    catalog: &SchemaCatalog,
    mode: RewriteMode,
) -> Option<(Expr, &'static str)> {
    if let Some(hit) = rewrite_root(expr, catalog, mode) {
        return Some(hit);
    }
    // Recurse into children, rebuilding the node around the first hit.
    macro_rules! descend1 {
        ($input:expr, $build:expr) => {
            if let Some((new_input, rule)) = rewrite($input, catalog, mode) {
                return Some(($build(Box::new(new_input)), rule));
            }
        };
    }
    match expr {
        Expr::Rel(_) => None,
        Expr::SelectBox { input, constraints } => {
            let constraints = constraints.clone();
            descend1!(input, |i| Expr::SelectBox {
                input: i,
                constraints: constraints.clone()
            });
            None
        }
        Expr::Project { input, attrs } => {
            let attrs = attrs.clone();
            descend1!(input, |i| Expr::Project {
                input: i,
                attrs: attrs.clone()
            });
            None
        }
        Expr::Nest { input, attr } => {
            let attr = attr.clone();
            descend1!(input, |i| Expr::Nest {
                input: i,
                attr: attr.clone()
            });
            None
        }
        Expr::Unnest { input, attr } => {
            let attr = attr.clone();
            descend1!(input, |i| Expr::Unnest {
                input: i,
                attr: attr.clone()
            });
            None
        }
        Expr::Canonicalize { input, order } => {
            let order = order.clone();
            descend1!(input, |i| Expr::Canonicalize {
                input: i,
                order: order.clone()
            });
            None
        }
        Expr::Union(l, r) | Expr::Difference(l, r) | Expr::Intersect(l, r) | Expr::Join(l, r) => {
            let rebuild = |l: Box<Expr>, r: Box<Expr>| match expr {
                Expr::Union(..) => Expr::Union(l, r),
                Expr::Difference(..) => Expr::Difference(l, r),
                Expr::Intersect(..) => Expr::Intersect(l, r),
                Expr::Join(..) => Expr::Join(l, r),
                _ => unreachable!(),
            };
            if let Some((new_l, rule)) = rewrite(l, catalog, mode) {
                return Some((rebuild(Box::new(new_l), r.clone()), rule));
            }
            if let Some((new_r, rule)) = rewrite(r, catalog, mode) {
                return Some((rebuild(l.clone(), Box::new(new_r)), rule));
            }
            None
        }
    }
}

/// A deliberately-unsound rule used to prove the soundness gate fires:
/// it silently drops the last attribute of a multi-attribute projection,
/// which the gate must reject as an output-schema change.
#[cfg(test)]
pub(crate) mod sabotage {
    use std::cell::Cell;

    pub(crate) const RULE: &str = "test-drop-projection-attr";

    thread_local! {
        static ENABLED: Cell<bool> = const { Cell::new(false) };
    }

    /// Enables the broken rule for the current thread until dropped.
    pub(crate) struct Armed;

    impl Armed {
        pub(crate) fn new() -> Self {
            ENABLED.with(|f| f.set(true));
            Armed
        }
    }

    impl Drop for Armed {
        fn drop(&mut self) {
            ENABLED.with(|f| f.set(false));
        }
    }

    pub(crate) fn active() -> bool {
        ENABLED.with(|f| f.get())
    }
}

/// Rule dispatch at a single node.
fn rewrite_root(
    expr: &Expr,
    catalog: &SchemaCatalog,
    mode: RewriteMode,
) -> Option<(Expr, &'static str)> {
    #[cfg(test)]
    if sabotage::active() {
        if let Expr::Project { input, attrs } = expr {
            if attrs.len() > 1 {
                return Some((
                    Expr::Project {
                        input: input.clone(),
                        attrs: attrs[..attrs.len() - 1].to_vec(),
                    },
                    sabotage::RULE,
                ));
            }
        }
    }
    match expr {
        Expr::SelectBox { input, constraints } => rewrite_select(input, constraints, catalog, mode),
        Expr::Unnest { input, attr } => match input.as_ref() {
            // L1: μa(νa(X)) → μa(X).
            Expr::Nest {
                input: inner,
                attr: na,
            } if na == attr => Some((
                Expr::Unnest {
                    input: inner.clone(),
                    attr: attr.clone(),
                },
                "elim-unnest-nest",
            )),
            // μ idempotent: μa(μa(X)) → μa(X).
            Expr::Unnest { attr: ua, .. } if ua == attr => {
                Some((input.as_ref().clone(), "elim-unnest-unnest"))
            }
            _ => None,
        },
        Expr::Nest { input, attr } => match input.as_ref() {
            // L2: νa(μa(X)) → νa(X).
            Expr::Unnest {
                input: inner,
                attr: ua,
            } if ua == attr => Some((
                Expr::Nest {
                    input: inner.clone(),
                    attr: attr.clone(),
                },
                "elim-nest-unnest",
            )),
            // L5: νa(νa(X)) → νa(X).
            Expr::Nest { attr: na, .. } if na == attr => {
                Some((input.as_ref().clone(), "elim-nest-nest"))
            }
            _ => None,
        },
        Expr::Canonicalize { input, order } => match input.as_ref() {
            // Theorem-5 fixpoint: νP(νP(X)) → νP(X).
            Expr::Canonicalize {
                order: inner_order, ..
            } if inner_order == order => Some((input.as_ref().clone(), "elim-canon-canon")),
            _ => None,
        },
        Expr::Project { input, attrs } => match input.as_ref() {
            // Classical cascade: π2(π1(X)) → π2(X); R*-preserving only,
            // because the fixedness fast path may differ.
            Expr::Project { input: inner, .. } if mode == RewriteMode::Realization => Some((
                Expr::Project {
                    input: inner.clone(),
                    attrs: attrs.clone(),
                },
                "merge-projects",
            )),
            _ => None,
        },
        _ => None,
    }
}

/// All rules rooted at a `SelectBox` node.
fn rewrite_select(
    input: &Expr,
    constraints: &[(String, Vec<Atom>)],
    catalog: &SchemaCatalog,
    mode: RewriteMode,
) -> Option<(Expr, &'static str)> {
    // Identity elimination.
    if constraints.is_empty() {
        return Some((input.clone(), "elim-empty-select"));
    }
    match input {
        // σc2(σc1(X)) → σ[c1 ∧ c2](X): conjuncts concatenate; repeated
        // attributes intersect inside `select_box`, so plain
        // concatenation is exact.
        Expr::SelectBox {
            input: inner,
            constraints: inner_c,
        } => {
            let mut merged = inner_c.clone();
            merged.extend(constraints.iter().cloned());
            Some((
                Expr::SelectBox {
                    input: inner.clone(),
                    constraints: merged,
                },
                "merge-selects",
            ))
        }
        // σ(L ⋈ R) → σL ⋈ σR, each conjunct routed to every side that
        // owns the attribute. Rectangle intersection is commutative and
        // idempotent, so the result is tuple-identical (L8 machinery).
        Expr::Join(l, r) => {
            let l_attrs = output_attrs(l, catalog).ok()?;
            let r_attrs = output_attrs(r, catalog).ok()?;
            let mut to_l = Vec::new();
            let mut to_r = Vec::new();
            let mut residual = Vec::new();
            for (attr, values) in constraints {
                let in_l = l_attrs.iter().any(|a| a == attr);
                let in_r = r_attrs.iter().any(|a| a == attr);
                if in_l {
                    to_l.push((attr.clone(), values.clone()));
                }
                if in_r {
                    to_r.push((attr.clone(), values.clone()));
                }
                if !in_l && !in_r {
                    residual.push((attr.clone(), values.clone()));
                }
            }
            if to_l.is_empty() && to_r.is_empty() {
                return None; // nothing routable (or unknown attrs): leave for eval to report
            }
            let new_l: Expr = if to_l.is_empty() {
                l.as_ref().clone()
            } else {
                Expr::SelectBox {
                    input: l.clone(),
                    constraints: to_l,
                }
            };
            let new_r: Expr = if to_r.is_empty() {
                r.as_ref().clone()
            } else {
                Expr::SelectBox {
                    input: r.clone(),
                    constraints: to_r,
                }
            };
            let joined = Expr::Join(Box::new(new_l), Box::new(new_r));
            let out = if residual.is_empty() {
                joined
            } else {
                Expr::SelectBox {
                    input: Box::new(joined),
                    constraints: residual,
                }
            };
            Some((out, "select-into-join"))
        }
        // σ(L ∩ R) → σL ∩ σR — structural: (l∩r)∩S = (l∩S)∩(r∩S).
        Expr::Intersect(l, r) => {
            let sel = |side: &Expr| Expr::SelectBox {
                input: Box::new(side.clone()),
                constraints: constraints.to_vec(),
            };
            Some((
                Expr::Intersect(Box::new(sel(l)), Box::new(sel(r))),
                "select-into-intersect",
            ))
        }
        // σ(μa(X)) → μa(σ(X)) — structural for every conjunct: unnest
        // only splits the `a` component and selection only intersects
        // components, so the operations touch disjoint structure (and on
        // `a` itself, splitting then filtering singletons equals
        // filtering the set then splitting).
        Expr::Unnest { input: inner, attr } => Some((
            Expr::Unnest {
                input: Box::new(Expr::SelectBox {
                    input: inner.clone(),
                    constraints: constraints.to_vec(),
                }),
                attr: attr.clone(),
            },
            "select-through-unnest",
        )),
        // σ(νa(X)): nest-attribute conjuncts commute structurally (L6);
        // the rest only at realization view (L7).
        Expr::Nest { input: inner, attr } => {
            let (on_attr, rest): (Vec<_>, Vec<_>) =
                constraints.iter().cloned().partition(|(a, _)| a == attr);
            if mode == RewriteMode::Realization && !rest.is_empty() {
                // Push everything (L7 licenses it at R* view).
                return Some((
                    Expr::Nest {
                        input: Box::new(Expr::SelectBox {
                            input: inner.clone(),
                            constraints: constraints.to_vec(),
                        }),
                        attr: attr.clone(),
                    },
                    "select-through-nest-all",
                ));
            }
            if on_attr.is_empty() {
                return None;
            }
            let pushed = Expr::Nest {
                input: Box::new(Expr::SelectBox {
                    input: inner.clone(),
                    constraints: on_attr,
                }),
                attr: attr.clone(),
            };
            let out = if rest.is_empty() {
                pushed
            } else {
                Expr::SelectBox {
                    input: Box::new(pushed),
                    constraints: rest,
                }
            };
            Some((out, "select-through-nest"))
        }
        // σ(L ∪ R) / σ(L − R): realization-view only (the set operators
        // re-nest, and selection does not commute with re-nesting
        // structurally — see the L7 counterexample).
        Expr::Union(l, r) if mode == RewriteMode::Realization => {
            let sel = |side: &Expr| Expr::SelectBox {
                input: Box::new(side.clone()),
                constraints: constraints.to_vec(),
            };
            Some((
                Expr::Union(Box::new(sel(l)), Box::new(sel(r))),
                "select-into-union",
            ))
        }
        Expr::Difference(l, r) if mode == RewriteMode::Realization => {
            let sel = |side: &Expr| Expr::SelectBox {
                input: Box::new(side.clone()),
                constraints: constraints.to_vec(),
            };
            Some((
                Expr::Difference(Box::new(sel(l)), Box::new(sel(r))),
                "select-into-difference",
            ))
        }
        _ => None,
    }
}

/// A rough per-node cardinality model used to report estimated work.
///
/// Estimates are *heuristic* (selectivity 1/2 per conjunct, join
/// selectivity 1/4); they exist so EXPLAIN can rank plans, not to be
/// accurate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Estimated NF² tuples flowing out of the node.
    pub out_tuples: f64,
    /// Estimated total work (sum of input cardinalities over all nodes).
    pub total_work: f64,
}

/// Estimates cardinality and work for `expr` against base-relation sizes.
pub fn estimate(expr: &Expr, sizes: &HashMap<String, usize>) -> CostEstimate {
    fn walk(expr: &Expr, sizes: &HashMap<String, usize>, work: &mut f64) -> f64 {
        let out = match expr {
            Expr::Rel(name) => sizes.get(name).copied().unwrap_or(0) as f64,
            Expr::SelectBox { input, constraints } => {
                let t = walk(input, sizes, work);
                *work += t;
                t * 0.5f64.powi(constraints.len() as i32)
            }
            Expr::Project { input, .. } => {
                let t = walk(input, sizes, work);
                *work += t;
                t
            }
            Expr::Union(l, r) => {
                let (a, b) = (walk(l, sizes, work), walk(r, sizes, work));
                *work += a + b;
                a + b
            }
            Expr::Difference(l, r) => {
                let (a, b) = (walk(l, sizes, work), walk(r, sizes, work));
                *work += a + b;
                a
            }
            Expr::Intersect(l, r) => {
                let (a, b) = (walk(l, sizes, work), walk(r, sizes, work));
                *work += a * b; // pairwise rectangle intersection
                a.min(b)
            }
            Expr::Join(l, r) => {
                let (a, b) = (walk(l, sizes, work), walk(r, sizes, work));
                *work += a * b;
                (a * b / 4.0).max(1.0)
            }
            Expr::Nest { input, .. } => {
                let t = walk(input, sizes, work);
                *work += t;
                (t * 0.7).max(1.0)
            }
            Expr::Unnest { input, .. } => {
                let t = walk(input, sizes, work);
                *work += t;
                t * 1.5
            }
            Expr::Canonicalize { input, order } => {
                let t = walk(input, sizes, work);
                *work += t * order.len() as f64;
                (t * 0.5).max(1.0)
            }
        };
        out
    }
    let mut work = 0.0;
    let out_tuples = walk(expr, sizes, &mut work);
    CostEstimate {
        out_tuples,
        total_work: work,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf2_core::relation::{FlatRelation, NfRelation};
    use nf2_core::schema::Schema;

    fn env() -> Env {
        let mut env = Env::new();
        let sc = Schema::new("SC", &["Student", "Course"]).unwrap();
        let flat = FlatRelation::from_rows(
            sc,
            vec![
                vec![Atom(1), Atom(10)],
                vec![Atom(1), Atom(11)],
                vec![Atom(2), Atom(10)],
                vec![Atom(3), Atom(12)],
            ],
        )
        .unwrap();
        env.insert("sc", NfRelation::from_flat(&flat));
        let cp = Schema::new("CP", &["Course", "Prereq"]).unwrap();
        let flat = FlatRelation::from_rows(
            cp,
            vec![
                vec![Atom(10), Atom(90)],
                vec![Atom(11), Atom(91)],
                vec![Atom(12), Atom(91)],
            ],
        )
        .unwrap();
        env.insert("cp", NfRelation::from_flat(&flat));
        env
    }

    fn sel(input: Expr, attr: &str, values: &[u32]) -> Expr {
        Expr::SelectBox {
            input: Box::new(input),
            constraints: vec![(attr.into(), values.iter().map(|&v| Atom(v)).collect())],
        }
    }

    /// Structural-mode optimization must be tuple-identical.
    fn assert_structural_equiv(expr: &Expr) {
        let env = env();
        let catalog = SchemaCatalog::from_env(&env);
        let opt = optimize(expr, &catalog, RewriteMode::Structural);
        assert_eq!(
            expr.eval(&env).unwrap(),
            opt.expr.eval(&env).unwrap(),
            "structural rewrite changed the result: {expr} vs {}",
            opt.expr
        );
    }

    /// Realization-mode optimization must preserve `R*` (rows compared,
    /// not derived schema names, which rewrites may abbreviate).
    fn assert_realization_equiv(expr: &Expr) {
        let env = env();
        let catalog = SchemaCatalog::from_env(&env);
        let opt = optimize(expr, &catalog, RewriteMode::Realization);
        assert_eq!(
            expr.eval(&env).unwrap().expand().into_rows(),
            opt.expr.eval(&env).unwrap().expand().into_rows(),
            "realization rewrite changed R*: {expr} vs {}",
            opt.expr
        );
    }

    #[test]
    fn merge_selects_flattens_cascade() {
        let expr = sel(sel(Expr::rel("sc"), "Student", &[1]), "Course", &[10]);
        let catalog = SchemaCatalog::from_env(&env());
        let opt = optimize(&expr, &catalog, RewriteMode::Structural);
        match &opt.expr {
            Expr::SelectBox { constraints, input } => {
                assert_eq!(constraints.len(), 2);
                assert!(matches!(input.as_ref(), Expr::Rel(_)));
            }
            other => panic!("expected one SelectBox, got {other}"),
        }
        assert_eq!(opt.trace[0].rule, "merge-selects");
        assert_structural_equiv(&expr);
    }

    #[test]
    fn observer_sees_every_traced_rule_with_matching_after_tree() {
        let expr = sel(sel(Expr::rel("sc"), "Student", &[1]), "Course", &[10]);
        let catalog = SchemaCatalog::from_env(&env());
        let mut seen: Vec<(&'static str, String, String)> = Vec::new();
        let opt = optimize_observed(
            &expr,
            &catalog,
            RewriteMode::Structural,
            &mut |rule, before, after| {
                seen.push((rule, before.to_string(), after.to_string()));
            },
        );
        assert!(
            !opt.trace.is_empty(),
            "fixture must trigger at least one rule"
        );
        assert_eq!(seen.len(), opt.trace.len());
        for (observed, traced) in seen.iter().zip(&opt.trace) {
            assert_eq!(observed.0, traced.rule);
            assert_eq!(observed.2, traced.result, "after-tree must match trace");
        }
        // The first callback's `before` is the input expression itself.
        assert_eq!(seen[0].1, expr.to_string());
    }

    #[test]
    fn empty_select_eliminated() {
        let expr = Expr::SelectBox {
            input: Box::new(Expr::rel("sc")),
            constraints: vec![],
        };
        let catalog = SchemaCatalog::from_env(&env());
        let opt = optimize(&expr, &catalog, RewriteMode::Structural);
        assert_eq!(opt.expr, Expr::rel("sc"));
    }

    #[test]
    fn select_pushes_into_join_sides() {
        let expr = sel(
            sel(
                Expr::Join(Box::new(Expr::rel("sc")), Box::new(Expr::rel("cp"))),
                "Student",
                &[1],
            ),
            "Prereq",
            &[91],
        );
        let catalog = SchemaCatalog::from_env(&env());
        let opt = optimize(&expr, &catalog, RewriteMode::Structural);
        // Both conjuncts must end up below the join.
        match &opt.expr {
            Expr::Join(l, r) => {
                assert!(
                    matches!(l.as_ref(), Expr::SelectBox { .. }),
                    "left got Student"
                );
                assert!(
                    matches!(r.as_ref(), Expr::SelectBox { .. }),
                    "right got Prereq"
                );
            }
            other => panic!("expected Join at root, got {other}"),
        }
        assert_structural_equiv(&expr);
    }

    #[test]
    fn shared_attr_conjunct_pushes_to_both_sides() {
        let expr = sel(
            Expr::Join(Box::new(Expr::rel("sc")), Box::new(Expr::rel("cp"))),
            "Course",
            &[10],
        );
        let catalog = SchemaCatalog::from_env(&env());
        let opt = optimize(&expr, &catalog, RewriteMode::Structural);
        match &opt.expr {
            Expr::Join(l, r) => {
                assert!(matches!(l.as_ref(), Expr::SelectBox { .. }));
                assert!(matches!(r.as_ref(), Expr::SelectBox { .. }));
            }
            other => panic!("expected Join, got {other}"),
        }
        assert_structural_equiv(&expr);
    }

    #[test]
    fn unroutable_conjunct_stays_put() {
        let expr = sel(
            Expr::Join(Box::new(Expr::rel("sc")), Box::new(Expr::rel("cp"))),
            "Nope",
            &[1],
        );
        let catalog = SchemaCatalog::from_env(&env());
        let opt = optimize(&expr, &catalog, RewriteMode::Structural);
        assert_eq!(
            opt.expr, expr,
            "unknown attribute must not be silently dropped"
        );
        // Both plans error identically.
        assert!(expr.eval(&env()).is_err());
        assert!(opt.expr.eval(&env()).is_err());
    }

    #[test]
    fn select_through_nest_same_attr_structural() {
        let expr = sel(
            Expr::Nest {
                input: Box::new(Expr::rel("sc")),
                attr: "Student".into(),
            },
            "Student",
            &[1, 2],
        );
        let catalog = SchemaCatalog::from_env(&env());
        let opt = optimize(&expr, &catalog, RewriteMode::Structural);
        assert!(
            matches!(opt.expr, Expr::Nest { .. }),
            "select sank below nest: {}",
            opt.expr
        );
        assert_structural_equiv(&expr);
    }

    #[test]
    fn select_through_nest_other_attr_needs_realization_mode() {
        let expr = sel(
            Expr::Nest {
                input: Box::new(Expr::rel("sc")),
                attr: "Student".into(),
            },
            "Course",
            &[10],
        );
        let catalog = SchemaCatalog::from_env(&env());
        let structural = optimize(&expr, &catalog, RewriteMode::Structural);
        assert_eq!(structural.expr, expr, "structural mode must not push");
        let realization = optimize(&expr, &catalog, RewriteMode::Realization);
        assert!(matches!(realization.expr, Expr::Nest { .. }));
        assert_realization_equiv(&expr);
    }

    #[test]
    fn select_through_unnest_structural() {
        let expr = sel(
            Expr::Unnest {
                input: Box::new(Expr::rel("sc")),
                attr: "Course".into(),
            },
            "Student",
            &[1],
        );
        assert_structural_equiv(&expr);
        let catalog = SchemaCatalog::from_env(&env());
        let opt = optimize(&expr, &catalog, RewriteMode::Structural);
        assert!(matches!(opt.expr, Expr::Unnest { .. }));
    }

    #[test]
    fn nest_unnest_pairs_eliminated() {
        let nest = |e: Expr, a: &str| Expr::Nest {
            input: Box::new(e),
            attr: a.into(),
        };
        let unnest = |e: Expr, a: &str| Expr::Unnest {
            input: Box::new(e),
            attr: a.into(),
        };
        let catalog = SchemaCatalog::from_env(&env());

        let e1 = unnest(nest(Expr::rel("sc"), "Student"), "Student");
        let o1 = optimize(&e1, &catalog, RewriteMode::Structural);
        assert_eq!(o1.expr, unnest(Expr::rel("sc"), "Student"));
        assert_structural_equiv(&e1);

        let e2 = nest(unnest(Expr::rel("sc"), "Student"), "Student");
        let o2 = optimize(&e2, &catalog, RewriteMode::Structural);
        assert_eq!(o2.expr, nest(Expr::rel("sc"), "Student"));
        assert_structural_equiv(&e2);

        let e3 = nest(nest(Expr::rel("sc"), "Student"), "Student");
        assert_eq!(
            optimize(&e3, &catalog, RewriteMode::Structural).expr,
            nest(Expr::rel("sc"), "Student")
        );

        let e4 = unnest(unnest(Expr::rel("sc"), "Course"), "Course");
        assert_eq!(
            optimize(&e4, &catalog, RewriteMode::Structural).expr,
            unnest(Expr::rel("sc"), "Course")
        );
    }

    #[test]
    fn different_attr_nest_pairs_kept() {
        // νA(μB(X)) must not be touched.
        let expr = Expr::Nest {
            input: Box::new(Expr::Unnest {
                input: Box::new(Expr::rel("sc")),
                attr: "Course".into(),
            }),
            attr: "Student".into(),
        };
        let catalog = SchemaCatalog::from_env(&env());
        let opt = optimize(&expr, &catalog, RewriteMode::Structural);
        assert_eq!(opt.expr, expr);
    }

    #[test]
    fn canon_canon_eliminated() {
        let canon = |e: Expr| Expr::Canonicalize {
            input: Box::new(e),
            order: vec!["Student".into(), "Course".into()],
        };
        let expr = canon(canon(Expr::rel("sc")));
        let catalog = SchemaCatalog::from_env(&env());
        let opt = optimize(&expr, &catalog, RewriteMode::Structural);
        assert_eq!(opt.expr, canon(Expr::rel("sc")));
        assert_structural_equiv(&expr);
    }

    #[test]
    fn merge_projects_realization_only() {
        let proj = |e: Expr, attrs: &[&str]| Expr::Project {
            input: Box::new(e),
            attrs: attrs.iter().map(|s| s.to_string()).collect(),
        };
        let expr = proj(proj(Expr::rel("sc"), &["Student", "Course"]), &["Student"]);
        let catalog = SchemaCatalog::from_env(&env());
        let s = optimize(&expr, &catalog, RewriteMode::Structural);
        assert_eq!(s.expr, expr);
        let r = optimize(&expr, &catalog, RewriteMode::Realization);
        assert_eq!(r.expr, proj(Expr::rel("sc"), &["Student"]));
        assert_realization_equiv(&expr);
    }

    #[test]
    fn deep_pipeline_reaches_fixpoint() {
        // σ(σ(μS(νS( sc ⋈ cp )))) — several rules must fire in sequence.
        let inner = Expr::Join(Box::new(Expr::rel("sc")), Box::new(Expr::rel("cp")));
        let expr = sel(
            sel(
                Expr::Unnest {
                    input: Box::new(Expr::Nest {
                        input: Box::new(inner),
                        attr: "Student".into(),
                    }),
                    attr: "Student".into(),
                },
                "Student",
                &[1],
            ),
            "Prereq",
            &[91],
        );
        let catalog = SchemaCatalog::from_env(&env());
        let opt = optimize(&expr, &catalog, RewriteMode::Structural);
        assert!(opt.trace.len() >= 3, "trace: {:?}", opt.trace);
        assert_structural_equiv(&expr);
    }

    #[test]
    fn output_attrs_infers_join_schema() {
        let catalog = SchemaCatalog::from_env(&env());
        let j = Expr::Join(Box::new(Expr::rel("sc")), Box::new(Expr::rel("cp")));
        assert_eq!(
            output_attrs(&j, &catalog).unwrap(),
            vec!["Student", "Course", "Prereq"]
        );
        let p = Expr::Project {
            input: Box::new(j),
            attrs: vec!["Prereq".into()],
        };
        assert_eq!(output_attrs(&p, &catalog).unwrap(), vec!["Prereq"]);
        assert!(output_attrs(&Expr::rel("nope"), &catalog).is_err());
    }

    #[test]
    fn estimate_prefers_pushed_down_plans() {
        let sizes = HashMap::from([("sc".to_string(), 1000), ("cp".to_string(), 1000)]);
        let unpushed = sel(
            Expr::Join(Box::new(Expr::rel("sc")), Box::new(Expr::rel("cp"))),
            "Student",
            &[1],
        );
        let catalog = {
            let mut c = SchemaCatalog::new();
            c.insert("sc", vec!["Student".into(), "Course".into()]);
            c.insert("cp", vec!["Course".into(), "Prereq".into()]);
            c
        };
        let pushed = optimize(&unpushed, &catalog, RewriteMode::Structural).expr;
        let before = estimate(&unpushed, &sizes);
        let after = estimate(&pushed, &sizes);
        assert!(
            after.total_work < before.total_work,
            "pushdown must reduce estimated work: {before:?} vs {after:?}"
        );
    }

    #[test]
    fn estimate_handles_all_node_kinds() {
        let sizes = HashMap::from([("sc".to_string(), 100)]);
        let r = Expr::rel("sc");
        let exprs = vec![
            Expr::Union(Box::new(r.clone()), Box::new(r.clone())),
            Expr::Difference(Box::new(r.clone()), Box::new(r.clone())),
            Expr::Intersect(Box::new(r.clone()), Box::new(r.clone())),
            Expr::Project {
                input: Box::new(r.clone()),
                attrs: vec!["Student".into()],
            },
            Expr::Canonicalize {
                input: Box::new(r.clone()),
                order: vec!["Student".into(), "Course".into()],
            },
        ];
        for e in exprs {
            let est = estimate(&e, &sizes);
            assert!(est.out_tuples >= 0.0 && est.total_work > 0.0, "{e}");
        }
        // Unknown relation estimates to zero tuples, not a panic.
        assert_eq!(estimate(&Expr::rel("nope"), &sizes).out_tuples, 0.0);
    }

    /// The soundness gate must reject the deliberately-broken rule with
    /// a diagnostic naming the rule and the rewritten subtree.
    #[test]
    fn gate_rejects_sabotaged_rule() {
        let _armed = sabotage::Armed::new();
        let expr = Expr::Project {
            input: Box::new(Expr::rel("sc")),
            attrs: vec!["Student".into(), "Course".into()],
        };
        let catalog = SchemaCatalog::from_env(&env());
        let v = try_optimize(&expr, &catalog, RewriteMode::Structural)
            .expect_err("broken rule must be caught");
        assert_eq!(v.rule, sabotage::RULE);
        let text = v.to_string();
        assert!(text.contains(sabotage::RULE), "{text}");
        assert!(text.contains("π[Student](sc)"), "names the subtree: {text}");
    }

    /// In debug builds the gate is always on, so plain `optimize` panics
    /// on the broken rule instead of returning a wrong plan.
    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "gate is env-driven in release")]
    #[should_panic(expected = "rewrite-soundness gate")]
    fn gate_panics_in_optimize_on_sabotaged_rule() {
        let _armed = sabotage::Armed::new();
        let expr = Expr::Project {
            input: Box::new(Expr::rel("sc")),
            attrs: vec!["Student".into(), "Course".into()],
        };
        let catalog = SchemaCatalog::from_env(&env());
        let _ = optimize(&expr, &catalog, RewriteMode::Structural);
    }

    /// Every rule in the real rule set passes the gate on representative
    /// plans (the gate runs inside `try_optimize`).
    #[test]
    fn gate_accepts_entire_rule_set() {
        let catalog = SchemaCatalog::from_env(&env());
        let nest = |e: Expr, a: &str| Expr::Nest {
            input: Box::new(e),
            attr: a.into(),
        };
        let unnest = |e: Expr, a: &str| Expr::Unnest {
            input: Box::new(e),
            attr: a.into(),
        };
        let join = Expr::Join(Box::new(Expr::rel("sc")), Box::new(Expr::rel("cp")));
        let plans = vec![
            sel(sel(Expr::rel("sc"), "Student", &[1]), "Course", &[10]),
            sel(join.clone(), "Course", &[10]),
            sel(sel(join, "Student", &[1]), "Prereq", &[91]),
            sel(nest(Expr::rel("sc"), "Student"), "Course", &[10]),
            sel(unnest(Expr::rel("sc"), "Course"), "Student", &[1]),
            unnest(nest(Expr::rel("sc"), "Student"), "Student"),
            nest(unnest(Expr::rel("sc"), "Student"), "Student"),
            sel(
                Expr::Union(Box::new(Expr::rel("sc")), Box::new(Expr::rel("sc"))),
                "Student",
                &[1],
            ),
            sel(
                Expr::Difference(Box::new(Expr::rel("sc")), Box::new(Expr::rel("sc"))),
                "Student",
                &[1],
            ),
            sel(
                Expr::Intersect(Box::new(Expr::rel("sc")), Box::new(Expr::rel("sc"))),
                "Course",
                &[10],
            ),
            Expr::Project {
                input: Box::new(Expr::Project {
                    input: Box::new(Expr::rel("sc")),
                    attrs: vec!["Student".into(), "Course".into()],
                }),
                attrs: vec!["Student".into()],
            },
        ];
        for plan in plans {
            for mode in [RewriteMode::Structural, RewriteMode::Realization] {
                let opt = try_optimize(&plan, &catalog, mode)
                    .unwrap_or_else(|v| panic!("gate rejected a sound plan {plan}: {v}"));
                if mode == RewriteMode::Structural {
                    assert_eq!(
                        plan.eval(&env()).unwrap(),
                        opt.expr.eval(&env()).unwrap(),
                        "{plan}"
                    );
                }
            }
        }
    }

    #[test]
    fn display_renders_trace() {
        let expr = sel(sel(Expr::rel("sc"), "Student", &[1]), "Course", &[10]);
        let catalog = SchemaCatalog::from_env(&env());
        let opt = optimize(&expr, &catalog, RewriteMode::Structural);
        let text = opt.to_string();
        assert!(text.contains("plan:"), "{text}");
        assert!(text.contains("merge-selects"), "{text}");
    }
}
