//! # nf2-workload — deterministic workload generators
//!
//! The paper has no machine evaluation; these generators instantiate its
//! own motivating schemas at parameterised scale so the bench harness can
//! measure the claims (DESIGN.md §7):
//!
//! * [`university`] — Fig. 1's `R1`: entity data where each student's
//!   courses × clubs form a product (`Student →→ Course | Club` holds);
//! * [`relationship`] — Fig. 1's `R2`: relationship data with no MVD;
//! * [`block_product`] — a union of disjoint rectangles with known
//!   compressibility (ground truth for nest quality);
//! * [`uniform`] — uniform random tuples (worst case for nesting);
//! * [`zipf`] — skewed value distributions (realistic co-occurrence);
//! * [`prerequisites`] — §2's `CP(Course, Prerequisite)` with power-set
//!   prerequisite values interned as atoms;
//! * [`anti_correlated`] — sliding-window pairs that defeat nesting by
//!   construction;
//! * [`op_trace`] — replayable mixed insert/delete streams for the
//!   maintenance experiments.
//!
//! All generators are seeded and reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nf2_core::relation::FlatRelation;
use nf2_core::schema::Schema;
use nf2_core::value::Atom;
use std::collections::BTreeSet;
use std::sync::Arc;

/// A generated workload: the flat relation plus its generator label.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Human-readable generator description (appears in reports).
    pub label: String,
    /// The generated 1NF relation.
    pub flat: FlatRelation,
}

fn schema(name: &str, attrs: &[&str]) -> Arc<Schema> {
    Schema::new(name, attrs).expect("generator schemas are valid")
}

/// Fig. 1 `R1`-style entity data over (Student, Course, Club).
///
/// Each of `students` students takes a random set of `courses_per` courses
/// (from a pool of `course_pool`) and belongs to `clubs_per` clubs (pool
/// `club_pool`); rows are the full product per student, so
/// `Student →→ Course | Club` holds by construction.
pub fn university(
    students: usize,
    courses_per: usize,
    course_pool: u32,
    clubs_per: usize,
    club_pool: u32,
    seed: u64,
) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let s = schema("R1", &["Student", "Course", "Club"]);
    let mut rows = Vec::new();
    for student in 0..students as u32 {
        let courses = sample_distinct(&mut rng, courses_per, course_pool);
        let clubs = sample_distinct(&mut rng, clubs_per, club_pool);
        for &c in &courses {
            for &b in &clubs {
                rows.push(vec![
                    Atom(student),
                    Atom(1_000_000 + c),
                    Atom(2_000_000 + b),
                ]);
            }
        }
    }
    Workload {
        label: format!("university(students={students}, courses={courses_per}, clubs={clubs_per})"),
        flat: FlatRelation::from_rows(s, rows).expect("arity 3 rows"),
    }
}

/// Fig. 1 `R2`-style relationship data over (Student, Course, Semester):
/// independent (student, course, semester) facts with **no** product
/// structure, so no non-trivial MVD holds in general.
pub fn relationship(
    rows_target: usize,
    students: u32,
    courses: u32,
    semesters: u32,
    seed: u64,
) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let s = schema("R2", &["Student", "Course", "Semester"]);
    let mut rows = BTreeSet::new();
    while rows.len() < rows_target {
        rows.insert(vec![
            Atom(rng.gen_range(0..students)),
            Atom(1_000_000 + rng.gen_range(0..courses)),
            Atom(2_000_000 + rng.gen_range(0..semesters)),
        ]);
    }
    Workload {
        label: format!("relationship(rows={rows_target})"),
        flat: FlatRelation::from_rows(s, rows).expect("arity 3 rows"),
    }
}

/// A union of `blocks` disjoint rectangles over `dims.len()` attributes,
/// each rectangle spanning `dims[i]` fresh values on attribute `i`.
///
/// The minimum NFR has exactly `blocks` tuples, so nest quality is
/// measurable against ground truth.
pub fn block_product(blocks: usize, dims: &[usize], seed: u64) -> Workload {
    let _ = seed; // deterministic by construction; seed kept for API symmetry
    let names: Vec<String> = (0..dims.len()).map(|i| format!("E{i}")).collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let s = schema("BLK", &name_refs);
    let mut rows = Vec::new();
    let mut next: u32 = 0;
    for _ in 0..blocks {
        // Fresh value ranges per attribute keep blocks disjoint.
        let ranges: Vec<Vec<Atom>> = dims
            .iter()
            .map(|&d| {
                let vals: Vec<Atom> = (0..d as u32).map(|v| Atom(next + v)).collect();
                next += d as u32;
                vals
            })
            .collect();
        // Cartesian product of ranges.
        let mut stack = vec![Vec::new()];
        for r in &ranges {
            let mut grown = Vec::with_capacity(stack.len() * r.len());
            for partial in &stack {
                for &v in r {
                    let mut row = partial.clone();
                    row.push(v);
                    grown.push(row);
                }
            }
            stack = grown;
        }
        rows.extend(stack);
    }
    Workload {
        label: format!("block_product(blocks={blocks}, dims={dims:?})"),
        flat: FlatRelation::from_rows(s, rows).expect("uniform arity"),
    }
}

/// `rows` uniform-random distinct tuples over the given per-attribute
/// domain sizes — the adversarial case for nesting.
pub fn uniform(rows_target: usize, domain_sizes: &[u32], seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let names: Vec<String> = (0..domain_sizes.len()).map(|i| format!("E{i}")).collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let s = schema("UNI", &name_refs);
    let capacity: u128 = domain_sizes.iter().map(|&d| d as u128).product();
    assert!(
        (rows_target as u128) <= capacity,
        "cannot draw {rows_target} distinct rows from a {capacity}-row space"
    );
    let mut rows = BTreeSet::new();
    while rows.len() < rows_target {
        let row: Vec<Atom> = domain_sizes
            .iter()
            .enumerate()
            .map(|(i, &d)| Atom(1_000_000 * i as u32 + rng.gen_range(0..d)))
            .collect();
        rows.insert(row);
    }
    Workload {
        label: format!("uniform(rows={rows_target}, domains={domain_sizes:?})"),
        flat: FlatRelation::from_rows(s, rows).expect("uniform arity"),
    }
}

/// `rows` distinct tuples with Zipf-distributed values per attribute
/// (exponent `s`), modelling skewed co-occurrence.
pub fn zipf(rows_target: usize, domain_sizes: &[u32], s_exp: f64, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let names: Vec<String> = (0..domain_sizes.len()).map(|i| format!("E{i}")).collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let s = schema("ZIPF", &name_refs);
    // Precompute inverse-CDF tables per attribute.
    let tables: Vec<Vec<f64>> = domain_sizes
        .iter()
        .map(|&d| {
            let mut cum = Vec::with_capacity(d as usize);
            let mut total = 0.0;
            for k in 1..=d {
                total += 1.0 / (k as f64).powf(s_exp);
                cum.push(total);
            }
            for c in &mut cum {
                *c /= total;
            }
            cum
        })
        .collect();
    let mut rows = BTreeSet::new();
    let mut attempts = 0usize;
    let max_attempts = rows_target.saturating_mul(200).max(10_000);
    while rows.len() < rows_target && attempts < max_attempts {
        attempts += 1;
        let row: Vec<Atom> = tables
            .iter()
            .enumerate()
            .map(|(i, cum)| {
                let u: f64 = rng.gen();
                let idx = cum.partition_point(|&c| c < u) as u32;
                Atom(1_000_000 * i as u32 + idx.min(domain_sizes[i] - 1))
            })
            .collect();
        rows.insert(row);
    }
    Workload {
        label: format!(
            "zipf(rows={}, s={s_exp}, domains={domain_sizes:?})",
            rows.len()
        ),
        flat: FlatRelation::from_rows(s, rows).expect("uniform arity"),
    }
}

/// §2's `CP(Course, Prerequisite)` example: `Prerequisite` ranges over
/// the **power set** of `Course`, so a value like `{c1, c2}` is one
/// indivisible atom — the paper's second kind of compoundness, which
/// must *not* be split into rows. Each prerequisite set is interned as a
/// single atom; `set_names` returns the decoded sets for display.
///
/// Each course gets 1–`alts_per` alternative prerequisite sets of up to
/// `set_size` courses.
pub fn prerequisites(
    courses: u32,
    alts_per: usize,
    set_size: usize,
    seed: u64,
) -> (Workload, Vec<Vec<u32>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let s = schema("CP", &["Course", "Prerequisite"]);
    // Intern prerequisite sets: each distinct set of course ids becomes
    // one atom (ids offset by 1_000_000).
    let mut interned: Vec<Vec<u32>> = Vec::new();
    let mut rows = BTreeSet::new();
    for course in 0..courses {
        let alts = 1 + rng.gen_range(0..alts_per.max(1));
        for _ in 0..alts {
            let k = 1 + rng.gen_range(0..set_size.max(1));
            let mut set = sample_distinct(&mut rng, k, courses);
            set.retain(|&c| c != course); // no self-prerequisite
            if set.is_empty() {
                continue;
            }
            let set_id = match interned.iter().position(|s| *s == set) {
                Some(i) => i as u32,
                None => {
                    interned.push(set);
                    (interned.len() - 1) as u32
                }
            };
            rows.insert(vec![Atom(course), Atom(1_000_000 + set_id)]);
        }
    }
    let w = Workload {
        label: format!("prerequisites(courses={courses}, alts={alts_per}, set={set_size})"),
        flat: FlatRelation::from_rows(s, rows).expect("arity 2 rows"),
    };
    (w, interned)
}

/// Anti-correlated data: attribute 1 is a sliding window of attribute 0
/// (`b ∈ {a, a+1, …, a+width−1} mod domain`), so every `A`-value sees a
/// *different* `B`-set and nesting buys almost nothing — the structured
/// adversarial case (uniform random can still collide by luck).
pub fn anti_correlated(domain: u32, width: u32, seed: u64) -> Workload {
    let _ = seed; // deterministic by construction; kept for API symmetry
    let s = schema("ANTI", &["A", "B"]);
    let mut rows = Vec::new();
    for a in 0..domain {
        for j in 0..width {
            rows.push(vec![Atom(a), Atom(1_000_000 + (a + j) % domain)]);
        }
    }
    Workload {
        label: format!("anti_correlated(domain={domain}, width={width})"),
        flat: FlatRelation::from_rows(s, rows).expect("arity 2 rows"),
    }
}

/// A mixed insert/delete stream against (and beyond) a base relation:
/// `delete_pct` percent of the `ops` delete a current row, the rest
/// insert fresh or re-insert deleted rows. Drives experiment E10 and the
/// maintenance benches.
pub fn op_trace(
    base: &Workload,
    ops: usize,
    delete_pct: u32,
    seed: u64,
) -> Vec<nf2_core::bulk::Op> {
    use nf2_core::bulk::Op;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut present: Vec<Vec<Atom>> = base.flat.rows().cloned().collect();
    let mut absent: Vec<Vec<Atom>> = Vec::new();
    let arity = base.flat.schema().arity();
    let mut trace = Vec::with_capacity(ops);
    for i in 0..ops {
        let do_delete = !present.is_empty() && rng.gen_range(0..100u32) < delete_pct;
        if do_delete {
            let idx = rng.gen_range(0..present.len());
            let row = present.swap_remove(idx);
            absent.push(row.clone());
            trace.push(Op::Delete(row));
        } else if !absent.is_empty() && rng.gen_bool(0.5) {
            let idx = rng.gen_range(0..absent.len());
            let row = absent.swap_remove(idx);
            present.push(row.clone());
            trace.push(Op::Insert(row));
        } else {
            // A fresh row outside every generator's value ranges.
            let row: Vec<Atom> = (0..arity)
                .map(|a| Atom(9_000_000 + a as u32 * 100_000 + i as u32))
                .collect();
            present.push(row.clone());
            trace.push(Op::Insert(row));
        }
    }
    trace
}

/// Draws `k` distinct values from `0..pool` (or all of them if the pool is
/// smaller).
fn sample_distinct(rng: &mut StdRng, k: usize, pool: u32) -> Vec<u32> {
    let k = k.min(pool as usize);
    let mut chosen = BTreeSet::new();
    while chosen.len() < k {
        chosen.insert(rng.gen_range(0..pool));
    }
    chosen.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nf2_deps_check::*;

    /// Minimal local MVD check to avoid a dependency cycle with nf2-deps:
    /// verifies Student ->-> Course | Club group-wise.
    mod nf2_deps_check {
        use super::*;
        use std::collections::{HashMap, HashSet};

        pub fn student_mvd_holds(flat: &FlatRelation) -> bool {
            let mut groups: HashMap<Atom, (HashSet<Atom>, HashSet<Atom>, usize)> = HashMap::new();
            for row in flat.rows() {
                let g = groups.entry(row[0]).or_default();
                g.0.insert(row[1]);
                g.1.insert(row[2]);
                g.2 += 1;
            }
            groups.values().all(|(c, b, n)| c.len() * b.len() == *n)
        }
    }

    #[test]
    fn university_has_product_structure() {
        let w = university(20, 3, 50, 2, 10, 7);
        assert!(student_mvd_holds(&w.flat), "Student ->-> Course must hold");
        assert_eq!(w.flat.schema().arity(), 3);
        assert!(!w.flat.is_empty());
    }

    #[test]
    fn university_is_deterministic() {
        let a = university(10, 2, 20, 2, 5, 42);
        let b = university(10, 2, 20, 2, 5, 42);
        assert_eq!(a.flat, b.flat);
        let c = university(10, 2, 20, 2, 5, 43);
        assert_ne!(a.flat, c.flat, "different seeds should differ");
    }

    #[test]
    fn relationship_hits_row_target() {
        let w = relationship(200, 30, 30, 4, 9);
        assert_eq!(w.flat.len(), 200);
    }

    #[test]
    fn block_product_row_count_is_exact() {
        let w = block_product(5, &[3, 4], 0);
        assert_eq!(w.flat.len(), 5 * 12);
        // Blocks are disjoint: nesting recovers exactly 5 tuples.
        let nfr =
            nf2_core::nest::canonical_of_flat(&w.flat, &nf2_core::schema::NestOrder::identity(2));
        assert_eq!(nfr.tuple_count(), 5);
    }

    #[test]
    fn uniform_produces_distinct_rows() {
        let w = uniform(100, &[50, 50], 3);
        assert_eq!(w.flat.len(), 100);
    }

    #[test]
    #[should_panic(expected = "cannot draw")]
    fn uniform_rejects_impossible_targets() {
        let _ = uniform(100, &[3, 3], 3);
    }

    #[test]
    fn zipf_skews_values() {
        let w = zipf(300, &[100, 100], 1.2, 5);
        assert!(w.flat.len() > 200, "should reach close to target");
        // The most frequent value should dominate: count occurrences of
        // attribute 0's hottest value.
        let mut counts = std::collections::HashMap::new();
        for r in w.flat.rows() {
            *counts.entry(r[0]).or_insert(0usize) += 1;
        }
        let max = counts.values().max().copied().unwrap_or(0);
        assert!(max * 100 / w.flat.len() >= 10, "hot value below 10%: {max}");
    }

    #[test]
    fn sample_distinct_caps_at_pool() {
        let mut rng = StdRng::seed_from_u64(1);
        let vals = sample_distinct(&mut rng, 10, 4);
        assert_eq!(vals.len(), 4);
    }

    #[test]
    fn prerequisites_intern_sets_as_atoms() {
        let (w, sets) = prerequisites(10, 3, 3, 11);
        assert!(!w.flat.is_empty());
        assert!(!sets.is_empty());
        for row in w.flat.rows() {
            let set_id = (row[1].id() - 1_000_000) as usize;
            let set = &sets[set_id];
            assert!(!set.is_empty());
            assert!(
                !set.contains(&row[0].id()),
                "course {} must not be its own prerequisite",
                row[0].id()
            );
        }
        // A course may have several alternative sets — the paper's point
        // that CP can hold (c0,{c1,c2}) and (c0,{c1,c3}) side by side.
        let mut per_course = std::collections::HashMap::new();
        for row in w.flat.rows() {
            *per_course.entry(row[0]).or_insert(0usize) += 1;
        }
        assert!(
            per_course.values().any(|&n| n > 1),
            "some course has alternatives"
        );
    }

    #[test]
    fn prerequisites_are_deterministic() {
        let (a, sa) = prerequisites(8, 2, 2, 3);
        let (b, sb) = prerequisites(8, 2, 2, 3);
        assert_eq!(a.flat, b.flat);
        assert_eq!(sa, sb);
    }

    #[test]
    fn anti_correlated_resists_nesting() {
        let w = anti_correlated(30, 3, 0);
        assert_eq!(w.flat.len(), 90);
        let nfr =
            nf2_core::nest::canonical_of_flat(&w.flat, &nf2_core::schema::NestOrder::identity(2));
        // Every A-value has a distinct B-window: nesting A collapses
        // nothing (tuples = rows after νA ∘ νB ≥ domain).
        assert!(
            nfr.tuple_count() >= 30,
            "anti-correlated data must stay near-incompressible: {}",
            nfr.tuple_count()
        );
    }

    #[test]
    fn op_trace_is_replayable_and_consistent() {
        use nf2_core::bulk::Op;
        let base = university(10, 2, 20, 2, 5, 42);
        let trace = op_trace(&base, 200, 40, 7);
        assert_eq!(trace.len(), 200);
        // Replaying against a set model: deletes always hit, inserts
        // never duplicate (the generator tracks present/absent rows).
        let mut model: BTreeSet<Vec<Atom>> = base.flat.rows().cloned().collect();
        for op in &trace {
            match op {
                Op::Insert(row) => assert!(model.insert(row.clone()), "duplicate insert {row:?}"),
                Op::Delete(row) => assert!(model.remove(row), "delete of absent {row:?}"),
            }
        }
    }

    #[test]
    fn op_trace_respects_delete_percentage_roughly() {
        use nf2_core::bulk::Op;
        let base = relationship(300, 30, 30, 4, 9);
        let trace = op_trace(&base, 400, 50, 13);
        let deletes = trace.iter().filter(|o| matches!(o, Op::Delete(_))).count();
        assert!(
            (100..=300).contains(&deletes),
            "50% nominal deletes landed at {deletes}/400"
        );
    }
}
