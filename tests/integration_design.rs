//! Integration: the §3.4 schema-design pipeline across crates.
//!
//! workload → deps (mining, basis, 4NF decomposition, chase) → core
//! (canonical forms, fixedness): dependencies are *mined* from the
//! instance, drive both the classical 4NF design and the paper's
//! nest-order suggestion, and the two designs are compared on the same
//! data.

use std::collections::BTreeSet;

use nf2::core::nest::canonical_of_flat;
use nf2::core::properties::is_fixed_on;
use nf2::deps::{
    decompose_4nf, dependency_basis, holds_mvd, is_lossless_join, mine_fds, mine_mvds,
    suggest_nest_order, AttrSet, Mvd,
};
use nf2::prelude::*;
use nf2::workload;

#[test]
fn mined_mvd_drives_both_designs() {
    // University data satisfies Student ->-> Course | Club by construction.
    let w = workload::university(60, 3, 20, 2, 6, 5);
    let student_mvd = Mvd::new([0], [1]);
    assert!(
        holds_mvd(&w.flat, &student_mvd),
        "generator guarantees the MVD"
    );

    // Mining must rediscover it.
    let mined = mine_mvds(&w.flat, &mine_fds(&w.flat));
    assert!(
        mined.iter().any(|m| m.lhs == student_mvd.lhs
            && (m.rhs == student_mvd.rhs || m.complement(3).rhs == student_mvd.rhs)),
        "mined MVDs {mined:?} must include Student ->-> Course (or its complement)"
    );

    // The dependency basis of {Student} splits Course from Club.
    let blocks = dependency_basis(AttrSet::single(0), 3, &[], &[student_mvd]);
    assert_eq!(blocks, vec![AttrSet::single(1), AttrSet::single(2)]);

    // Classical design: 4NF decomposition into SC and SB, lossless.
    let d = decompose_4nf(3, &[], &[student_mvd]);
    assert_eq!(
        d.fragments,
        vec![AttrSet::from_attrs([0, 1]), AttrSet::from_attrs([0, 2])]
    );
    assert!(is_lossless_join(3, &[], &[student_mvd], &d.fragments));

    // Paper's design: keep one relation, nest on the dependents, fixed on
    // the determinant.
    let order = suggest_nest_order(3, &[], &[student_mvd]);
    let nfr = canonical_of_flat(&w.flat, &order);
    assert!(
        is_fixed_on(&nfr, &[0]),
        "suggested order yields fixedness on Student"
    );
    assert_eq!(nfr.expand(), w.flat, "Theorem 1");

    // The NFR needs no join: one tuple per student carries the full
    // entity; the 4NF design splits it across two fragment rowsets.
    let students: BTreeSet<Atom> = w.flat.rows().map(|r| r[0]).collect();
    assert_eq!(
        nfr.tuple_count(),
        students.len(),
        "one NF² tuple per student entity"
    );
    let sc_rows: BTreeSet<(Atom, Atom)> = w.flat.rows().map(|r| (r[0], r[1])).collect();
    let sb_rows: BTreeSet<(Atom, Atom)> = w.flat.rows().map(|r| (r[0], r[2])).collect();
    assert!(
        nfr.tuple_count() < sc_rows.len() + sb_rows.len(),
        "the nested design stores fewer units than the 4NF fragments"
    );
}

#[test]
fn relationship_data_supports_neither_design() {
    // Fig. 1's R2 analogue: no MVD holds, so 4NF keeps the relation whole
    // and no nest order achieves fixedness on Student with compression.
    let w = workload::relationship(150, 20, 20, 4, 11);
    let student_mvd = Mvd::new([0], [1]);
    if holds_mvd(&w.flat, &student_mvd) {
        // Astronomically unlikely with these parameters; regenerate the
        // workload if it ever trips.
        panic!("random relationship data accidentally satisfies the MVD");
    }
    let mined = mine_mvds(&w.flat, &mine_fds(&w.flat));
    assert!(
        !mined.iter().any(|m| m.lhs == AttrSet::single(0)),
        "no Student-determined MVD should be mined: {mined:?}"
    );
    let d = decompose_4nf(3, &[], &mined);
    assert_eq!(d.fragments, vec![AttrSet::full(3)], "already in 4NF");
}

#[test]
fn every_nest_order_preserves_information_on_mined_schemas() {
    let w = workload::university(25, 2, 10, 2, 4, 3);
    for order in NestOrder::all(3) {
        let nfr = canonical_of_flat(&w.flat, &order);
        assert_eq!(nfr.expand(), w.flat, "order {order}");
    }
}

#[test]
fn chase_validates_mined_dependencies() {
    use nf2::deps::chase_implies_mvd;
    // Everything mined from the instance must be self-consistent: the
    // set of mined MVDs implies each of its members (trivially), and the
    // complement of each mined MVD holds on the instance (Fagin).
    let w = workload::university(30, 2, 12, 2, 5, 9);
    let mined = mine_mvds(&w.flat, &mine_fds(&w.flat));
    for m in &mined {
        assert!(holds_mvd(&w.flat, m), "mined MVD {m} must hold");
        assert!(
            holds_mvd(&w.flat, &m.complement(3)),
            "complement of {m} must hold"
        );
        assert!(chase_implies_mvd(3, &[], &mined, m));
    }
}
