//! Integration: the optimizer inside the full query pipeline.
//!
//! The executor always optimizes SELECT plans in structural mode; these
//! tests check end-to-end results against hand-computed oracles on the
//! flat realization, and that EXPLAIN OPTIMIZED reports plans whose
//! evaluation matches the executed statement.

use std::collections::BTreeSet;

use nf2::prelude::*;

fn seeded_db() -> Database {
    let mut db = Database::new();
    db.run_script(
        "CREATE TABLE enroll (Student, Course, Term) NEST ORDER (Student, Course, Term);
         INSERT INTO enroll VALUES
           ('s1','c1','t1'), ('s2','c1','t1'), ('s3','c1','t2'),
           ('s1','c2','t1'), ('s2','c2','t2'), ('s4','c3','t2'),
           ('s1','c3','t2'), ('s4','c1','t1');
         CREATE TABLE teach (Course, Prof);
         INSERT INTO teach VALUES ('c1','p1'), ('c2','p1'), ('c3','p2');
         CREATE TABLE dept (Prof, Dept);
         INSERT INTO dept VALUES ('p1','d1'), ('p2','d2');",
    )
    .unwrap();
    db
}

/// Flat-side oracle for σ+π over enroll ⋈ teach ⋈ dept.
fn oracle(
    db: &Database,
    pred: impl Fn(&str, &str, &str, &str, &str) -> bool,
) -> BTreeSet<Vec<String>> {
    let dict = db.dict();
    let enroll = db.table("enroll").unwrap().relation().expand();
    let teach = db.table("teach").unwrap().relation().expand();
    let dept = db.table("dept").unwrap().relation().expand();
    let name = |a: Atom| dict.resolve(a).unwrap();
    let mut out = BTreeSet::new();
    for e in enroll.rows() {
        for t in teach.rows() {
            if e[1] != t[0] {
                continue;
            }
            for d in dept.rows() {
                if t[1] != d[0] {
                    continue;
                }
                let (s, c, term, p, dp) =
                    (name(e[0]), name(e[1]), name(e[2]), name(t[1]), name(d[1]));
                if pred(&s, &c, &term, &p, &dp) {
                    out.insert(vec![s.clone(), dp.clone()]);
                }
            }
        }
    }
    out
}

fn result_rows(db: &Database, out: &Output) -> BTreeSet<Vec<String>> {
    match out {
        Output::Relation { relation, .. } => relation
            .expand()
            .rows()
            .map(|r| r.iter().map(|&a| db.dict().resolve(a).unwrap()).collect())
            .collect(),
        other => panic!("expected a relation, got {other:?}"),
    }
}

#[test]
fn three_way_join_with_pushdown_matches_oracle() {
    let mut db = seeded_db();
    let out = db
        .run("SELECT Student, Dept FROM enroll JOIN teach JOIN dept WHERE Prof = 'p1' AND Term = 't1'")
        .unwrap();
    let got = result_rows(&db, &out);
    let want = oracle(&db, |_, _, term, p, _| p == "p1" && term == "t1");
    assert_eq!(got, want);
}

#[test]
fn in_list_over_join_matches_oracle() {
    let mut db = seeded_db();
    let out = db
        .run("SELECT Student, Dept FROM enroll JOIN teach JOIN dept WHERE Student IN ('s1','s4')")
        .unwrap();
    let got = result_rows(&db, &out);
    let want = oracle(&db, |s, _, _, _, _| s == "s1" || s == "s4");
    assert_eq!(got, want);
}

#[test]
fn explain_optimized_plan_is_faithful() {
    let mut db = seeded_db();
    let text = db
        .run("EXPLAIN OPTIMIZED SELECT Student FROM enroll JOIN teach WHERE Prof = 'p2'")
        .unwrap()
        .to_text();
    // The selection must sink below the join in the reported plan.
    assert!(text.contains("select-into-join"), "{text}");
    let optimized_section = text
        .split("optimized plan:")
        .nth(1)
        .expect("section present");
    let join_pos = optimized_section
        .find("natural-join")
        .expect("join in plan");
    let select_pos = optimized_section.find("select [").expect("select in plan");
    assert!(
        select_pos > join_pos,
        "selection should appear below the join in the optimized tree:\n{optimized_section}"
    );
    // And the executed statement agrees with the oracle.
    let out = db
        .run("SELECT Student FROM enroll JOIN teach WHERE Prof = 'p2'")
        .unwrap();
    let got = result_rows(&db, &out);
    let want: BTreeSet<Vec<String>> = [vec!["s1".to_string()], vec!["s4".to_string()]]
        .into_iter()
        .collect();
    assert_eq!(got, want, "s1 and s4 take c3, taught by p2");
}

#[test]
fn aggregates_after_optimization() {
    let mut db = seeded_db();
    match db
        .run("SELECT COUNT(*) FROM enroll JOIN teach WHERE Prof = 'p1'")
        .unwrap()
    {
        Output::Count(n) => assert_eq!(n, 6, "c1 has 4 enrollments, c2 has 2"),
        other => panic!("unexpected {other:?}"),
    }
    match db
        .run("SELECT COUNT(DISTINCT Student) FROM enroll JOIN teach WHERE Prof = 'p1'")
        .unwrap()
    {
        Output::Count(n) => assert_eq!(n, 4, "s1..s4 all touch a p1 course"),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn mutations_then_queries_stay_consistent() {
    let mut db = seeded_db();
    db.run("DELETE FROM enroll WHERE Course = 'c1'").unwrap();
    db.run("UPDATE teach SET Prof = 'p2' WHERE Course = 'c2'")
        .unwrap();
    let out = db
        .run("SELECT Student, Dept FROM enroll JOIN teach JOIN dept")
        .unwrap();
    let got = result_rows(&db, &out);
    let want = oracle(&db, |_, _, _, _, _| true);
    assert_eq!(got, want);
    // The stored tables remain canonical for their orders after the DML.
    let t = db.table("enroll").unwrap();
    let fresh = nf2::core::nest::canonical_of_flat(&t.relation().expand(), t.order());
    assert_eq!(t.relation(), &fresh);
}
