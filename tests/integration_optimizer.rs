//! Integration: the optimizer inside the full query pipeline.
//!
//! The planner always optimizes SELECT plans in structural mode; these
//! tests check end-to-end results against hand-computed oracles on the
//! flat realization — through one-shot runs, prepared statements and
//! streaming cursors alike — and that EXPLAIN OPTIMIZED reports plans
//! whose evaluation matches the executed statement.

use std::collections::BTreeSet;

use nf2::prelude::*;

fn seeded_engine() -> Engine {
    let engine = Engine::builder().build().unwrap();
    engine
        .session()
        .run_script(
            "CREATE TABLE enroll (Student, Course, Term) NEST ORDER (Student, Course, Term);
             INSERT INTO enroll VALUES
               ('s1','c1','t1'), ('s2','c1','t1'), ('s3','c1','t2'),
               ('s1','c2','t1'), ('s2','c2','t2'), ('s4','c3','t2'),
               ('s1','c3','t2'), ('s4','c1','t1');
             CREATE TABLE teach (Course, Prof);
             INSERT INTO teach VALUES ('c1','p1'), ('c2','p1'), ('c3','p2');
             CREATE TABLE dept (Prof, Dept);
             INSERT INTO dept VALUES ('p1','d1'), ('p2','d2');",
        )
        .unwrap();
    engine
}

/// Flat-side oracle for σ+π over enroll ⋈ teach ⋈ dept.
fn oracle(
    engine: &Engine,
    pred: impl Fn(&str, &str, &str, &str, &str) -> bool,
) -> BTreeSet<Vec<String>> {
    let dict = engine.dict();
    let enroll = engine.table("enroll").unwrap().relation().expand();
    let teach = engine.table("teach").unwrap().relation().expand();
    let dept = engine.table("dept").unwrap().relation().expand();
    let name = |a: Atom| dict.resolve(a).unwrap();
    let mut out = BTreeSet::new();
    for e in enroll.rows() {
        for t in teach.rows() {
            if e[1] != t[0] {
                continue;
            }
            for d in dept.rows() {
                if t[1] != d[0] {
                    continue;
                }
                let (s, c, term, p, dp) =
                    (name(e[0]), name(e[1]), name(e[2]), name(t[1]), name(d[1]));
                if pred(&s, &c, &term, &p, &dp) {
                    out.insert(vec![s.clone(), dp.clone()]);
                }
            }
        }
    }
    out
}

fn relation_rows(engine: &Engine, relation: &NfRelation) -> BTreeSet<Vec<String>> {
    relation
        .expand()
        .rows()
        .map(|r| {
            r.iter()
                .map(|&a| engine.dict().resolve(a).unwrap())
                .collect()
        })
        .collect()
}

fn result_rows(engine: &Engine, out: &Output) -> BTreeSet<Vec<String>> {
    match out {
        Output::Relation { relation, .. } => relation_rows(engine, relation),
        other => panic!("expected a relation, got {other:?}"),
    }
}

#[test]
fn three_way_join_with_pushdown_matches_oracle() {
    let engine = seeded_engine();
    let out = engine
        .session()
        .run("SELECT Student, Dept FROM enroll JOIN teach JOIN dept WHERE Prof = 'p1' AND Term = 't1'")
        .unwrap();
    let got = result_rows(&engine, &out);
    let want = oracle(&engine, |_, _, term, p, _| p == "p1" && term == "t1");
    assert_eq!(got, want);
}

#[test]
fn in_list_over_join_matches_oracle_prepared_and_streamed() {
    let engine = seeded_engine();
    let want = oracle(&engine, |s, _, _, _, _| s == "s1" || s == "s4");
    let mut session = engine.session();
    // One-shot, prepared, and cursor paths must agree with the oracle.
    let one_shot = session
        .run("SELECT Student, Dept FROM enroll JOIN teach JOIN dept WHERE Student IN ('s1','s4')")
        .unwrap();
    let mut prepared = session
        .prepare("SELECT Student, Dept FROM enroll JOIN teach JOIN dept WHERE Student IN (?, ?)")
        .unwrap();
    let via_prepared = prepared.execute(&mut session, &["s1", "s4"]).unwrap();
    assert_eq!(one_shot, via_prepared);
    let streamed = prepared
        .query(&session, &["s1", "s4"])
        .unwrap()
        .into_relation()
        .unwrap();
    let engine = session.engine();
    assert_eq!(result_rows(engine, &one_shot), want);
    assert_eq!(relation_rows(engine, &streamed), want);
}

#[test]
fn explain_optimized_plan_is_faithful() {
    let engine = seeded_engine();
    let mut session = engine.session();
    let text = session
        .run("EXPLAIN OPTIMIZED SELECT Student FROM enroll JOIN teach WHERE Prof = 'p2'")
        .unwrap()
        .to_text();
    // EXPLAIN carries the cost estimate next to the plan tree.
    assert!(text.contains("estimated work:"), "{text}");
    // The selection must sink below the join in the reported plan.
    assert!(text.contains("select-into-join"), "{text}");
    let optimized_section = text
        .split("optimized plan:")
        .nth(1)
        .expect("section present");
    let join_pos = optimized_section
        .find("natural-join")
        .expect("join in plan");
    let select_pos = optimized_section.find("select [").expect("select in plan");
    assert!(
        select_pos > join_pos,
        "selection should appear below the join in the optimized tree:\n{optimized_section}"
    );
    // And the executed statement agrees with the oracle.
    let out = session
        .run("SELECT Student FROM enroll JOIN teach WHERE Prof = 'p2'")
        .unwrap();
    let got = result_rows(session.engine(), &out);
    let want: BTreeSet<Vec<String>> = [vec!["s1".to_string()], vec!["s4".to_string()]]
        .into_iter()
        .collect();
    assert_eq!(got, want, "s1 and s4 take c3, taught by p2");
}

#[test]
fn aggregates_after_optimization() {
    let engine = seeded_engine();
    let mut session = engine.session();
    match session
        .run("SELECT COUNT(*) FROM enroll JOIN teach WHERE Prof = 'p1'")
        .unwrap()
    {
        Output::Count(n) => assert_eq!(n, 6, "c1 has 4 enrollments, c2 has 2"),
        other => panic!("unexpected {other:?}"),
    }
    match session
        .run("SELECT COUNT(DISTINCT Student) FROM enroll JOIN teach WHERE Prof = 'p1'")
        .unwrap()
    {
        Output::Count(n) => assert_eq!(n, 4, "s1..s4 all touch a p1 course"),
        other => panic!("unexpected {other:?}"),
    }
    // The streaming counterpart counts without materializing.
    let n = session
        .query("SELECT COUNT(*) FROM enroll JOIN teach WHERE Prof = 'p1'")
        .unwrap()
        .flat_count();
    assert_eq!(n, 6);
}

#[test]
fn mutations_then_queries_stay_consistent() {
    let engine = seeded_engine();
    let mut session = engine.session();
    session
        .run("DELETE FROM enroll WHERE Course = 'c1'")
        .unwrap();
    session
        .run("UPDATE teach SET Prof = 'p2' WHERE Course = 'c2'")
        .unwrap();
    let out = session
        .run("SELECT Student, Dept FROM enroll JOIN teach JOIN dept")
        .unwrap();
    let engine = session.engine();
    let got = result_rows(engine, &out);
    let want = oracle(engine, |_, _, _, _, _| true);
    assert_eq!(got, want);
    // The stored tables remain canonical for their orders after the DML.
    let t = engine.table("enroll").unwrap();
    let fresh = nf2::core::nest::canonical_of_flat(&t.relation().expand(), t.order());
    assert_eq!(*t.relation(), fresh);
}
