//! ORDER BY / top-k / shard-pruning guarantees at scale — the
//! "ORDER BY-heavy" acceptance bin (CI runs it under every
//! `NF2_SHARDS` matrix value; the engines below pin their own shard
//! counts explicitly so the assertions are layout-independent).
//!
//! Two probe-counted acceptance bars:
//!
//! * `ORDER BY x LIMIT k` pulls the scan **exactly once** (the bounded
//!   heap never re-scans or materializes the input — the ≤ k retention
//!   bound itself is pinned by `nf2-algebra`'s `TopKStats` tests and
//!   the E19 experiment);
//! * an equality on the outermost nest attribute over 4 hash shards
//!   scans **exactly one shard's tuples**, charged to the probe counter.

use nf2::query::{Engine, Output};

/// An engine holding `groups` canonical tuples (one per zero-padded
/// `g????` key, each spanning `width` B-values), bulk-loaded through
/// the shared dictionary so every value is interned and `ORDER BY` can
/// rank by string.
fn ordered_engine(groups: usize, width: usize) -> Engine {
    use nf2::core::schema::NestOrder;
    use nf2::storage::NfTable;
    let engine = Engine::builder().build().unwrap();
    // Per-group-unique B values: canonicalization folds each group into
    // exactly one tuple (g, {its own w's}) instead of merging groups.
    let mut rows = Vec::new();
    for g in 0..groups {
        for i in 0..width {
            rows.push(vec![format!("g{g:04}"), format!("w{g:04}x{i}")]);
        }
    }
    let refs: Vec<Vec<&str>> = rows
        .iter()
        .map(|r| r.iter().map(String::as_str).collect())
        .collect();
    let table = NfTable::bulk_load_strs(
        "big",
        &["A", "B"],
        refs,
        NestOrder::identity(2),
        engine.dict().clone(),
    )
    .unwrap();
    engine.attach_table(table).unwrap();
    assert_eq!(engine.table("big").unwrap().tuple_count(), groups);
    engine
}

#[test]
fn top_k_pulls_the_scan_exactly_once() {
    let engine = ordered_engine(1_000, 5);
    let session = engine.session();

    // ORDER BY A LIMIT 3 over 10³ tuples: the top-k heap must consume
    // the scan exactly once — 1000 probes, not a sort's materialized
    // copy pulled again, and certainly not zero-limit-style shortcuts.
    let before = session.engine().table("big").unwrap().stats();
    let top: Vec<String> = {
        let snap = session.engine().dict().snapshot();
        session
            .query("SELECT * FROM big ORDER BY A LIMIT 3")
            .unwrap()
            .map(|t| {
                snap.resolve(t.as_tuple().component(0).as_slice()[0])
                    .unwrap()
                    .to_owned()
            })
            .collect()
    };
    let after = session.engine().table("big").unwrap().stats();
    assert_eq!(
        after.units_probed - before.units_probed,
        1_000,
        "the bounded heap pulls each stored tuple exactly once"
    );
    assert_eq!(after.lookups - before.lookups, 1, "one scan");
    assert_eq!(top, vec!["g0000", "g0001", "g0002"]);

    // DESC returns the other end of the order.
    let snap = session.engine().dict().snapshot();
    let bottom: Vec<String> = session
        .query("SELECT * FROM big ORDER BY A DESC LIMIT 2")
        .unwrap()
        .map(|t| {
            snap.resolve(t.as_tuple().component(0).as_slice()[0])
                .unwrap()
                .to_owned()
        })
        .collect();
    assert_eq!(bottom, vec!["g0999", "g0998"]);

    // Top-k ≡ full-sort-then-truncate, tuple-identical.
    let full: Vec<_> = session
        .query("SELECT * FROM big ORDER BY A")
        .unwrap()
        .map(|t| t.into_owned())
        .collect();
    let topk: Vec<_> = session
        .query("SELECT * FROM big ORDER BY A LIMIT 7")
        .unwrap()
        .map(|t| t.into_owned())
        .collect();
    assert_eq!(topk.as_slice(), &full[..7]);
}

#[test]
fn order_by_is_deterministic_across_shard_layouts() {
    // Unique keys ⇒ the ordered stream is identical whatever the
    // physical shard layout underneath.
    let collect = |shards: usize| -> Vec<Vec<String>> {
        let engine = Engine::builder().shards(shards).build().unwrap();
        let mut session = engine.session();
        session.run("CREATE TABLE t (A, B)").unwrap();
        // Unique A and B per row: every row is its own canonical tuple
        // with a unique sort key, so the ordered stream has no ties.
        let rows: Vec<String> = (0..97)
            .map(|i| format!("('k{:03}', 'v{i:03}')", (i * 37) % 97))
            .collect();
        session
            .run(&format!("INSERT INTO t VALUES {}", rows.join(", ")))
            .unwrap();
        let snap = session.engine().dict().snapshot();
        session
            .query("SELECT A, B FROM t ORDER BY A DESC LIMIT 10")
            .unwrap()
            .flat_rows()
            .map(|row| {
                row.iter()
                    .map(|&a| snap.resolve(a).unwrap().to_owned())
                    .collect()
            })
            .collect()
    };
    let unsharded = collect(1);
    assert_eq!(unsharded.len(), 10);
    assert_eq!(unsharded[0][0], "k096");
    for shards in [2, 4, 7] {
        assert_eq!(collect(shards), unsharded, "{shards} shards");
    }
}

/// A 4-shard engine whose outer (routing) attribute B spans 20 values.
fn sharded_engine() -> Engine {
    let engine = Engine::builder().shards(4).build().unwrap();
    let mut session = engine.session();
    session.run("CREATE TABLE t (A, B)").unwrap();
    // 400 distinct rows (A unique per row), 20 per B value — the
    // canonical form folds them into one tuple per B value.
    let rows: Vec<String> = (0..400)
        .map(|i| format!("('a{i:03}', 'b{:02}')", i % 20))
        .collect();
    session
        .run(&format!("INSERT INTO t VALUES {}", rows.join(", ")))
        .unwrap();
    engine
}

#[test]
fn outer_attribute_equality_scans_exactly_one_shard() {
    let engine = sharded_engine();
    let session = engine.session();
    let table = session.engine().table("t").unwrap();
    assert_eq!(table.shard_count(), 4);
    assert_eq!(table.routing().attr(), Some(1), "B routes");
    let total: usize = table.sharded().tuple_count();
    let b07 = session.engine().dict().lookup("b07").unwrap();
    let home = table.routing().spec().route_value(b07);
    let home_tuples = table.sharded().shard(home).tuple_count();
    assert!(
        home_tuples * 2 < total,
        "the routed shard must be a strict minority of the stored tuples \
         ({home_tuples} of {total})"
    );

    // Probe-counted: the equality scans exactly the routed shard.
    let before = table.stats();
    let n = session
        .query("SELECT COUNT(*) FROM t WHERE B = 'b07'")
        .unwrap()
        .flat_count();
    assert_eq!(n, 20, "400 rows / 20 B-values");
    let after = session.engine().table("t").unwrap().stats();
    assert_eq!(
        (after.units_probed - before.units_probed) as usize,
        home_tuples,
        "equality on the outer attribute scans one shard, not {total}"
    );

    // An unconstrained scan still pays for every shard.
    let before = after;
    assert_eq!(
        session
            .query("SELECT COUNT(*) FROM t")
            .unwrap()
            .flat_count(),
        400
    );
    let after = session.engine().table("t").unwrap().stats();
    assert_eq!((after.units_probed - before.units_probed) as usize, total);

    // An IN list unions the routed shards (≤ one per value).
    let b03 = session.engine().dict().lookup("b03").unwrap();
    let shards = session
        .engine()
        .table("t")
        .unwrap()
        .routing()
        .shards_for_values(&[b07, b03]);
    let expected: usize = shards
        .iter()
        .map(|&s| {
            session
                .engine()
                .table("t")
                .unwrap()
                .sharded()
                .shard(s)
                .tuple_count()
        })
        .sum();
    let before = session.engine().table("t").unwrap().stats();
    assert_eq!(
        session
            .query("SELECT COUNT(*) FROM t WHERE B IN ('b07', 'b03')")
            .unwrap()
            .flat_count(),
        40
    );
    let after = session.engine().table("t").unwrap().stats();
    assert_eq!(
        (after.units_probed - before.units_probed) as usize,
        expected
    );
}

#[test]
fn pruned_scans_equal_unpruned_scans() {
    // The same data on a 1-shard and a 4-shard engine must answer every
    // outer-attribute query with the same flat rows — pruning may skip
    // work, never answers.
    let run = |shards: usize, sql: &str| -> Vec<Vec<u32>> {
        let engine = Engine::builder().shards(shards).build().unwrap();
        let mut session = engine.session();
        session.run("CREATE TABLE t (A, B)").unwrap();
        let rows: Vec<String> = (0..200)
            .map(|i| format!("('a{:02}', 'b{:02}')", i % 40, (i * 7) % 23))
            .collect();
        session
            .run(&format!("INSERT INTO t VALUES {}", rows.join(", ")))
            .unwrap();
        let snap = session.engine().dict().snapshot();
        let mut out: Vec<Vec<u32>> = session
            .query(sql)
            .unwrap()
            .flat_rows()
            .map(|row| {
                // Compare by resolved-string-identity, shard-count
                // independent (atom ids agree here anyway since the
                // insert order is identical, but don't rely on it).
                row.iter()
                    .map(|&a| {
                        let s = snap.resolve(a).unwrap();
                        s.bytes().fold(0u32, |h, b| h.wrapping_mul(31) + b as u32)
                    })
                    .collect()
            })
            .collect();
        out.sort_unstable();
        out
    };
    for sql in [
        "SELECT * FROM t WHERE B = 'b07'",
        "SELECT * FROM t WHERE B IN ('b01', 'b19', 'b22')",
        "SELECT A FROM t WHERE B = 'b11'",
        "SELECT * FROM t WHERE B = 'b03' AND A = 'a13'",
        "SELECT COUNT(*) FROM t WHERE B IN ('b05', 'b06')",
    ] {
        assert_eq!(run(1, sql), run(4, sql), "{sql}");
        assert_eq!(run(4, sql), run(7, sql), "{sql}");
    }
}

#[test]
fn prepared_statements_prune_per_binding() {
    let engine = sharded_engine();
    let session = engine.session();
    let mut stmt = session
        .prepare("SELECT COUNT(*) FROM t WHERE B = ?")
        .unwrap();
    // Each execution prunes to the shard of *that* call's binding.
    for b in ["b00", "b07", "b13", "b19"] {
        let atom = session.engine().dict().lookup(b).unwrap();
        let table = session.engine().table("t").unwrap();
        let home = table.routing().spec().route_value(atom);
        let home_tuples = table.sharded().shard(home).tuple_count();
        let before = table.stats();
        let cursor = stmt.query(&session, &[b]).unwrap();
        assert_eq!(cursor.flat_count(), 20);
        let after = session.engine().table("t").unwrap().stats();
        assert_eq!(
            (after.units_probed - before.units_probed) as usize,
            home_tuples,
            "binding {b} prunes to its own shard"
        );
    }
    // A never-interned binding is statically empty: zero probes.
    let before = session.engine().table("t").unwrap().stats();
    assert_eq!(stmt.query(&session, &["ghost"]).unwrap().flat_count(), 0);
    let after = session.engine().table("t").unwrap().stats();
    assert_eq!(after.units_probed - before.units_probed, 0);
}

#[test]
fn join_pushdown_prunes_the_owning_side() {
    let engine = Engine::builder().shards(4).build().unwrap();
    let mut session = engine.session();
    session.run("CREATE TABLE sc (Student, Course)").unwrap();
    // 240 distinct rows: student s{i} takes course c{i % 12}.
    let rows: Vec<String> = (0..240)
        .map(|i| format!("('s{i:03}', 'c{:02}')", i % 12))
        .collect();
    session
        .run(&format!("INSERT INTO sc VALUES {}", rows.join(", ")))
        .unwrap();
    session.run("CREATE TABLE cp (Course, Prof)").unwrap();
    let rows: Vec<String> = (0..12)
        .map(|i| format!("('c{i:02}', 'p{}')", i % 3))
        .collect();
    session
        .run(&format!("INSERT INTO cp VALUES {}", rows.join(", ")))
        .unwrap();

    // Course is sc's routing attribute; the optimizer pushes the
    // equality into both join sides, and sc's side prunes its scan.
    let c05 = session.engine().dict().lookup("c05").unwrap();
    let sc = session.engine().table("sc").unwrap();
    let home_tuples = sc
        .sharded()
        .shard(sc.routing().spec().route_value(c05))
        .tuple_count();
    let sc_before = sc.stats();
    let out = session
        .run("SELECT Student, Prof FROM sc JOIN cp WHERE Course = 'c05'")
        .unwrap();
    match out {
        // 20 students take c05; its prof is p2.
        Output::Relation { relation, .. } => assert_eq!(relation.flat_count(), 20),
        other => panic!("unexpected {other:?}"),
    }
    let sc_after = session.engine().table("sc").unwrap().stats();
    assert_eq!(
        (sc_after.units_probed - sc_before.units_probed) as usize,
        home_tuples,
        "the probe side scans only Course='c05''s shard"
    );
}
