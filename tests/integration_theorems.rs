//! The paper's theorems exercised across crates on generated workloads —
//! the "does the whole system obey the theory" layer.

use nf2::core::irreducible::{is_irreducible, minimum_partition};
use nf2::core::nest::{canonical_of_flat, is_canonical};
use nf2::core::prelude::*;
use nf2::deps::{check_theorem5, holds_mvd, mine_fds, mine_mvds, suggest_nest_order, Mvd};
use nf2::workload;

#[test]
fn university_data_satisfies_its_designed_mvd() {
    let w = workload::university(25, 3, 10, 2, 4, 31);
    assert!(
        holds_mvd(&w.flat, &Mvd::new([0], [1])),
        "Student ->-> Course"
    );
    assert!(holds_mvd(&w.flat, &Mvd::new([0], [2])), "Student ->-> Club");
}

#[test]
fn mined_dependencies_drive_fixed_canonical_forms() {
    let w = workload::university(30, 2, 8, 2, 4, 33);
    let fds = mine_fds(&w.flat);
    let mvds = mine_mvds(&w.flat, &fds);
    assert!(
        mvds.iter().any(|m| m.lhs == nf2::deps::AttrSet::single(0)),
        "the student MVD must be discovered: {mvds:?}"
    );
    let order = suggest_nest_order(3, &fds, &mvds);
    let canon = canonical_of_flat(&w.flat, &order);
    assert!(
        nf2::core::properties::is_fixed_on(&canon, &[0]),
        "suggested order yields a form fixed on the determinant"
    );
}

#[test]
fn theorem5_on_every_workload_family() {
    let workloads = vec![
        workload::university(15, 2, 8, 2, 4, 41),
        workload::relationship(80, 12, 12, 3, 42),
        workload::block_product(6, &[3, 3, 2], 43),
        workload::uniform(60, &[8, 8, 8], 44),
        workload::zipf(60, &[20, 20, 20], 1.2, 45),
    ];
    for w in &workloads {
        for order in NestOrder::all(w.flat.schema().arity()) {
            assert!(check_theorem5(&w.flat, &order), "{} under {order}", w.label);
        }
    }
}

#[test]
fn canonical_forms_are_canonical_and_irreducible_everywhere() {
    let workloads = vec![
        workload::relationship(100, 15, 15, 4, 51),
        workload::uniform(80, &[10, 10, 10], 52),
    ];
    for w in &workloads {
        for order in NestOrder::all(3) {
            let canon = canonical_of_flat(&w.flat, &order);
            assert!(is_canonical(&canon, &order), "{} / {order}", w.label);
            assert!(is_irreducible(&canon), "{} / {order}", w.label);
            assert_eq!(canon.expand(), w.flat, "{} / {order}", w.label);
        }
    }
}

#[test]
fn block_data_minimum_matches_block_count() {
    // Ground-truth compressibility: each generated block is one rectangle.
    let w = workload::block_product(4, &[2, 3], 61);
    let min = minimum_partition(&w.flat);
    assert_eq!(min.tuple_count(), 4);
    // And the canonical form (any order) recovers it too, since blocks
    // are value-disjoint.
    for order in NestOrder::all(2) {
        let canon = canonical_of_flat(&w.flat, &order);
        assert_eq!(canon.tuple_count(), 4, "order {order}");
    }
}

#[test]
fn incremental_build_agrees_across_every_workload_family() {
    let workloads = vec![
        workload::university(10, 2, 6, 2, 3, 71),
        workload::relationship(60, 10, 10, 3, 72),
        workload::zipf(50, &[12, 12, 12], 1.3, 73),
    ];
    for w in &workloads {
        let order = NestOrder::identity(w.flat.schema().arity());
        let mut canon = CanonicalRelation::new(w.flat.schema().clone(), order.clone()).unwrap();
        for row in w.flat.rows() {
            canon.insert(row.clone()).unwrap();
        }
        assert_eq!(
            canon.relation(),
            &canonical_of_flat(&w.flat, &order),
            "incremental == from scratch for {}",
            w.label
        );
    }
}
