SELECT Student FROM sc WHERE Course IN ('c1', 'c2')
