SELECT Student, Prof FROM sc JOIN cp WHERE Course = 'c1'
