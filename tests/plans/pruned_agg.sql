SELECT COUNT(*) FROM sc WHERE Course = 'c1'
