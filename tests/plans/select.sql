SELECT * FROM sc WHERE Course = 'c1'
