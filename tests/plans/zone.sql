SELECT * FROM sc WHERE Student = 's1' AND Course = 'c1'
