SELECT * FROM sc ORDER BY Course, Student LIMIT 3
