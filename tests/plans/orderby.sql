SELECT * FROM sc WHERE Student = 's1' ORDER BY Course DESC
