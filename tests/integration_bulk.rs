//! Integration: update streams across every maintenance path.
//!
//! One generated op trace (workload) is replayed through four engines —
//! §4 incremental batches, auto-strategy batches, the storage-layer
//! `NfTable` (WAL-logged), and the re-nest baseline — which must all
//! land on the identical canonical relation.

use nf2::core::bulk::{apply_batch, apply_batch_auto, rebuild_batch, Op};
use nf2::core::maintenance::{CanonicalRelation, CostCounter};
use nf2::core::nest::canonical_of_flat;
use nf2::prelude::*;
use nf2::workload;

fn trace_and_base() -> (workload::Workload, Vec<Op>) {
    let base = workload::university(40, 2, 15, 2, 5, 21);
    let trace = workload::op_trace(&base, 150, 35, 8);
    (base, trace)
}

#[test]
fn four_engines_agree_on_the_final_relation() {
    let (base, trace) = trace_and_base();
    let order = NestOrder::identity(3);

    // Engine 1: incremental batch on CanonicalRelation.
    let mut incremental = CanonicalRelation::from_flat(&base.flat, order.clone()).unwrap();
    let mut cost = CostCounter::new();
    apply_batch(&mut incremental, &trace, &mut cost).unwrap();

    // Engine 2: auto-strategy batch.
    let mut auto = CanonicalRelation::from_flat(&base.flat, order.clone()).unwrap();
    let mut cost2 = CostCounter::new();
    apply_batch_auto(&mut auto, &trace, &mut cost2).unwrap();

    // Engine 3: the storage table (per-op, WAL-logged).
    let dict = SharedDictionary::new();
    let table = NfTable::from_flat("sc", &base.flat, order.clone(), dict).unwrap();
    for op in &trace {
        match op {
            Op::Insert(row) => {
                table.insert_atoms(row.clone()).unwrap();
            }
            Op::Delete(row) => {
                table.delete_atoms(row).unwrap();
            }
        }
    }

    // Engine 4: the re-nest baseline.
    let baseline = rebuild_batch(
        &CanonicalRelation::from_flat(&base.flat, order.clone()).unwrap(),
        &trace,
    )
    .unwrap();

    assert_eq!(incremental.relation(), auto.relation());
    assert_eq!(*incremental.relation(), *table.relation());
    assert_eq!(incremental.relation(), baseline.relation());
    incremental.verify().unwrap();

    // And all of them equal nesting the final flat state from scratch.
    let oracle = canonical_of_flat(&incremental.relation().expand(), &order);
    assert_eq!(incremental.relation(), &oracle);
}

#[test]
fn replayed_trace_survives_checkpoint_and_reopen() {
    let (base, trace) = trace_and_base();
    let order = NestOrder::identity(3);
    let dir = std::env::temp_dir().join("nf2_integration_bulk");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let dict = SharedDictionary::new();
    let table = NfTable::from_flat("sc", &base.flat, order, dict).unwrap();
    // Checkpoint mid-stream; the rest rides the WAL.
    let (first, second) = trace.split_at(trace.len() / 2);
    for op in first {
        match op {
            Op::Insert(row) => table.insert_atoms(row.clone()).unwrap(),
            Op::Delete(row) => table.delete_atoms(row).unwrap(),
        };
    }
    table.checkpoint(&dir).unwrap();
    for op in second {
        match op {
            Op::Insert(row) => table.insert_atoms(row.clone()).unwrap(),
            Op::Delete(row) => table.delete_atoms(row).unwrap(),
        };
    }
    table.flush_wal(&dir).unwrap();
    let expected = table.relation().clone();
    drop(table);

    // The atoms in the second half were interned before the checkpoint
    // wrote the dictionary? No — fresh rows intern new ids. Reopen with a
    // fresh dictionary must still replay by atom id.
    let reopened = NfTable::open(&dir, "sc", SharedDictionary::new()).unwrap();
    assert_eq!(reopened.relation(), expected.clone());
}

#[test]
fn maintenance_cost_is_independent_of_history_length() {
    // Theorem A-4 at the stream level: per-op structural cost does not
    // trend upward as the relation absorbs more operations.
    let base = workload::relationship(400, 40, 40, 5, 33);
    let trace = workload::op_trace(&base, 300, 30, 14);
    let order = NestOrder::identity(3);
    let mut canon = CanonicalRelation::from_flat(&base.flat, order).unwrap();

    let mut first_half = CostCounter::new();
    let mut second_half = CostCounter::new();
    let (a, b) = trace.split_at(trace.len() / 2);
    apply_batch(&mut canon, a, &mut first_half).unwrap();
    apply_batch(&mut canon, b, &mut second_half).unwrap();

    let ops_a = first_half.structural_ops().max(1);
    let ops_b = second_half.structural_ops().max(1);
    let ratio = ops_b as f64 / ops_a as f64;
    assert!(
        ratio < 3.0,
        "structural ops per half should stay flat: {ops_a} then {ops_b} (ratio {ratio:.2})"
    );
}
