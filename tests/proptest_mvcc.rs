//! Concurrency property at the outermost boundary: an epoch-pinned
//! snapshot reader sees **exactly** the canonical form its epoch had
//! under a serial execution of the same §4 mutation stream — tuple for
//! tuple, shard for shard — while the writer storms away concurrently.
//!
//! The protocol being tested (see `nf2-core::mvcc`): every
//! state-changing single-row operation publishes its touched shard
//! versions behind exactly one epoch bump, and no-ops publish nothing.
//! That makes the epoch a perfect index into a serially-replayed
//! history: pin a snapshot at epoch `e`, and its per-shard tuples must
//! equal serial state `e` — no torn multi-shard states, no lost
//! updates, no reordering.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use nf2::core::schema::NestOrder;
use nf2::core::shard::ShardSpec;
use nf2::core::tuple::NfTuple;
use nf2::query::Engine;
use nf2::storage::{NfTable, SharedDictionary, TableSnapshot};

/// One random single-row mutation over a tiny value universe (small
/// enough that duplicate inserts and missing deletes — the no-op paths
/// — happen often).
#[derive(Debug, Clone)]
enum Op {
    Insert(u8, u8),
    Delete(u8, u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4, 0u8..6).prop_map(|(a, b)| Op::Insert(a, b)),
        (0u8..4, 0u8..6).prop_map(|(a, b)| Op::Delete(a, b)),
    ]
}

fn stmt_of(op: &Op) -> String {
    match op {
        Op::Insert(a, b) => format!("INSERT INTO t VALUES ('a{a}','b{b}')"),
        Op::Delete(a, b) => format!("DELETE FROM t WHERE A='a{a}' AND B='b{b}'"),
    }
}

/// A 4-shard engine with the whole value universe pre-interned in a
/// fixed order, so the serial oracle engine and the concurrent engine
/// agree atom-for-atom (tuple equality is atom equality).
fn fresh_engine() -> Engine {
    let engine = Engine::builder().shards(4).build().unwrap();
    engine
        .session()
        .run("CREATE TABLE t (A, B) NEST ORDER (A, B)")
        .unwrap();
    for a in 0..4 {
        engine.dict().intern(&format!("a{a}"));
    }
    for b in 0..6 {
        engine.dict().intern(&format!("b{b}"));
    }
    engine
}

/// The full pinned state: each shard's canonical NF² tuples, in shard
/// order.
type ShardTuples = Vec<Vec<NfTuple>>;

fn shard_tuples(snap: &TableSnapshot) -> ShardTuples {
    (0..snap.shard_count())
        .map(|s| snap.version().shard(s).tuples().to_vec())
        .collect()
}

/// `Arc<Engine>` across threads is the whole point of the subsystem.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();
};

proptest! {
    // Each case spawns a thread scope; keep the count modest (CI's
    // threaded leg reduces it further via PROPTEST_CASES).
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn snapshot_readers_see_serial_epochs_under_a_mutation_storm(
        ops in proptest::collection::vec(arb_op(), 1..40),
    ) {
        // Serial oracle: replay the ops one at a time, recording the
        // per-shard canonical tuples at every epoch. On the way, pin
        // down the protocol invariant the concurrent check relies on:
        // a single-row op bumps the epoch by exactly 0 (no-op) or 1.
        let serial = fresh_engine();
        let mut states: Vec<ShardTuples> =
            vec![shard_tuples(&serial.table("t").unwrap().snapshot())];
        {
            let mut session = serial.session();
            for op in &ops {
                let before = serial.table("t").unwrap().epoch();
                session.run(&stmt_of(op)).unwrap();
                let t = serial.table("t").unwrap();
                let after = t.epoch();
                prop_assert!(
                    after == before || after == before + 1,
                    "single-row op bumped the epoch {before} -> {after}"
                );
                if after == before + 1 {
                    states.push(shard_tuples(&t.snapshot()));
                }
            }
        }

        // Concurrent storm: one writer applies the same ops against a
        // fresh shared engine while readers continuously pin snapshots
        // and hold each one to the serial state of its exact epoch.
        let engine = Arc::new(fresh_engine());
        let done = Arc::new(AtomicBool::new(false));
        let states = Arc::new(states);
        std::thread::scope(|scope| {
            let mut readers = Vec::new();
            for _ in 0..3 {
                let engine = Arc::clone(&engine);
                let done = Arc::clone(&done);
                let states = Arc::clone(&states);
                readers.push(scope.spawn(move || {
                    let mut last = 0u64;
                    while !done.load(Ordering::Relaxed) {
                        let snap = engine.table("t").unwrap().snapshot();
                        let epoch = snap.epoch();
                        assert!(epoch >= last, "epochs are monotone per reader");
                        last = epoch;
                        let idx = epoch as usize;
                        assert!(
                            idx < states.len(),
                            "epoch {epoch} beyond the serial history"
                        );
                        assert_eq!(
                            shard_tuples(&snap),
                            states[idx],
                            "snapshot at epoch {epoch} diverged from the serial oracle"
                        );
                    }
                }));
            }
            let writer = {
                let engine = Arc::clone(&engine);
                let ops = ops.clone();
                let done = Arc::clone(&done);
                scope.spawn(move || {
                    let mut session = engine.session();
                    for op in &ops {
                        session.run(&stmt_of(op)).unwrap();
                    }
                    done.store(true, Ordering::Relaxed);
                })
            };
            writer.join().unwrap();
            for r in readers {
                r.join().unwrap();
            }
        });

        // The storm drained: the live epoch is the last serial state.
        let t = engine.table("t").unwrap();
        prop_assert_eq!(t.epoch() as usize, states.len() - 1);
        prop_assert_eq!(
            shard_tuples(&t.snapshot()),
            states.last().unwrap().clone()
        );
    }

    /// The routed write pipeline: N writers storm N *distinct* shards
    /// concurrently. Ops on different shards commute, so every shard
    /// must march through exactly its own serial state sequence — any
    /// pinned snapshot is, shard for shard, a state from that shard's
    /// serial history, and the drained table is every shard's serial
    /// final state. Concurrent commits may coalesce into one epoch
    /// bump, so the live epoch is bounded by (not equal to) the number
    /// of effective state transitions.
    #[test]
    fn distinct_shard_writers_match_per_shard_serial_oracles(
        ops in proptest::collection::vec(arb_op(), 4..60),
    ) {
        let engine = Arc::new(fresh_engine());
        let shard_count = {
            let snap = engine.table("t").unwrap().snapshot();
            snap.shard_count()
        };

        // Partition the stream by routed shard: each writer thread owns
        // one shard's ops, so no two writers ever contend on a lane.
        let route = |a: u8, b: u8| -> usize {
            let row = vec![
                engine.dict().lookup(&format!("a{a}")).unwrap(),
                engine.dict().lookup(&format!("b{b}")).unwrap(),
            ];
            engine.table("t").unwrap().routing().route_row(&row)
        };
        let mut per_shard: Vec<Vec<Op>> = vec![Vec::new(); shard_count];
        for op in &ops {
            let (Op::Insert(a, b) | Op::Delete(a, b)) = *op;
            per_shard[route(a, b)].push(op.clone());
        }

        // Serial oracle per shard: replay that shard's ops alone and
        // record every state the shard passes through (consecutive
        // duplicates — the no-op paths — collapse, so transitions count
        // exactly the state-changing ops).
        let mut serial_states: Vec<Vec<Vec<NfTuple>>> = Vec::new();
        for (s, shard_ops) in per_shard.iter().enumerate() {
            let oracle = fresh_engine();
            let mut session = oracle.session();
            let shard_of = |e: &Engine| {
                e.table("t").unwrap().snapshot().version().shard(s).tuples().to_vec()
            };
            let mut states = vec![shard_of(&oracle)];
            for op in shard_ops {
                session.run(&stmt_of(op)).unwrap();
                let st = shard_of(&oracle);
                if Some(&st) != states.last() {
                    states.push(st);
                }
            }
            serial_states.push(states);
        }
        let serial_states = Arc::new(serial_states);

        // Storm: one writer per non-empty shard, readers pinning
        // snapshots throughout and holding every shard to its own
        // serial history — no torn states, no lost updates.
        let done = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            let mut readers = Vec::new();
            for _ in 0..2 {
                let engine = Arc::clone(&engine);
                let done = Arc::clone(&done);
                let serial_states = Arc::clone(&serial_states);
                readers.push(scope.spawn(move || {
                    let mut last = 0u64;
                    while !done.load(Ordering::Relaxed) {
                        let snap = engine.table("t").unwrap().snapshot();
                        let epoch = snap.epoch();
                        assert!(epoch >= last, "epochs are monotone per reader");
                        last = epoch;
                        for (s, states) in serial_states.iter().enumerate() {
                            let tuples = snap.version().shard(s).tuples().to_vec();
                            assert!(
                                states.contains(&tuples),
                                "shard {s} pinned at epoch {epoch} is not a serial state"
                            );
                        }
                    }
                }));
            }
            let mut writers = Vec::new();
            for shard_ops in per_shard.iter().filter(|v| !v.is_empty()) {
                let engine = Arc::clone(&engine);
                let shard_ops = shard_ops.clone();
                writers.push(scope.spawn(move || {
                    let mut session = engine.session();
                    for op in &shard_ops {
                        session.run(&stmt_of(op)).unwrap();
                    }
                }));
            }
            for w in writers {
                w.join().unwrap();
            }
            done.store(true, Ordering::Relaxed);
            for r in readers {
                r.join().unwrap();
            }
        });

        // Drained: every shard sits at its serial final state, and the
        // epoch respects the coalescing bound (at least one bump when
        // anything changed, never more than the effective transitions).
        let t = engine.table("t").unwrap();
        let snap = t.snapshot();
        for (s, states) in serial_states.iter().enumerate() {
            prop_assert_eq!(
                snap.version().shard(s).tuples().to_vec(),
                states.last().unwrap().clone(),
                "shard {} did not drain to its serial final state", s
            );
        }
        let effective: usize = serial_states.iter().map(|s| s.len() - 1).sum();
        let epoch = t.epoch() as usize;
        prop_assert!(epoch <= effective, "epoch {} > {} transitions", epoch, effective);
        prop_assert!(effective == 0 || epoch >= 1, "changes happened but no bump");
    }
}

proptest! {
    // Crash recovery touches the filesystem on every op: keep the case
    // count low (CI reduces it further via PROPTEST_CASES).
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Group-commit durability: flush after every op, cut the WAL at an
    /// arbitrary byte, and replay. Recovery must land on **exactly** the
    /// state of the largest durable boundary at or below the cut — the
    /// last durably committed prefix — never a torn suffix, never a lost
    /// durable op.
    #[test]
    fn truncated_wal_replays_the_last_durable_prefix(
        ops in proptest::collection::vec(arb_op(), 1..24),
        cut_seed in any::<u64>(),
    ) {
        let dir = std::env::temp_dir().join("nf2_proptest_wal_crash");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        // Pre-intern the whole value universe so the checkpointed meta
        // carries every atom the WAL rows will reference on replay.
        let dict = SharedDictionary::new();
        for a in 0..4 {
            dict.intern(&format!("a{a}"));
        }
        for b in 0..6 {
            dict.intern(&format!("b{b}"));
        }
        let t = NfTable::create_sharded(
            "t",
            &["A", "B"],
            NestOrder::identity(2),
            ShardSpec::hash(4).unwrap(),
            dict,
        )
        .unwrap();
        t.insert_row(&["a0", "b0"]).unwrap();
        t.checkpoint(&dir).unwrap();

        // Apply the stream, flushing after every op and recording each
        // durable boundary: (WAL byte size, the state it pins).
        let wal = dir.join("t.wal");
        let mut boundaries = vec![(0u64, t.relation())];
        for op in &ops {
            match op {
                Op::Insert(a, b) => {
                    t.insert_row(&[&format!("a{a}"), &format!("b{b}")]).unwrap();
                }
                Op::Delete(a, b) => {
                    t.delete_row(&[&format!("a{a}"), &format!("b{b}")]).unwrap();
                }
            }
            t.flush_wal(&dir).unwrap();
            let size = std::fs::metadata(&wal).unwrap().len();
            boundaries.push((size, t.relation()));
        }
        drop(t); // crash

        // Cut the log at an arbitrary byte: everything past the cut —
        // including a torn entry straddling it — must vanish on replay.
        let bytes = std::fs::read(&wal).unwrap();
        let cut = (cut_seed % (bytes.len() as u64 + 1)) as usize;
        std::fs::write(&wal, &bytes[..cut]).unwrap();

        let expected = boundaries
            .iter()
            .rev()
            .find(|(size, _)| *size <= cut as u64)
            .map(|(_, state)| Arc::clone(state))
            .unwrap();
        let reopened = NfTable::open(&dir, "t", SharedDictionary::new()).unwrap();
        prop_assert_eq!(reopened.relation(), expected);
    }
}
