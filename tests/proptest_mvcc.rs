//! Concurrency property at the outermost boundary: an epoch-pinned
//! snapshot reader sees **exactly** the canonical form its epoch had
//! under a serial execution of the same §4 mutation stream — tuple for
//! tuple, shard for shard — while the writer storms away concurrently.
//!
//! The protocol being tested (see `nf2-core::mvcc`): every
//! state-changing single-row operation publishes its touched shard
//! versions behind exactly one epoch bump, and no-ops publish nothing.
//! That makes the epoch a perfect index into a serially-replayed
//! history: pin a snapshot at epoch `e`, and its per-shard tuples must
//! equal serial state `e` — no torn multi-shard states, no lost
//! updates, no reordering.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use nf2::core::tuple::NfTuple;
use nf2::query::Engine;
use nf2::storage::TableSnapshot;

/// One random single-row mutation over a tiny value universe (small
/// enough that duplicate inserts and missing deletes — the no-op paths
/// — happen often).
#[derive(Debug, Clone)]
enum Op {
    Insert(u8, u8),
    Delete(u8, u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4, 0u8..6).prop_map(|(a, b)| Op::Insert(a, b)),
        (0u8..4, 0u8..6).prop_map(|(a, b)| Op::Delete(a, b)),
    ]
}

fn stmt_of(op: &Op) -> String {
    match op {
        Op::Insert(a, b) => format!("INSERT INTO t VALUES ('a{a}','b{b}')"),
        Op::Delete(a, b) => format!("DELETE FROM t WHERE A='a{a}' AND B='b{b}'"),
    }
}

/// A 4-shard engine with the whole value universe pre-interned in a
/// fixed order, so the serial oracle engine and the concurrent engine
/// agree atom-for-atom (tuple equality is atom equality).
fn fresh_engine() -> Engine {
    let engine = Engine::builder().shards(4).build().unwrap();
    engine
        .session()
        .run("CREATE TABLE t (A, B) NEST ORDER (A, B)")
        .unwrap();
    for a in 0..4 {
        engine.dict().intern(&format!("a{a}"));
    }
    for b in 0..6 {
        engine.dict().intern(&format!("b{b}"));
    }
    engine
}

/// The full pinned state: each shard's canonical NF² tuples, in shard
/// order.
type ShardTuples = Vec<Vec<NfTuple>>;

fn shard_tuples(snap: &TableSnapshot) -> ShardTuples {
    (0..snap.shard_count())
        .map(|s| snap.version().shard(s).tuples().to_vec())
        .collect()
}

/// `Arc<Engine>` across threads is the whole point of the subsystem.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();
};

proptest! {
    // Each case spawns a thread scope; keep the count modest (CI's
    // threaded leg reduces it further via PROPTEST_CASES).
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn snapshot_readers_see_serial_epochs_under_a_mutation_storm(
        ops in proptest::collection::vec(arb_op(), 1..40),
    ) {
        // Serial oracle: replay the ops one at a time, recording the
        // per-shard canonical tuples at every epoch. On the way, pin
        // down the protocol invariant the concurrent check relies on:
        // a single-row op bumps the epoch by exactly 0 (no-op) or 1.
        let serial = fresh_engine();
        let mut states: Vec<ShardTuples> =
            vec![shard_tuples(&serial.table("t").unwrap().snapshot())];
        {
            let mut session = serial.session();
            for op in &ops {
                let before = serial.table("t").unwrap().epoch();
                session.run(&stmt_of(op)).unwrap();
                let t = serial.table("t").unwrap();
                let after = t.epoch();
                prop_assert!(
                    after == before || after == before + 1,
                    "single-row op bumped the epoch {before} -> {after}"
                );
                if after == before + 1 {
                    states.push(shard_tuples(&t.snapshot()));
                }
            }
        }

        // Concurrent storm: one writer applies the same ops against a
        // fresh shared engine while readers continuously pin snapshots
        // and hold each one to the serial state of its exact epoch.
        let engine = Arc::new(fresh_engine());
        let done = Arc::new(AtomicBool::new(false));
        let states = Arc::new(states);
        std::thread::scope(|scope| {
            let mut readers = Vec::new();
            for _ in 0..3 {
                let engine = Arc::clone(&engine);
                let done = Arc::clone(&done);
                let states = Arc::clone(&states);
                readers.push(scope.spawn(move || {
                    let mut last = 0u64;
                    while !done.load(Ordering::Relaxed) {
                        let snap = engine.table("t").unwrap().snapshot();
                        let epoch = snap.epoch();
                        assert!(epoch >= last, "epochs are monotone per reader");
                        last = epoch;
                        let idx = epoch as usize;
                        assert!(
                            idx < states.len(),
                            "epoch {epoch} beyond the serial history"
                        );
                        assert_eq!(
                            shard_tuples(&snap),
                            states[idx],
                            "snapshot at epoch {epoch} diverged from the serial oracle"
                        );
                    }
                }));
            }
            let writer = {
                let engine = Arc::clone(&engine);
                let ops = ops.clone();
                let done = Arc::clone(&done);
                scope.spawn(move || {
                    let mut session = engine.session();
                    for op in &ops {
                        session.run(&stmt_of(op)).unwrap();
                    }
                    done.store(true, Ordering::Relaxed);
                })
            };
            writer.join().unwrap();
            for r in readers {
                r.join().unwrap();
            }
        });

        // The storm drained: the live epoch is the last serial state.
        let t = engine.table("t").unwrap();
        prop_assert_eq!(t.epoch() as usize, states.len() - 1);
        prop_assert_eq!(
            shard_tuples(&t.snapshot()),
            states.last().unwrap().clone()
        );
    }
}
