//! Property tests at the outermost boundary: random DML streams against
//! a shadow 1NF model, exercising parser, executor, storage and the §4
//! maintenance together.

use std::collections::BTreeSet;

use proptest::prelude::*;

use nf2::core::nest::canonical_of_flat;
use nf2::core::schema::NestOrder;
use nf2::query::{Database, Output};

/// One random DML operation over a tiny value universe.
#[derive(Debug, Clone)]
enum Op {
    Insert(u8, u8),
    Delete(u8, u8),
    DeleteByA(u8),
    SelectByA(u8),
    ShowFlat,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..5, 0u8..5).prop_map(|(a, b)| Op::Insert(a, b)),
        (0u8..5, 0u8..5).prop_map(|(a, b)| Op::Delete(a, b)),
        (0u8..5).prop_map(Op::DeleteByA),
        (0u8..5).prop_map(Op::SelectByA),
        Just(Op::ShowFlat),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The DML engine tracks a shadow set-of-pairs model exactly, and its
    /// stored relation is always the canonical form of that shadow.
    #[test]
    fn dml_stream_matches_shadow_model(ops in proptest::collection::vec(arb_op(), 0..60)) {
        let mut db = Database::new();
        db.run("CREATE TABLE t (A, B) NEST ORDER (A, B)").unwrap();
        let mut shadow: BTreeSet<(u8, u8)> = BTreeSet::new();

        for op in ops {
            match op {
                Op::Insert(a, b) => {
                    let out = db
                        .run(&format!("INSERT INTO t VALUES ('a{a}','b{b}')"))
                        .unwrap();
                    let affected = match out {
                        Output::Affected(n) => n,
                        other => panic!("unexpected {other:?}"),
                    };
                    prop_assert_eq!(affected, usize::from(shadow.insert((a, b))));
                }
                Op::Delete(a, b) => {
                    let out = db
                        .run(&format!("DELETE FROM t WHERE A='a{a}' AND B='b{b}'"))
                        .unwrap();
                    let affected = match out {
                        Output::Affected(n) => n,
                        other => panic!("unexpected {other:?}"),
                    };
                    prop_assert_eq!(affected, usize::from(shadow.remove(&(a, b))));
                }
                Op::DeleteByA(a) => {
                    let out = db.run(&format!("DELETE FROM t WHERE A='a{a}'")).unwrap();
                    let affected = match out {
                        Output::Affected(n) => n,
                        other => panic!("unexpected {other:?}"),
                    };
                    let before = shadow.len();
                    shadow.retain(|(x, _)| *x != a);
                    prop_assert_eq!(affected, before - shadow.len());
                }
                Op::SelectByA(a) => {
                    let out = db
                        .run(&format!("SELECT B FROM t WHERE A='a{a}'"))
                        .unwrap();
                    let rel = match out {
                        Output::Relation { relation, .. } => relation,
                        other => panic!("unexpected {other:?}"),
                    };
                    let expected: BTreeSet<u8> = shadow
                        .iter()
                        .filter(|(x, _)| *x == a)
                        .map(|(_, y)| *y)
                        .collect();
                    prop_assert_eq!(rel.expand().len(), expected.len());
                }
                Op::ShowFlat => {
                    let out = db.run("SHOW FLAT t").unwrap();
                    let rel = match out {
                        Output::Relation { relation, .. } => relation,
                        other => panic!("unexpected {other:?}"),
                    };
                    prop_assert_eq!(rel.expand().len(), shadow.len());
                }
            }
            // Global invariant: stored relation == canonical(shadow).
            let table = db.table("t").unwrap();
            prop_assert_eq!(table.flat_count(), shadow.len() as u128);
        }

        // Final strong check: rebuild the canonical form of the shadow
        // through the dictionary and compare relations exactly.
        let dict = db.dict().clone();
        let schema = db.table("t").unwrap().schema().clone();
        let flat = nf2::core::relation::FlatRelation::from_rows(
            schema,
            shadow.iter().map(|(a, b)| {
                vec![
                    dict.lookup(&format!("a{a}")).expect("interned by INSERT"),
                    dict.lookup(&format!("b{b}")).expect("interned by INSERT"),
                ]
            }),
        )
        .unwrap();
        let oracle = canonical_of_flat(&flat, &NestOrder::identity(2));
        prop_assert_eq!(*db.table("t").unwrap().relation(), oracle);
    }

    /// Transactions: any mutation stream inside BEGIN … ROLLBACK leaves
    /// the database exactly as it was; the same stream inside
    /// BEGIN … COMMIT matches running it in autocommit.
    #[test]
    fn rollback_is_identity_and_commit_is_transparent(
        seed_rows in proptest::collection::vec((0u8..4, 0u8..4), 0..8),
        ops in proptest::collection::vec(arb_op(), 0..25),
    ) {
        let script_of = |ops: &[Op]| -> Vec<String> {
            ops.iter()
                .filter_map(|op| match op {
                    Op::Insert(a, b) => {
                        Some(format!("INSERT INTO t VALUES ('a{a}','b{b}')"))
                    }
                    Op::Delete(a, b) => {
                        Some(format!("DELETE FROM t WHERE A='a{a}' AND B='b{b}'"))
                    }
                    Op::DeleteByA(a) => Some(format!("DELETE FROM t WHERE A='a{a}'")),
                    // Queries are irrelevant to transactional state.
                    Op::SelectByA(_) | Op::ShowFlat => None,
                })
                .collect()
        };

        let setup = |db: &mut Database| {
            db.run("CREATE TABLE t (A, B) NEST ORDER (B, A)").unwrap();
            for (a, b) in &seed_rows {
                db.run(&format!("INSERT INTO t VALUES ('a{a}','b{b}')")).unwrap();
            }
        };

        // Rollback: identity.
        let mut db = Database::new();
        setup(&mut db);
        let before = db.table("t").unwrap().relation().clone();
        db.run("BEGIN").unwrap();
        for stmt in script_of(&ops) {
            db.run(&stmt).unwrap();
        }
        db.run("ROLLBACK").unwrap();
        prop_assert_eq!(db.table("t").unwrap().relation(), before.clone());

        // Commit: same final state as autocommit.
        let mut committed = Database::new();
        setup(&mut committed);
        committed.run("BEGIN").unwrap();
        for stmt in script_of(&ops) {
            committed.run(&stmt).unwrap();
        }
        committed.run("COMMIT").unwrap();

        let mut autocommit = Database::new();
        setup(&mut autocommit);
        for stmt in script_of(&ops) {
            autocommit.run(&stmt).unwrap();
        }
        prop_assert_eq!(
            committed.table("t").unwrap().relation().expand().into_rows(),
            autocommit.table("t").unwrap().relation().expand().into_rows()
        );
    }

    /// Parser round-trip: every generated statement parses, and malformed
    /// mutations never corrupt the table.
    #[test]
    fn malformed_statements_never_corrupt_state(
        a in 0u8..5,
        junk in "[a-z ]{0,20}",
    ) {
        let mut db = Database::new();
        db.run("CREATE TABLE t (A, B)").unwrap();
        db.run(&format!("INSERT INTO t VALUES ('a{a}','b0')")).unwrap();
        let before = db.table("t").unwrap().relation().clone();
        // Fire junk at the parser; errors must not touch the table.
        let _ = db.run(&format!("INSERT INTO t VALUES ({junk})"));
        let _ = db.run(&junk);
        let _ = db.run("DELETE FROM missing WHERE A='a0'");
        prop_assert_eq!(db.table("t").unwrap().relation(), before.clone());
    }
}
