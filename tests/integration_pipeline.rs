//! Cross-crate integration: workload → core → algebra → query, checked
//! against flat (1NF) oracles end to end.

use std::collections::BTreeSet;

use nf2::algebra::{natural_join, project, select_box, union};
use nf2::core::nest::canonical_of_flat;
use nf2::core::prelude::*;
use nf2::query::Engine;
use nf2::workload;

#[test]
fn workload_to_canonical_to_algebra_pipeline() {
    let w = workload::university(40, 3, 12, 2, 5, 7);
    let order = NestOrder::identity(3);
    let nfr = canonical_of_flat(&w.flat, &order);
    assert!(
        nfr.tuple_count() < w.flat.len(),
        "entity data must compress"
    );

    // Selection on a student, rectangle level.
    let some_student = *w.flat.rows().next().unwrap().first().unwrap();
    let selected = select_box(&nfr, &[(0, ValueSet::singleton(some_student))]).unwrap();
    let expected: BTreeSet<_> = w
        .flat
        .rows()
        .filter(|r| r[0] == some_student)
        .cloned()
        .collect();
    assert_eq!(selected.expand().into_rows(), expected);

    // Projection onto courses, flat-semantics dedup.
    let courses = project(&nfr, &[1], &NestOrder::identity(1)).unwrap();
    let expected: BTreeSet<Vec<Atom>> = w.flat.rows().map(|r| vec![r[1]]).collect();
    assert_eq!(courses.expand().into_rows(), expected);
}

#[test]
fn join_against_flat_oracle() {
    let w = workload::university(15, 2, 8, 1, 3, 9);
    let order = NestOrder::identity(3);
    let r1 = canonical_of_flat(&w.flat, &order);

    // Second relation: course difficulty.
    let mut dict = Dictionary::new();
    let d_easy = dict.intern("easy");
    let d_hard = dict.intern("hard");
    let schema = Schema::new("CD", &["Course", "Difficulty"]).unwrap();
    let courses: BTreeSet<Atom> = w.flat.rows().map(|r| r[1]).collect();
    let cd_flat = FlatRelation::from_rows(
        schema,
        courses
            .iter()
            .enumerate()
            .map(|(i, &c)| vec![c, if i % 2 == 0 { d_easy } else { d_hard }]),
    )
    .unwrap();
    let cd = canonical_of_flat(&cd_flat, &NestOrder::identity(2));

    let joined = natural_join(&r1, &cd).unwrap();
    // Oracle: flat nested-loop join.
    let mut expected = BTreeSet::new();
    for l in w.flat.rows() {
        for r in cd_flat.rows() {
            if l[1] == r[0] {
                expected.insert(vec![l[0], l[1], l[2], r[1]]);
            }
        }
    }
    assert_eq!(joined.expand().into_rows(), expected);
    assert!(joined.validate().is_ok());
}

#[test]
fn union_against_flat_oracle() {
    let a = workload::relationship(60, 10, 10, 3, 1);
    let b = workload::relationship(60, 10, 10, 3, 2);
    let order = NestOrder::identity(3);
    let ra = canonical_of_flat(&a.flat, &order);
    let rb = canonical_of_flat(&b.flat, &order);
    let u = union(&ra, &rb, &order).unwrap();
    let mut expected = a.flat.clone().into_rows();
    expected.extend(b.flat.clone().into_rows());
    assert_eq!(u.expand().into_rows(), expected);
}

#[test]
fn query_engine_matches_direct_core_updates() {
    // The same operation stream through (a) the DML engine and (b) direct
    // core maintenance must give identical relations.
    let engine = Engine::new();
    let mut db = engine.session();
    db.run("CREATE TABLE t (A, B) NEST ORDER (A, B)").unwrap();

    let schema = Schema::new("t", &["A", "B"]).unwrap();
    let mut canon = CanonicalRelation::new(schema, NestOrder::identity(2)).unwrap();

    let pairs = [
        ("x1", "y1"),
        ("x2", "y1"),
        ("x1", "y2"),
        ("x3", "y3"),
        ("x2", "y2"),
    ];
    for (a, b) in pairs {
        db.run(&format!("INSERT INTO t VALUES ('{a}','{b}')"))
            .unwrap();
        let aa = db.engine().dict().lookup(a).unwrap();
        let bb = db.engine().dict().lookup(b).unwrap();
        canon.insert(vec![aa, bb]).unwrap();
    }
    db.run("DELETE FROM t WHERE A = 'x1' AND B = 'y1'").unwrap();
    let x1 = db.engine().dict().lookup("x1").unwrap();
    let y1 = db.engine().dict().lookup("y1").unwrap();
    canon.delete(&[x1, y1]).unwrap();

    assert_eq!(
        *db.engine().table("t").unwrap().relation(),
        *canon.relation()
    );
}

#[test]
fn select_statement_matches_algebra_directly() {
    let engine = Engine::new();
    let mut db = engine.session();
    db.run_script(
        "CREATE TABLE sc (Student, Course);
         INSERT INTO sc VALUES ('s1','c1'), ('s2','c1'), ('s1','c2'), ('s3','c3');",
    )
    .unwrap();
    let out = db
        .run("SELECT Student FROM sc WHERE Course = 'c1'")
        .unwrap();
    let rel = match out {
        nf2::query::Output::Relation { relation, .. } => relation,
        other => panic!("expected relation, got {other:?}"),
    };
    let c1 = db.engine().dict().lookup("c1").unwrap();
    let direct = project(
        &select_box(
            &db.engine().table("sc").unwrap().relation(),
            &[(1, ValueSet::singleton(c1))],
        )
        .unwrap(),
        &[0],
        &NestOrder::identity(1),
    )
    .unwrap();
    assert_eq!(rel.expand(), direct.expand());
}
