//! Segment-subsystem acceptance (PR 7): ordered scans over sorted
//! columnar segments, the k-way merge top-k, and zone-map segment
//! skipping — all probe-counted through the SQL surface.
//!
//! Three acceptance bars:
//!
//! * `ORDER BY <sort-key prefix> LIMIT k` over fresh segments runs the
//!   streaming k-way merge: one probe-counted scan per shard, stopping
//!   after ~(k + shards) pulls instead of draining the store;
//! * a §4 point op marks the routed shard's segments stale and the
//!   *same* SQL silently falls back to the bounded heap — identical
//!   tuples, full-scan probes;
//! * an equality on a **non-routing** attribute skips every segment
//!   whose zone `[min, max]` cannot contain the value, charged to the
//!   `segments_skipped` counter, without changing any answer.

use nf2::core::schema::NestOrder;
use nf2::core::shard::ShardSpec;
use nf2::query::Engine;
use nf2::storage::NfTable;

/// An engine over `groups` canonical tuples on `shards` shards with
/// fresh segments: unique zero-padded outer key `b<g>` per group,
/// `width` inner `a…` values each, the whole universe interned in
/// sorted order **before** the load so the dictionary is id-ordered
/// (the merge path's dynamic precondition), then bulk-loaded through
/// the kernel rebuild path (which emits the segments).
fn segmented_engine(groups: usize, width: usize, shards: usize) -> Engine {
    let engine = Engine::builder().shards(shards).build().unwrap();
    let rows: Vec<[String; 2]> = (0..groups)
        .flat_map(|g| {
            (0..width).map(move |j| [format!("a{:05}", g * width + j), format!("b{g:04}")])
        })
        .collect();
    for r in &rows {
        engine.dict().intern(&r[0]);
    }
    for g in 0..groups {
        engine.dict().intern(&format!("b{g:04}"));
    }
    let refs: Vec<Vec<&str>> = rows
        .iter()
        .map(|r| vec![r[0].as_str(), r[1].as_str()])
        .collect();
    let table = NfTable::bulk_load_strs_sharded(
        "t",
        &["A", "B"],
        refs,
        NestOrder::identity(2),
        ShardSpec::hash(shards).unwrap(),
        engine.dict().clone(),
    )
    .unwrap();
    engine.attach_table(table).unwrap();
    assert_eq!(engine.table("t").unwrap().sharded().tuple_count(), groups);
    engine
}

/// Resolves a cursor's tuples to strings, one sorted vec per component.
fn rows_of(engine: &mut Engine, sql: &str) -> Vec<Vec<Vec<String>>> {
    let session = engine.session();
    let snap = session.engine().dict().snapshot();
    session
        .query(sql)
        .unwrap()
        .map(|t| {
            t.as_tuple()
                .components()
                .iter()
                .map(|c| {
                    c.as_slice()
                        .iter()
                        .map(|&a| snap.resolve(a).unwrap().to_owned())
                        .collect()
                })
                .collect()
        })
        .collect()
}

#[test]
fn merge_topk_stops_early_and_matches_the_sorted_oracle() {
    let mut engine = segmented_engine(500, 3, 4);
    let sql = "SELECT * FROM t ORDER BY B, A LIMIT 7";

    let before = engine.table("t").unwrap().stats();
    let merged = rows_of(&mut engine, sql);
    let after = engine.table("t").unwrap().stats();

    // One probe-counted scan per shard, each stopped after a handful of
    // pulls — nowhere near the 500 stored tuples.
    assert_eq!(after.lookups - before.lookups, 4, "one scan per shard");
    let probed = after.units_probed - before.units_probed;
    assert!(
        probed < 50,
        "the merge must stop early: {probed} of 500 tuples probed"
    );

    // Oracle: group g surfaces as ({its a's}, {b<g>}) and the unique
    // zero-padded outer keys sort textually — the top 7 are b0000…b0006.
    assert_eq!(merged.len(), 7);
    for (i, t) in merged.iter().enumerate() {
        assert_eq!(t[1], vec![format!("b{i:04}")]);
        assert_eq!(t[0].len(), 3, "each group keeps its 3 inner values");
    }
}

#[test]
fn point_maintenance_falls_back_to_the_heap_with_identical_results() {
    let mut engine = segmented_engine(300, 2, 4);
    let sql = "SELECT * FROM t ORDER BY B, A LIMIT 5";
    let merged = rows_of(&mut engine, sql);

    // A §4 point insert (values sorting after the whole universe, so
    // the dictionary stays id-ordered and the top-5 answer unchanged)
    // marks exactly the routed shard's segments stale.
    engine
        .session()
        .run("INSERT INTO t VALUES ('zz_a', 'zz_b')")
        .unwrap();
    let t = engine.table("t").unwrap();
    let stale: Vec<usize> = (0..t.shard_count())
        .filter(|&s| !t.sharded().shard_segments(s).is_fresh())
        .collect();
    assert_eq!(stale.len(), 1, "one point op staleness-marks one shard");

    let before = engine.table("t").unwrap().stats();
    let heaped = rows_of(&mut engine, sql);
    let after = engine.table("t").unwrap().stats();
    assert_eq!(heaped, merged, "the fallback changes cost, never answers");
    assert_eq!(
        after.units_probed - before.units_probed,
        301,
        "the bounded heap drains every stored tuple"
    );
    assert_eq!(after.lookups - before.lookups, 1, "one unrestricted scan");
}

#[test]
fn zone_maps_skip_segments_on_a_non_routing_equality() {
    // Clustered data: A values strictly increase over (group, row), so
    // the canonical (B, A) sort gives each segment a tight A-range and
    // an A-equality — which cannot shard-prune, A does not route — can
    // skip every segment whose zone excludes the value.
    let engine = segmented_engine(512, 2, 4);
    engine.table("t").unwrap().set_segment_rows(16);
    let t = engine.table("t").unwrap();
    let total_segments: usize = (0..t.shard_count())
        .map(|s| t.sharded().shard_segments(s).segment_count())
        .sum();
    assert!(total_segments >= 16, "re-tiling produced {total_segments}");

    let before = engine.table("t").unwrap().stats();
    let n = {
        let session = engine.session();
        session
            .query("SELECT COUNT(*) FROM t WHERE A = 'a00500'")
            .unwrap()
            .flat_count()
    };
    let after = engine.table("t").unwrap().stats();
    assert_eq!(n, 1, "A values are unique");
    let skipped = (after.segments_skipped - before.segments_skipped) as usize;
    assert!(
        skipped * 2 >= total_segments,
        "zone maps must skip at least half the segments: {skipped}/{total_segments}"
    );
    let probed = after.units_probed - before.units_probed;
    assert!(
        (probed as usize) < 512 / 2,
        "skipped segments are never probed: {probed} of 512"
    );

    // Staleness disables skipping on the touched shard but never
    // changes the answer: the zoned scan falls back to full slices
    // there and still re-filters through the enclosing selection.
    engine
        .session()
        .run("INSERT INTO t VALUES ('zz_a', 'zz_b')")
        .unwrap();
    let before = engine.table("t").unwrap().stats();
    let n = {
        let session = engine.session();
        session
            .query("SELECT COUNT(*) FROM t WHERE A = 'a00500'")
            .unwrap()
            .flat_count()
    };
    let after = engine.table("t").unwrap().stats();
    assert_eq!(n, 1, "stale shards re-filter instead of skipping");
    let skipped_stale = (after.segments_skipped - before.segments_skipped) as usize;
    assert!(
        skipped_stale < skipped,
        "the stale shard stops zone-skipping: {skipped_stale} < {skipped}"
    );
}

#[test]
fn explain_reports_merge_pruning_and_skip_counts() {
    let engine = segmented_engine(256, 2, 4);
    engine.table("t").unwrap().set_segment_rows(8);
    let session = engine.session();

    // The merge-eligible shape names its operator and limit.
    let mut prep = session
        .prepare("SELECT * FROM t ORDER BY B, A LIMIT 3")
        .unwrap();
    let text = prep.explain(&session).unwrap();
    assert!(
        text.contains("streaming k-way segment merge, limit 3"),
        "{text}"
    );

    // A routed + zoned scan prints its pruning predicate on the scan
    // node and the dynamic shard/segment-skip counts per table.
    let mut prep = session
        .prepare("SELECT COUNT(*) FROM t WHERE B = 'b0100' AND A = 'a00200'")
        .unwrap();
    let text = prep.explain(&session).unwrap();
    assert!(text.contains("prune B∈#"), "routing predicate: {text}");
    assert!(text.contains("zone "), "zone predicates: {text}");
    assert!(text.contains("\npruning:"), "dynamic section: {text}");
    assert!(text.contains("t: 1/4 shard(s)"), "shard counts: {text}");
    assert!(text.contains("segments skipped"), "segment counts: {text}");

    // A DESC key breaks merge eligibility: the operator line says so.
    let mut prep = session
        .prepare("SELECT * FROM t ORDER BY B DESC, A LIMIT 3")
        .unwrap();
    let text = prep.explain(&session).unwrap();
    assert!(text.contains("top-3 bounded heap"), "{text}");
}

#[test]
fn multi_attribute_order_by_ranks_by_both_keys() {
    // Mixed-direction multi-key ORDER BY through the parser, planner
    // and executor: B DESC is not merge-eligible, so this pins the
    // multi-key comparator of the sort/heap path, while B ASC above
    // pins the merge path — both against the same textual oracle.
    let mut engine = segmented_engine(40, 2, 4);
    let desc = rows_of(&mut engine, "SELECT * FROM t ORDER BY B DESC, A LIMIT 4");
    assert_eq!(desc.len(), 4);
    for (i, t) in desc.iter().enumerate() {
        assert_eq!(t[1], vec![format!("b{:04}", 39 - i)]);
    }

    // Unlimited multi-key ASC: the full ordered stream is the oracle
    // sequence, whatever path produced it.
    let asc = rows_of(&mut engine, "SELECT * FROM t ORDER BY B, A");
    assert_eq!(asc.len(), 40);
    for (i, t) in asc.iter().enumerate() {
        assert_eq!(t[1], vec![format!("b{i:04}")]);
    }
}
