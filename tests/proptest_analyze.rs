//! Property tests pinning `EXPLAIN ANALYZE` exactness at the outermost
//! boundary: for random workloads and a family of query shapes, the
//! per-operator `actual rows=` annotations must equal what an
//! independent cursor drain of the same statement yields, and each
//! scan's actuals must equal that table's `units_probed` delta read
//! from one whole [`TableStats`] snapshot pair around the ANALYZE run
//! (the counters tear field-wise — see the type's tearing note). Both
//! invariants are checked sharded (4 hash shards, where a merge path's
//! per-shard pipelines sum into shared tallies) and unsharded.

use proptest::prelude::*;

use nf2::query::{Engine, Output};

/// One query shape from the family ANALYZE must account for exactly.
#[derive(Debug, Clone)]
enum Q {
    /// Full scan: `SELECT * FROM sc`.
    Scan,
    /// Point lookup, possibly on a never-inserted (even never-interned)
    /// course value — the statically-empty path.
    Point(u8),
    /// Join with a pushed-down dimension predicate.
    Join(u8),
    /// ORDER BY + LIMIT: the top-k / merge order paths.
    TopK(u8),
}

fn arb_q() -> impl Strategy<Value = Q> {
    prop_oneof![
        Just(Q::Scan),
        (0u8..6).prop_map(Q::Point),
        (0u8..4).prop_map(Q::Join),
        (1u8..5).prop_map(Q::TopK),
    ]
}

fn sql_of(q: &Q) -> String {
    match q {
        Q::Scan => "SELECT * FROM sc".to_owned(),
        Q::Point(c) => format!("SELECT Student FROM sc WHERE Course = 'c{c}'"),
        Q::Join(p) => format!("SELECT Student FROM sc JOIN cp WHERE Prof = 'p{p}'"),
        Q::TopK(n) => format!("SELECT * FROM sc ORDER BY Student LIMIT {n}"),
    }
}

/// The `N` of the first `(actual rows=N …)` on the line containing
/// `needle`, or a panic naming what is missing.
fn actual_rows(text: &str, needle: &str) -> u64 {
    text.lines()
        .find(|l| l.contains(needle))
        .and_then(|l| l.split("actual rows=").nth(1))
        .and_then(|r| r.split_whitespace().next())
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("no `{needle}` actuals in:\n{text}"))
}

/// The root operator line of the `physical:` section.
fn root_rows(text: &str) -> u64 {
    let line = text
        .lines()
        .skip_while(|l| !l.starts_with("physical:"))
        .nth(1)
        .unwrap_or_else(|| panic!("no physical section in:\n{text}"));
    actual_rows(line, "")
}

fn seed(engine: &Engine, rows: &[(u8, u8)]) {
    let mut script = String::from(
        "CREATE TABLE sc (Student, Course) NEST ORDER (Student, Course);
         CREATE TABLE cp (Course, Prof);",
    );
    for (s, c) in rows {
        script.push_str(&format!("INSERT INTO sc VALUES ('s{s}', 'c{c}');"));
    }
    for c in 0..4u8 {
        script.push_str(&format!("INSERT INTO cp VALUES ('c{c}', 'p{}');", c % 3));
    }
    engine.session().run_script(&script).unwrap();
}

fn check(engine: &Engine, q: &Q) {
    let sql = sql_of(q);
    let mut session = engine.session();

    // Independent oracle: drain the statement's own cursor.
    let mut stmt = session.prepare(&sql).unwrap();
    let expected = stmt.query(&session, nf2::query::NO_PARAMS).unwrap().count() as u64;

    // One whole-snapshot pair per table around the ANALYZE run only.
    let before_sc = engine.table("sc").unwrap().stats();
    let before_cp = engine.table("cp").unwrap().stats();
    let out = session.run(&format!("EXPLAIN ANALYZE {sql}")).unwrap();
    let after_sc = engine.table("sc").unwrap().stats();
    let after_cp = engine.table("cp").unwrap().stats();
    let Output::Message(text) = out else {
        panic!("unexpected {out:?}")
    };

    if text.contains("empty result") {
        // Statically empty: the predicate value was never interned, so
        // nothing ran — the oracle must agree nothing matches.
        prop_assert_eq!(expected, 0, "{}", text);
        return;
    }

    let summary: u64 = text
        .lines()
        .find(|l| l.starts_with("analyze: "))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("no analyze summary in:\n{text}"));
    prop_assert_eq!(summary, expected, "drain vs ANALYZE on {}:\n{}", sql, text);
    if !matches!(q, Q::TopK(_)) {
        // No order operator above the root: the root's actuals are the
        // result. (Top-k pulls more than it keeps, by design.)
        prop_assert_eq!(root_rows(&text), expected, "{}", text);
    }

    // Scan actuals == the storage layer's own probe accounting.
    prop_assert_eq!(
        actual_rows(&text, "scan[sc"),
        after_sc.units_probed - before_sc.units_probed,
        "sc probes on {}:\n{}",
        sql,
        text
    );
    if matches!(q, Q::Join(_)) {
        prop_assert_eq!(
            actual_rows(&text, "scan[cp"),
            after_cp.units_probed - before_cp.units_probed,
            "cp probes on {}:\n{}",
            sql,
            text
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// ANALYZE actuals are exact — sharded and unsharded — for random
    /// workloads across the query-shape family.
    #[test]
    fn analyze_actuals_match_drain_and_probe_deltas(
        rows in proptest::collection::vec((0u8..6, 0u8..4), 1..30),
        q in arb_q(),
    ) {
        for shards in [1usize, 4] {
            let engine = Engine::builder().shards(shards).build().unwrap();
            seed(&engine, &rows);
            check(&engine, &q);
        }
    }
}
