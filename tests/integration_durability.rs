//! Durability integration: checkpoint, WAL replay, crash simulation and
//! corruption detection across the storage and query layers.

use std::path::PathBuf;

use nf2::core::schema::NestOrder;
use nf2::storage::{NfTable, SharedDictionary};
use nf2::workload;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nf2_it_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn build_table(rows: usize, seed: u64) -> NfTable {
    let w = workload::relationship(rows, 20, 15, 3, seed);
    NfTable::from_flat(
        "facts",
        &w.flat,
        NestOrder::identity(3),
        SharedDictionary::new(),
    )
    .unwrap()
}

#[test]
fn checkpoint_reopen_preserves_canonical_form() {
    let dir = temp_dir("ckpt");
    let t = build_table(300, 5);
    let before = t.relation().clone();
    t.checkpoint(&dir).unwrap();
    let reopened = NfTable::open(&dir, "facts", SharedDictionary::new()).unwrap();
    assert_eq!(reopened.relation(), before.clone());
    assert_eq!(reopened.flat_count(), 300);
}

#[test]
fn wal_replay_after_simulated_crash() {
    let dir = temp_dir("crash");
    let dict = SharedDictionary::new();
    let t = NfTable::create("facts", &["A", "B", "C"], NestOrder::identity(3), dict).unwrap();
    for i in 0..50u32 {
        t.insert_row(&[
            &format!("a{}", i % 7),
            &format!("b{}", i % 5),
            &format!("c{}", i % 3),
        ])
        .unwrap();
    }
    t.checkpoint(&dir).unwrap();

    // Post-checkpoint work that only reaches the WAL ("crash" before the
    // next checkpoint).
    t.insert_row(&["a9", "b9", "c9"]).unwrap();
    t.delete_row(&["a0", "b0", "c0"]).unwrap();
    t.flush_wal(&dir).unwrap();
    let expected = t.relation().clone();
    drop(t); // crash

    // Recovery must replay the WAL over the checkpoint. Dictionary
    // entries for post-checkpoint rows were persisted in neither place —
    // re-intern them in the same order the meta file defines, which the
    // WAL atoms reference. Reopen with a fresh dictionary and verify
    // structure.
    let reopened = NfTable::open(&dir, "facts", SharedDictionary::new());
    // a9/b9/c9 were interned after the checkpointed meta: the WAL rows
    // reference atoms the restored dictionary does not know, but atom
    // identity is what matters for relation equality.
    let reopened = reopened.unwrap();
    assert_eq!(reopened.relation().expand().len(), expected.expand().len());
    assert_eq!(reopened.relation(), expected.clone());
}

#[test]
fn pages_corruption_is_refused_on_open() {
    let dir = temp_dir("corrupt");
    let t = build_table(100, 6);
    t.checkpoint(&dir).unwrap();
    let pages = dir.join("facts.pages");
    let mut bytes = std::fs::read(&pages).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x55;
    std::fs::write(&pages, &bytes).unwrap();
    assert!(
        NfTable::open(&dir, "facts", SharedDictionary::new()).is_err(),
        "corrupted pages must be detected by checksums"
    );
}

#[test]
fn reopen_then_update_then_reopen_again() {
    let dir = temp_dir("cycle");
    let t = build_table(120, 8);
    t.checkpoint(&dir).unwrap();

    let t2 = NfTable::open(&dir, "facts", SharedDictionary::new()).unwrap();
    // Mutate the reopened table and checkpoint again.
    t2.insert_row(&["zz", "zz", "zz"]).unwrap();
    t2.checkpoint(&dir).unwrap();
    let t3 = NfTable::open(&dir, "facts", SharedDictionary::new()).unwrap();
    assert_eq!(t3.relation(), t2.relation());
    assert_eq!(t3.flat_count(), 121);
    // The new value must resolve by name after reopen.
    let zz = t3.dict().lookup("zz").expect("dictionary persisted");
    assert!(t3
        .relation()
        .tuples()
        .iter()
        .any(|tp| tp.component(0).contains(zz)));
}

#[test]
fn lookup_probe_accounting_survives_reopen() {
    let dir = temp_dir("probes");
    let t = build_table(200, 9);
    t.checkpoint(&dir).unwrap();
    let reopened = NfTable::open(&dir, "facts", SharedDictionary::new()).unwrap();
    let some_atom = reopened.relation().tuples()[0]
        .component(0)
        .iter()
        .next()
        .unwrap();
    let hits = reopened.lookup_scan(0, some_atom);
    assert!(!hits.is_empty());
    let stats = reopened.stats();
    assert_eq!(stats.lookups, 1);
    assert_eq!(stats.units_probed, reopened.tuple_count() as u64);
}
