//! Streaming-cursor guarantees at scale.
//!
//! The acceptance bar for the cursor API: a full-table SELECT over a
//! 10⁵-row table must yield its **first** tuple without materializing
//! the result. The probe is the storage layer's scan accounting —
//! [`NfTable`] charges one `units_probed` per tuple a scan actually
//! yields, so "pulled one tuple, paid one probe" is directly observable
//! in [`TableStats`], while an eagerly-materializing evaluator would
//! charge the whole relation before the first tuple surfaced.

use nf2::core::schema::NestOrder;
use nf2::core::tuple::FlatTuple;
use nf2::core::value::Atom;
use nf2::query::Engine;
use nf2::storage::NfTable;

/// 10⁵ flat rows in 1 000 NF² tuples: group `g` pairs `A = g` with its
/// own window of 100 `B`-values, so canonicalization folds each group
/// into one rectangle.
fn big_engine() -> Engine {
    let engine = Engine::new();
    let rows: Vec<FlatTuple> = (0u32..1_000)
        .flat_map(|g| (0u32..100).map(move |i| vec![Atom(g), Atom(1_000_000 + g * 100 + i)]))
        .collect();
    assert_eq!(rows.len(), 100_000);
    let table = NfTable::bulk_load_atoms(
        "big",
        &["A", "B"],
        rows,
        NestOrder::identity(2),
        engine.dict().clone(),
    )
    .unwrap();
    engine.attach_table(table).unwrap();
    assert_eq!(engine.table("big").unwrap().flat_count(), 100_000);
    assert_eq!(engine.table("big").unwrap().tuple_count(), 1_000);
    engine
}

#[test]
fn first_tuple_of_full_table_select_costs_one_probe() {
    let engine = big_engine();
    let session = engine.session();
    let before = session.engine().table("big").unwrap().stats();

    let mut cursor = session.query("SELECT * FROM big").unwrap();
    let first = cursor.next().expect("non-empty table");
    assert!(first.is_zero_copy(), "full scans yield zero-copy views");
    assert_eq!(first.expansion_count(), 100, "one group's rectangle");
    drop(cursor); // settle the scan's probe counter

    let after = session.engine().table("big").unwrap().stats();
    let probed = after.units_probed - before.units_probed;
    assert_eq!(
        probed, 1,
        "first tuple must cost one probe, not a materialized result \
         (an eager evaluator would probe all 1000 tuples)"
    );

    // Draining a fresh cursor pays for exactly the full relation.
    let drained = session.query("SELECT * FROM big").unwrap().count();
    assert_eq!(drained, 1_000);
    let full = session.engine().table("big").unwrap().stats();
    assert_eq!(full.units_probed - after.units_probed, 1_000);
}

#[test]
fn flat_rows_adapter_is_lazy_too() {
    let engine = big_engine();
    let session = engine.session();
    let before = session.engine().table("big").unwrap().stats();
    let rows: Vec<FlatTuple> = session
        .query("SELECT * FROM big")
        .unwrap()
        .flat_rows()
        .take(150)
        .collect();
    assert_eq!(rows.len(), 150);
    let after = session.engine().table("big").unwrap().stats();
    assert!(
        after.units_probed - before.units_probed <= 3,
        "150 flat rows span two rectangles; the scan must not run ahead \
         (probed {})",
        after.units_probed - before.units_probed
    );
}

#[test]
fn limit_terminates_the_pipeline_early() {
    let engine = big_engine();
    let mut session = engine.session();

    // LIMIT 3 over a 1000-tuple table: the pull pipeline must stop
    // asking the scan for tuples once the limit is satisfied, so the
    // probe counter — charged per tuple actually yielded — stays at 3.
    let before = session.engine().table("big").unwrap().stats();
    let tuples: Vec<_> = session
        .query("SELECT * FROM big LIMIT 3")
        .unwrap()
        .collect();
    assert_eq!(tuples.len(), 3);
    let after = session.engine().table("big").unwrap().stats();
    assert_eq!(
        after.units_probed - before.units_probed,
        3,
        "LIMIT 3 must pull exactly 3 tuples off the scan, not the whole \
         relation"
    );

    // The one-shot run() path applies the same limit.
    match session.run("SELECT * FROM big LIMIT 5").unwrap() {
        nf2::query::Output::Relation { relation, .. } => {
            assert_eq!(relation.tuple_count(), 5);
        }
        other => panic!("unexpected {other:?}"),
    }
    let ran = session.engine().table("big").unwrap().stats();
    assert_eq!(ran.units_probed - after.units_probed, 5);

    // Aggregates are never truncated by LIMIT: COUNT(*) is one logical
    // value, and its answer must not depend on the physical tuple
    // layout (unsharded and sharded engines must agree).
    match session.run("SELECT COUNT(*) FROM big LIMIT 1").unwrap() {
        nf2::query::Output::Count(n) => assert_eq!(n, 100_000),
        other => panic!("unexpected {other:?}"),
    }

    // Prepared statements carry the limit in the cached plan.
    let mut stmt = session
        .prepare("SELECT * FROM big WHERE A = 'missing-value' LIMIT 2")
        .unwrap();
    let miss = stmt.query(&session, nf2::query::NO_PARAMS).unwrap();
    assert_eq!(miss.count(), 0, "limit does not resurrect empty results");

    // LIMIT 0 yields nothing and probes nothing.
    let base = session.engine().table("big").unwrap().stats();
    assert_eq!(
        session.query("SELECT * FROM big LIMIT 0").unwrap().count(),
        0
    );
    let zero = session.engine().table("big").unwrap().stats();
    assert_eq!(zero.units_probed - base.units_probed, 0);
}

#[test]
fn limit_zero_probes_nothing_on_every_plan_shape_and_path() {
    // Regression: blocking stages (projection's input, a join's build
    // side) used to materialize at pipeline-construction time, so a
    // `take(0)` still paid the full scan on those plans. Construction is
    // now lazy end to end: 0 rows AND 0 probes, on every plan shape,
    // through every execution path.
    let engine = big_engine();
    {
        let mut session = engine.session();
        session.run("CREATE TABLE side (A, C)").unwrap();
        session
            .run("INSERT INTO side VALUES ('x1','y1'), ('x2','y2'), ('x1','y3')")
            .unwrap();
    }

    let probes = |engine: &Engine, table: &str| engine.table(table).unwrap().stats().units_probed;

    for sql in [
        // Scan-only plan.
        "SELECT * FROM big LIMIT 0",
        // Projection plan (blocking duplicate elimination).
        "SELECT A FROM big LIMIT 0",
        // Join plan (blocking build side on both tables).
        "SELECT * FROM big JOIN side LIMIT 0",
        // Selection + projection.
        "SELECT B FROM big WHERE A = 'never-interned' LIMIT 0",
        // Top-k with k = 0 (ORDER BY + LIMIT 0).
        "SELECT * FROM big ORDER BY A LIMIT 0",
        "SELECT A, C FROM side ORDER BY C DESC LIMIT 0",
    ] {
        // Cursor path.
        let (big0, side0) = (probes(&engine, "big"), probes(&engine, "side"));
        {
            let session = engine.session();
            let cursor = session.query(sql).unwrap();
            assert_eq!(cursor.count(), 0, "{sql}");
        }
        assert_eq!(probes(&engine, "big"), big0, "cursor probes: {sql}");
        assert_eq!(probes(&engine, "side"), side0, "cursor probes: {sql}");

        // One-shot run() path.
        {
            let mut session = engine.session();
            match session.run(sql).unwrap() {
                nf2::query::Output::Relation { relation, .. } => {
                    assert!(relation.is_empty(), "{sql}")
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(probes(&engine, "big"), big0, "run probes: {sql}");
        assert_eq!(probes(&engine, "side"), side0, "run probes: {sql}");

        // Prepared path.
        {
            let mut session = engine.session();
            let mut stmt = session.prepare(sql).unwrap();
            match stmt.execute(&mut session, nf2::query::NO_PARAMS).unwrap() {
                nf2::query::Output::Relation { relation, .. } => {
                    assert!(relation.is_empty(), "{sql}")
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(probes(&engine, "big"), big0, "prepared probes: {sql}");
        assert_eq!(probes(&engine, "side"), side0, "prepared probes: {sql}");
    }

    // An early-dropped cursor (never pulled) probes nothing either,
    // even without any LIMIT — same laziness, different consumer.
    let big0 = probes(&engine, "big");
    {
        let session = engine.session();
        let cursor = session.query("SELECT A FROM big").unwrap();
        drop(cursor);
    }
    assert_eq!(probes(&engine, "big"), big0, "dropped cursor probes");
}

#[test]
fn selective_cursor_streams_matches_and_counts() {
    let engine = big_engine();
    // Intern the predicate literal: bulk-loaded atoms are raw ids, so
    // give A=7 a name the dictionary can resolve.
    assert_eq!(engine.dict().intern("g7"), Atom(0), "fresh dictionary");
    // Atom(0)'s name is "g7" but group 7 uses Atom(7); instead query by
    // an interned alias row inserted through the DML.
    let mut session = engine.session();
    session.run("CREATE TABLE alias (A, B)").unwrap();
    session
        .run("INSERT INTO alias VALUES ('g7','w1'), ('g7','w2'), ('g8','w1')")
        .unwrap();
    let cursor = session.query("SELECT * FROM alias WHERE A = 'g7'").unwrap();
    let flat: Vec<FlatTuple> = cursor.flat_rows().collect();
    assert_eq!(flat.len(), 2);
    let n = session
        .query("SELECT COUNT(*) FROM alias WHERE A = 'g7'")
        .unwrap()
        .flat_count();
    assert_eq!(n, 2);
}
