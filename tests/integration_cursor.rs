//! Streaming-cursor guarantees at scale.
//!
//! The acceptance bar for the cursor API: a full-table SELECT over a
//! 10⁵-row table must yield its **first** tuple without materializing
//! the result. The probe is the storage layer's scan accounting —
//! [`NfTable`] charges one `units_probed` per tuple a scan actually
//! yields, so "pulled one tuple, paid one probe" is directly observable
//! in [`TableStats`], while an eagerly-materializing evaluator would
//! charge the whole relation before the first tuple surfaced.

use nf2::core::schema::NestOrder;
use nf2::core::tuple::FlatTuple;
use nf2::core::value::Atom;
use nf2::query::Engine;
use nf2::storage::NfTable;

/// 10⁵ flat rows in 1 000 NF² tuples: group `g` pairs `A = g` with its
/// own window of 100 `B`-values, so canonicalization folds each group
/// into one rectangle.
fn big_engine() -> Engine {
    let mut engine = Engine::new();
    let rows: Vec<FlatTuple> = (0u32..1_000)
        .flat_map(|g| (0u32..100).map(move |i| vec![Atom(g), Atom(1_000_000 + g * 100 + i)]))
        .collect();
    assert_eq!(rows.len(), 100_000);
    let table = NfTable::bulk_load_atoms(
        "big",
        &["A", "B"],
        rows,
        NestOrder::identity(2),
        engine.dict().clone(),
    )
    .unwrap();
    engine.attach_table(table).unwrap();
    assert_eq!(engine.table("big").unwrap().flat_count(), 100_000);
    assert_eq!(engine.table("big").unwrap().tuple_count(), 1_000);
    engine
}

#[test]
fn first_tuple_of_full_table_select_costs_one_probe() {
    let mut engine = big_engine();
    let session = engine.session();
    let before = session.engine().table("big").unwrap().stats();

    let mut cursor = session.query("SELECT * FROM big").unwrap();
    let first = cursor.next().expect("non-empty table");
    assert!(first.is_borrowed(), "full scans yield zero-copy views");
    assert_eq!(first.expansion_count(), 100, "one group's rectangle");
    drop(cursor); // settle the scan's probe counter

    let after = session.engine().table("big").unwrap().stats();
    let probed = after.units_probed - before.units_probed;
    assert_eq!(
        probed, 1,
        "first tuple must cost one probe, not a materialized result \
         (an eager evaluator would probe all 1000 tuples)"
    );

    // Draining a fresh cursor pays for exactly the full relation.
    let drained = session.query("SELECT * FROM big").unwrap().count();
    assert_eq!(drained, 1_000);
    let full = session.engine().table("big").unwrap().stats();
    assert_eq!(full.units_probed - after.units_probed, 1_000);
}

#[test]
fn flat_rows_adapter_is_lazy_too() {
    let mut engine = big_engine();
    let session = engine.session();
    let before = session.engine().table("big").unwrap().stats();
    let rows: Vec<FlatTuple> = session
        .query("SELECT * FROM big")
        .unwrap()
        .flat_rows()
        .take(150)
        .collect();
    assert_eq!(rows.len(), 150);
    let after = session.engine().table("big").unwrap().stats();
    assert!(
        after.units_probed - before.units_probed <= 3,
        "150 flat rows span two rectangles; the scan must not run ahead \
         (probed {})",
        after.units_probed - before.units_probed
    );
}

#[test]
fn selective_cursor_streams_matches_and_counts() {
    let mut engine = big_engine();
    // Intern the predicate literal: bulk-loaded atoms are raw ids, so
    // give A=7 a name the dictionary can resolve.
    assert_eq!(engine.dict().intern("g7"), Atom(0), "fresh dictionary");
    // Atom(0)'s name is "g7" but group 7 uses Atom(7); instead query by
    // an interned alias row inserted through the DML.
    let mut session = engine.session();
    session.run("CREATE TABLE alias (A, B)").unwrap();
    session
        .run("INSERT INTO alias VALUES ('g7','w1'), ('g7','w2'), ('g8','w1')")
        .unwrap();
    let cursor = session.query("SELECT * FROM alias WHERE A = 'g7'").unwrap();
    let flat: Vec<FlatTuple> = cursor.flat_rows().collect();
    assert_eq!(flat.len(), 2);
    let n = session
        .query("SELECT COUNT(*) FROM alias WHERE A = 'g7'")
        .unwrap()
        .flat_count();
    assert_eq!(n, 2);
}
