//! Golden plan snapshots: every query in `tests/plans/*.sql` is run
//! through `EXPLAIN VERIFY OPTIMIZED` against a fixed fixture catalog
//! and compared byte-for-byte against its `.snap` neighbor — logical
//! plan, applied rewrite rules, cost estimates, compiled physical
//! pipeline (with shard prune lists), and the static checker's verdict
//! all pinned in one artifact.
//!
//! The fixture engine pins `shards(4)` explicitly, so snapshots are
//! identical under any `NF2_SHARDS` test-matrix leg.
//!
//! To regenerate after an intentional planner change:
//!
//! ```text
//! NF2_REGEN_PLANS=1 cargo test --test plan_snapshots
//! ```

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use nf2_query::engine::Engine;
use nf2_query::exec::Output;

fn fixture_engine() -> Engine {
    // Explicit shard count: golden files must not depend on NF2_SHARDS.
    let engine = Engine::builder().shards(4).build().unwrap();
    engine
        .session()
        .run_script(
            "CREATE TABLE sc (Student, Course);
             INSERT INTO sc VALUES ('s1','c1'), ('s2','c1'), ('s1','c2'),
                                   ('s3','c3'), ('s2','c4');
             CREATE TABLE cp (Course, Prof);
             INSERT INTO cp VALUES ('c1','p1'), ('c2','p2'), ('c3','p1'),
                                   ('c4','p3');",
        )
        .unwrap();
    engine
}

fn plans_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/plans")
}

fn regen() -> bool {
    std::env::var("NF2_REGEN_PLANS").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn snapshot_for(engine: &mut Engine, query: &str) -> String {
    // A fixture that is itself an EXPLAIN statement runs verbatim — the
    // ANALYZE golden pins its own flag set (flags parse in any order);
    // bare SELECTs get the standard EXPLAIN VERIFY OPTIMIZED wrapper.
    let statement = if query
        .get(..7)
        .is_some_and(|p| p.eq_ignore_ascii_case("explain"))
    {
        query.to_owned()
    } else {
        format!("EXPLAIN VERIFY OPTIMIZED {query}")
    };
    let output = engine
        .session()
        .run(&statement)
        .unwrap_or_else(|e| panic!("{statement}: {e}"));
    let Output::Message(text) = output else {
        panic!("{statement}: expected a plan message");
    };
    let mut snap = String::new();
    writeln!(snap, "-- {query}").unwrap();
    writeln!(snap, "{}", normalize_times(&text)).unwrap();
    snap
}

/// Blanks wall-clock readings so ANALYZE snapshots stay byte-stable
/// while their row counts keep asserting: the token after every
/// `time=` and the duration closing the `analyze: … out in <dur>`
/// summary. Manual scanning — the harness takes no regex dependency.
fn normalize_times(text: &str) -> String {
    let mut lines = Vec::new();
    for line in text.lines() {
        let line = match (line.starts_with("analyze:"), line.find(" out in ")) {
            (true, Some(p)) => format!("{}<T>", &line[..p + " out in ".len()]),
            _ => line.to_owned(),
        };
        let mut out = String::with_capacity(line.len());
        let mut rest = line.as_str();
        while let Some(pos) = rest.find("time=") {
            let after = pos + "time=".len();
            out.push_str(&rest[..after]);
            out.push_str("<T>");
            let tail = &rest[after..];
            let end = tail.find([' ', ')']).unwrap_or(tail.len());
            rest = &tail[end..];
        }
        out.push_str(rest);
        lines.push(out);
    }
    lines.join("\n")
}

#[test]
fn golden_plans_match() {
    let dir = plans_dir();
    let mut engine = fixture_engine();
    let mut sql_files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "sql"))
        .collect();
    sql_files.sort();
    assert!(
        sql_files.len() >= 7,
        "expected the full plan-shape fixture set in {}",
        dir.display()
    );

    let mut mismatches = Vec::new();
    for sql_path in &sql_files {
        let query = std::fs::read_to_string(sql_path).unwrap();
        let query = query.trim();
        let snap_path = sql_path.with_extension("snap");
        let actual = snapshot_for(&mut engine, query);

        // Every golden plan must carry a passing checker verdict —
        // a FAILED snapshot must never be committed, even deliberately.
        assert!(
            actual.contains("verify: ok"),
            "{}: checker rejected the plan:\n{actual}",
            sql_path.display()
        );

        if regen() {
            std::fs::write(&snap_path, &actual).unwrap();
            continue;
        }
        let expected = std::fs::read_to_string(&snap_path).unwrap_or_else(|_| {
            panic!(
                "{} is missing — run `NF2_REGEN_PLANS=1 cargo test --test plan_snapshots`",
                snap_path.display()
            )
        });
        if actual != expected {
            mismatches.push(format!(
                "== {} ==\n--- expected ---\n{expected}\n--- actual ---\n{actual}",
                sql_path.display()
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "{} plan snapshot(s) changed — if intentional, regenerate with \
         `NF2_REGEN_PLANS=1 cargo test --test plan_snapshots`:\n{}",
        mismatches.len(),
        mismatches.join("\n")
    );
}

/// The snapshot corpus stays honest: each golden file must mention the
/// physical pipeline section and the verdict the harness asserts on.
#[test]
fn golden_files_contain_physical_and_verdict_sections() {
    if regen() {
        return; // files may be mid-rewrite in regen mode
    }
    for entry in std::fs::read_dir(plans_dir()).unwrap().flatten() {
        let path = entry.path();
        if path.extension().is_none_or(|e| e != "snap") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("physical:"), "{}", path.display());
        assert!(text.contains("verify: ok"), "{}", path.display());
    }
}
