//! Offline, API-compatible subset of the `rand` crate (0.8 interface).
//!
//! Provides exactly what the workspace's deterministic workload
//! generators use: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] methods `gen`,
//! `gen_range`, and `gen_bool`. The generator is xoshiro256++ seeded
//! through SplitMix64 — high-quality, fast, and fully deterministic per
//! seed (the only property the workspace relies on; the exact stream
//! differs from upstream `StdRng`, which upstream never guarantees
//! across versions anyway).

/// A random-number generator: the subset of `rand::Rng` in use.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a uniform value of type `T` (bool, ints, or `f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range` (`Range` or `RangeInclusive`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        let u: f64 = self.gen();
        u < p
    }
}

/// Types samplable uniformly over their full (or canonical) domain.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits, as upstream does.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled uniformly (subset of `rand::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased uniform integer in `[0, bound)` via Lemire-style rejection.
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample an empty range");
    // Rejection zone keeps the modulo unbiased.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64) - (lo as u64) + 1;
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, usize);

impl SampleRange<u64> for std::ops::Range<u64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + uniform_below(rng, self.end - self.start)
    }
}

/// RNGs constructible from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard xoshiro seeding procedure.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be effectively uncorrelated");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: usize = rng.gen_range(0..=4);
            assert!(w <= 4);
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all values of a small range appear"
        );
    }

    #[test]
    fn f64_in_unit_interval_and_bool_balanced() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut trues = 0;
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            if rng.gen_bool(0.5) {
                trues += 1;
            }
        }
        assert!(
            (300..700).contains(&trues),
            "gen_bool(0.5) grossly biased: {trues}"
        );
    }
}
