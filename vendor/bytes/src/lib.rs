//! Offline, API-compatible subset of the `bytes` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the tiny slice of `bytes` it actually uses: a
//! growable byte buffer ([`BytesMut`]) plus the [`Buf`]/[`BufMut`]
//! cursor traits with big-endian integer accessors. Semantics match
//! upstream `bytes` 1.x for the covered surface (including panics on
//! under-full reads) so the real crate can be swapped back in without
//! source changes.

use std::ops::{Deref, DerefMut};

/// A growable, contiguous buffer of bytes (subset of `bytes::BytesMut`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self { inner: Vec::new() }
    }

    /// Creates an empty buffer with at least `capacity` bytes reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            inner: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes currently in the buffer.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Clears the buffer, keeping the allocation.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Shortens the buffer to `len` bytes (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        self.inner.truncate(len);
    }

    /// Resizes the buffer to `new_len`, filling with `value` on growth.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.inner.resize(new_len, value);
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional);
    }

    /// Appends a byte slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.inner.extend_from_slice(extend);
    }

    /// Consumes the buffer, returning the underlying vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        Self { inner: v }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> Self {
        Self { inner: s.to_vec() }
    }
}

/// Read cursor over a byte source (subset of `bytes::Buf`).
///
/// Integer accessors read **big-endian**, matching upstream.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;

    /// Current readable byte slice.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor past `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// True when nothing remains.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies `dst.len()` bytes into `dst`, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        let n = dst.len();
        dst.copy_from_slice(&self.chunk()[..n]);
        self.advance(n);
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "cannot advance past end of buffer");
        *self = &self[cnt..];
    }
}

/// Write cursor over a byte sink (subset of `bytes::BufMut`).
///
/// Integer writers emit **big-endian**, matching upstream.
pub trait BufMut {
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Writes one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Writes a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_integers_big_endian() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u16(0x1234);
        buf.put_u32(0xdead_beef);
        buf.put_u64(0x0102_0304_0506_0708);
        assert_eq!(buf.len(), 1 + 2 + 4 + 8);
        assert_eq!(&buf[1..3], &[0x12, 0x34]);

        let mut r: &[u8] = &buf;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xdead_beef);
        assert_eq!(r.get_u64(), 0x0102_0304_0506_0708);
        assert!(r.is_empty());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1u8];
        let _ = r.get_u32();
    }

    #[test]
    fn slice_advance_and_chunk() {
        let mut r: &[u8] = &[1, 2, 3, 4];
        r.advance(1);
        assert_eq!(r.chunk(), &[2, 3, 4]);
        assert_eq!(r.remaining(), 3);
        let mut dst = [0u8; 2];
        r.copy_to_slice(&mut dst);
        assert_eq!(dst, [2, 3]);
        assert!(r.has_remaining());
    }
}
