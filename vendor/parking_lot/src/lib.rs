//! Offline, API-compatible subset of the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning
//! interface (`lock()`/`read()`/`write()` return guards directly, no
//! `Result`). A poisoned std lock — a thread panicked while holding it —
//! propagates as a panic here, which matches how the workspace uses
//! locks (panics in tests are already fatal to the run).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutual-exclusion lock (subset of `parking_lot::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Attempts to acquire the lock without blocking; `None` if held.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// Non-poisoning reader-writer lock (subset of `parking_lot::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock guarding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_shared_counter() {
        let m = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 400);
    }

    #[test]
    fn try_lock_fails_only_while_held() {
        let m = Mutex::new(1u32);
        {
            let _g = m.lock();
            assert!(m.try_lock().is_none());
        }
        assert_eq!(*m.try_lock().expect("mutex currently free"), 1);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(5u32);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
