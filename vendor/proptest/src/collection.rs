//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Size specifications accepted by collection strategies: an exact
/// `usize`, a half-open `Range<usize>`, or a `RangeInclusive<usize>`.
pub trait SizeBounds {
    /// Inclusive `(min, max)` element counts.
    fn bounds(&self) -> (usize, usize);
}

impl SizeBounds for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl SizeBounds for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl SizeBounds for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "empty size range");
        (*self.start(), *self.end())
    }
}

/// Strategy for `Vec<S::Value>` with a random length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl SizeBounds) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    VecStrategy { element, min, max }
}

/// See [`vec`](fn@vec).
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.size_in(self.min, self.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>` with a cardinality in `size`
/// (best-effort: generation retries until the target count of distinct
/// elements is reached, and panics if the element domain cannot even
/// supply the minimum).
pub fn btree_set<S>(element: S, size: impl SizeBounds) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    let (min, max) = size.bounds();
    BTreeSetStrategy { element, min, max }
}

/// See [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = rng.size_in(self.min, self.max);
        let mut set = BTreeSet::new();
        // Generous cap: covers coupon-collector behavior on domains
        // whose size equals the target.
        let max_attempts = 100 * target + 100;
        let mut attempts = 0;
        while set.len() < target && attempts < max_attempts {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        assert!(
            set.len() >= self.min,
            "btree_set strategy could not reach minimum size {} (domain too small?)",
            self.min
        );
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_exact_and_ranged_sizes() {
        let mut rng = TestRng::from_seed(1);
        assert_eq!(vec(0u32..10, 4usize).generate(&mut rng).len(), 4);
        for _ in 0..50 {
            let v = vec(0u32..10, 1..5).generate(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    #[test]
    fn btree_set_reaches_target_on_tight_domain() {
        let mut rng = TestRng::from_seed(2);
        // Domain of exactly 4 values, sizes 1..=4 — must always succeed.
        for _ in 0..100 {
            let s = btree_set(0usize..4, 1..=4).generate(&mut rng);
            assert!((1..=4).contains(&s.len()));
        }
    }

    #[test]
    fn nested_collections_compose() {
        let mut rng = TestRng::from_seed(3);
        let s = vec(vec(0u32..4, 3usize), 0..6);
        for _ in 0..20 {
            let rows = s.generate(&mut rng);
            assert!(rows.len() < 6);
            assert!(rows.iter().all(|r| r.len() == 3));
        }
    }
}
