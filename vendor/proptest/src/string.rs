//! String strategies from simple regex patterns.
//!
//! `&'static str` implements [`Strategy`], generating strings matching a
//! small regex subset: literal characters, `.`, character classes like
//! `[a-z0-9_ ]`, the escapes `\d` `\w` `\s`, and the quantifiers
//! `{m,n}` `{m,}` `{m}` `*` `+` `?`. Unsupported syntax panics at
//! generation time with a clear message — extend here as tests need it.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Open-ended quantifiers (`*`, `+`, `{m,}`) cap at this many repeats.
const UNBOUNDED_CAP: usize = 8;

#[derive(Debug, Clone)]
enum Element {
    /// Inclusive character ranges; single chars are `(c, c)`.
    Class(Vec<(char, char)>),
}

#[derive(Debug, Clone)]
struct Piece {
    element: Element,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let element = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"))
                    + i;
                let inner = &chars[i + 1..close];
                assert!(
                    !inner.is_empty() && inner[0] != '^',
                    "unsupported character class in pattern {pattern:?}"
                );
                let mut ranges = Vec::new();
                let mut j = 0;
                while j < inner.len() {
                    if j + 2 < inner.len() && inner[j + 1] == '-' {
                        ranges.push((inner[j], inner[j + 2]));
                        j += 3;
                    } else {
                        ranges.push((inner[j], inner[j]));
                        j += 1;
                    }
                }
                i = close + 1;
                Element::Class(ranges)
            }
            '\\' => {
                let c = *chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                i += 2;
                match c {
                    'd' => Element::Class(vec![('0', '9')]),
                    'w' => Element::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                    's' => Element::Class(vec![(' ', ' '), ('\t', '\t')]),
                    other => Element::Class(vec![(other, other)]),
                }
            }
            '.' => {
                i += 1;
                Element::Class(vec![(' ', '~')]) // printable ASCII
            }
            c if "(){}*+?|^$".contains(c) => {
                panic!("unsupported regex syntax {c:?} in pattern {pattern:?}")
            }
            c => {
                i += 1;
                Element::Class(vec![(c, c)])
            }
        };
        // Optional quantifier.
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unterminated quantifier in pattern {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, "")) => {
                        let m: usize = m.trim().parse().expect("quantifier bound");
                        (m, m + UNBOUNDED_CAP)
                    }
                    Some((m, n)) => (
                        m.trim().parse().expect("quantifier bound"),
                        n.trim().parse().expect("quantifier bound"),
                    ),
                    None => {
                        let n: usize = body.trim().parse().expect("quantifier bound");
                        (n, n)
                    }
                }
            }
            Some('*') => {
                i += 1;
                (0, UNBOUNDED_CAP)
            }
            Some('+') => {
                i += 1;
                (1, UNBOUNDED_CAP)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            _ => (1, 1),
        };
        pieces.push(Piece { element, min, max });
    }
    pieces
}

fn generate_char(ranges: &[(char, char)], rng: &mut TestRng) -> char {
    let total: u64 = ranges
        .iter()
        .map(|&(lo, hi)| hi as u64 - lo as u64 + 1)
        .sum();
    let mut pick = rng.below(total);
    for &(lo, hi) in ranges {
        let span = hi as u64 - lo as u64 + 1;
        if pick < span {
            return char::from_u32(lo as u32 + pick as u32).expect("valid char range");
        }
        pick -= span;
    }
    unreachable!("pick always lands inside a range")
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let pieces = parse_pattern(self);
        let mut out = String::new();
        for piece in &pieces {
            let count = rng.size_in(piece.min, piece.max);
            let Element::Class(ranges) = &piece.element;
            for _ in 0..count {
                out.push(generate_char(ranges, rng));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_space_and_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..100 {
            let s = "[a-z ]{0,20}".generate(&mut rng);
            assert!(s.len() <= 20);
            assert!(s.chars().all(|c| c == ' ' || c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn literals_and_escapes() {
        let mut rng = TestRng::from_seed(2);
        let s = "ab\\d{3}".generate(&mut rng);
        assert!(s.starts_with("ab"));
        assert_eq!(s.len(), 5);
        assert!(s[2..].chars().all(|c| c.is_ascii_digit()));
    }

    #[test]
    fn quantifiers() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..50 {
            let s = "x?y+".generate(&mut rng);
            let ys = s.chars().filter(|&c| c == 'y').count();
            assert!((1..=UNBOUNDED_CAP).contains(&ys));
            assert!(s.chars().filter(|&c| c == 'x').count() <= 1);
        }
    }

    #[test]
    fn open_ended_quantifier_explores_past_minimum() {
        let mut rng = TestRng::from_seed(5);
        let mut max_len = 0;
        for _ in 0..200 {
            let s = "[ab]{10,}".generate(&mut rng);
            assert!(s.len() >= 10);
            max_len = max_len.max(s.len());
        }
        assert!(max_len > 10, "{{m,}} never generated more than m repeats");
    }

    #[test]
    #[should_panic(expected = "unsupported regex syntax")]
    fn groups_are_rejected() {
        let mut rng = TestRng::from_seed(4);
        let _ = "(ab)+".generate(&mut rng);
    }
}
