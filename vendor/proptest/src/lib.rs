//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of proptest its property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]`),
//! * the [`strategy::Strategy`] trait with `prop_map`, `prop_flat_map`,
//!   `prop_recursive`, and `boxed`,
//! * strategies for integer ranges, tuples, [`strategy::Just`],
//!   `any::<T>()`, simple regex string patterns, and
//!   [`collection::vec`] / [`collection::btree_set`],
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//!   `prop_assume!` / `prop_oneof!`.
//!
//! Differences from upstream, by design:
//!
//! * **no shrinking** — a failing case panics with the assertion message
//!   (which, in this workspace, always embeds the offending inputs);
//! * **deterministic by default** — every test function derives its RNG
//!   seed from its own fully-qualified name, so runs are reproducible
//!   without recording seed files. Set `PROPTEST_RNG_SEED` to explore a
//!   different universe, and `PROPTEST_CASES` to scale case counts
//!   (both honored exactly like upstream's config knobs).

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    //! One-stop import for property tests, mirroring `proptest::prelude`.
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines deterministic property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0u32..100, b in 0u32..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ [$crate::test_runner::ProptestConfig::default()] $($rest)* }
    };
}

/// Internal: expands each `fn name(bindings) { body }` item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ([$cfg:expr]) => {};
    ([$cfg:expr]
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let cases = config.resolved_cases();
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for _case in 0..cases {
                // One case = one closure call, so `prop_assume!` can skip
                // the case with an early return.
                #[allow(clippy::redundant_closure_call)]
                (|rng: &mut $crate::test_runner::TestRng| {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), rng);)*
                    $body
                })(&mut rng);
            }
        }
        $crate::__proptest_tests!{ [$cfg] $($rest)* }
    };
}

/// Asserts a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when its precondition does not hold.
///
/// Only valid at the top level of a `proptest!` body (it returns from
/// the per-case closure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// Picks uniformly among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(u32),
        Node(Box<Tree>, Box<Tree>),
    }

    impl Tree {
        fn depth(&self) -> u32 {
            match self {
                Tree::Leaf(_) => 0,
                Tree::Node(l, r) => 1 + l.depth().max(r.depth()),
            }
        }
    }

    fn arb_tree() -> impl Strategy<Value = Tree> {
        let leaf = (0u32..10).prop_map(Tree::Leaf);
        leaf.prop_recursive(3, 12, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner).prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r))),
                (0u32..10).prop_map(Tree::Leaf),
            ]
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u32..17, b in 0usize..=4, c in any::<u8>()) {
            prop_assert!((3..17).contains(&a));
            prop_assert!(b <= 4);
            let _ = c;
        }

        #[test]
        fn vec_and_btree_set_respect_sizes(
            v in crate::collection::vec(0u32..100, 2..6),
            s in crate::collection::btree_set(0u32..1000, 1..8),
            exact in crate::collection::vec(0u32..4, 3),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!((1..8).contains(&s.len()));
            prop_assert_eq!(exact.len(), 3);
        }

        #[test]
        fn assume_skips_cases(a in 0u32..10, b in 0u32..10) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn flat_map_links_sizes(pair in (1usize..5).prop_flat_map(|n| {
            crate::collection::vec(0u32..10, n).prop_map(move |v| (n, v))
        })) {
            prop_assert_eq!(pair.0, pair.1.len());
        }

        #[test]
        fn recursive_trees_are_bounded(t in arb_tree()) {
            // depth levels applied ≤ 3 times; each level adds ≤ 1 depth.
            prop_assert!(t.depth() <= 3, "tree too deep: {:?}", t);
        }

        #[test]
        fn string_patterns_match_class(s in "[a-c ]{0,20}") {
            prop_assert!(s.len() <= 20);
            prop_assert!(s.chars().all(|c| c == ' ' || ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let gen_once = || {
            let mut rng = TestRng::for_test("determinism_probe");
            crate::collection::vec(0u32..1000, 10).generate(&mut rng)
        };
        assert_eq!(gen_once(), gen_once());
    }

    #[test]
    fn oneof_hits_every_arm() {
        let s = prop_oneof![Just(0u8), Just(1u8), Just(2u8)];
        let mut rng = TestRng::for_test("oneof_probe");
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }
}
