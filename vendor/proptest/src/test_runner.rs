//! Test configuration and the deterministic RNG behind every strategy.

/// Per-test configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }

    /// The case count actually used: the `PROPTEST_CASES` environment
    /// variable overrides the compiled-in value, exactly like upstream.
    pub fn resolved_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v
                .trim()
                .parse()
                .unwrap_or_else(|_| panic!("PROPTEST_CASES must be an integer, got {v:?}")),
            Err(_) => self.cases,
        }
    }
}

/// Deterministic xoshiro256++ generator driving all strategies.
///
/// Each test derives its seed from its fully-qualified name (FNV-1a)
/// mixed with `PROPTEST_RNG_SEED` (default 0), so runs are reproducible
/// by default and still explorable by varying that variable.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// RNG for the named test, honoring `PROPTEST_RNG_SEED`.
    pub fn for_test(name: &str) -> Self {
        let base: u64 = std::env::var("PROPTEST_RNG_SEED")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0);
        Self::from_seed(fnv1a(name.as_bytes()) ^ base)
    }

    /// RNG from an explicit seed (SplitMix64 state expansion).
    pub fn from_seed(seed: u64) -> Self {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Unbiased uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample an empty range");
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Uniform usize in `[lo, hi]` (inclusive).
    pub fn size_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "empty size range {lo}..={hi}");
        lo + self.below((hi - lo + 1) as u64) as usize
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_differ_by_test_name() {
        let a = TestRng::for_test("a").next_u64();
        let b = TestRng::for_test("b").next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = TestRng::from_seed(3);
        let mut seen = [false; 7];
        for _ in 0..300 {
            seen[rng.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn config_default_is_256() {
        assert_eq!(ProptestConfig::default().cases, 256);
        assert_eq!(ProptestConfig::with_cases(7).cases, 7);
    }
}
