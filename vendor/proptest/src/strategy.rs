//! The [`Strategy`] trait and core combinators.
//!
//! A strategy here is simply a deterministic-RNG-driven generator; there
//! is no shrink tree (see the crate docs for the rationale).

use std::marker::PhantomData;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// out of it (dependent generation).
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { source: self, f }
    }

    /// Builds a recursive strategy: `recurse` receives the strategy for
    /// the inner level and returns the strategy for the outer one, up to
    /// `depth` levels above the leaves. `desired_size` and
    /// `expected_branch_size` are accepted for upstream compatibility
    /// but unused (depth alone bounds generation here).
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
    {
        Recursive {
            base: self.boxed(),
            grow: Rc::new(move |inner| recurse(inner).boxed()),
            depth,
        }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(Rc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    base: BoxedStrategy<T>,
    grow: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    depth: u32,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Self {
            base: self.base.clone(),
            grow: Rc::clone(&self.grow),
            depth: self.depth,
        }
    }
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        // Uniformly pick how many recursion levels this value gets; the
        // grown strategy may still choose leaves at any level.
        let levels = rng.below(self.depth as u64 + 1) as u32;
        let mut strat = self.base.clone();
        for _ in 0..levels {
            strat = (self.grow)(strat);
        }
        strat.generate(rng)
    }
}

/// Uniform choice among same-typed strategies (backs `prop_oneof!`).
#[derive(Debug, Clone)]
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct AnyStrategy<A>(PhantomData<A>);

/// Whole-domain strategy for `A`: `any::<u64>()`, `any::<bool>()`, …
pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
    AnyStrategy(PhantomData)
}

impl<A: Arbitrary> Strategy for AnyStrategy<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32 as i32
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64) - (lo as u64) + 1;
                if span == 0 {
                    return rng.next_u64() as $t; // full u64 domain
                }
                lo + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_tuple_compose() {
        let s = (0u32..5, 10u32..15).prop_map(|(a, b)| a + b);
        let mut rng = TestRng::from_seed(1);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn just_clones() {
        let s = Just(vec![1, 2, 3]);
        let mut rng = TestRng::from_seed(2);
        assert_eq!(s.generate(&mut rng), vec![1, 2, 3]);
    }

    #[test]
    fn union_is_uniformish() {
        let u = Union::new(vec![Just(0u8).boxed(), Just(1u8).boxed()]);
        let mut rng = TestRng::from_seed(3);
        let ones: u32 = (0..1000).map(|_| u.generate(&mut rng) as u32).sum();
        assert!((300..700).contains(&ones), "union heavily biased: {ones}");
    }

    #[test]
    fn boxed_preserves_behavior() {
        let b = (5u32..6).boxed();
        let mut rng = TestRng::from_seed(4);
        assert_eq!(b.generate(&mut rng), 5);
        let c = b.clone();
        assert_eq!(c.generate(&mut rng), 5);
    }
}
