//! Offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the interface its benches use: `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`], `bench_function`,
//! `bench_with_input`, [`Bencher::iter`] / `iter_batched`, and the
//! [`BenchmarkId`] / [`Throughput`] / [`BatchSize`] types.
//!
//! Measurement is deliberately simple: each benchmark warms up once,
//! then doubles its iteration count until it accumulates enough wall
//! time, and prints mean ns/iter. That is enough to compare hot paths
//! across commits; swap the real crate back in for rigorous statistics.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target accumulated time per benchmark before reporting.
const TARGET: Duration = Duration::from_millis(20);

/// Iteration-count ceiling, so trivially fast closures still terminate.
const MAX_ITERS: u64 = 1 << 20;

/// Benchmark driver (subset of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().label, &mut f);
        self
    }
}

/// A named group of benchmarks (subset of `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the simple timer ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the simple timer ignores it.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    // Grow the iteration count until the measurement is long enough to
    // be meaningful, then report the last (longest) batch.
    loop {
        bencher.elapsed = Duration::ZERO;
        f(&mut bencher);
        if bencher.elapsed >= TARGET || bencher.iters >= MAX_ITERS {
            break;
        }
        bencher.iters *= 2;
    }
    let per_iter = bencher.elapsed.as_nanos() / u128::from(bencher.iters.max(1));
    println!(
        "bench: {label:<60} {per_iter:>12} ns/iter (n={})",
        bencher.iters
    );
}

/// Timing harness handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the current iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Benchmark label, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A label of the form `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// A label that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { label: s }
    }
}

/// Declared throughput of a benchmark (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Batch sizing hint for `iter_batched` (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running one or more `criterion_group!`s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_returns() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function(BenchmarkId::from_parameter(3), |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
