//! Offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the interface its benches use: `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`], `bench_function`,
//! `bench_with_input`, [`Bencher::iter`] / `iter_batched`, and the
//! [`BenchmarkId`] / [`Throughput`] / [`BatchSize`] types.
//!
//! Measurement: each benchmark doubles its iteration count until one
//! batch accumulates enough wall time (calibration), then re-times that
//! batch size over a fixed number of samples and prints **min / mean /
//! p95** ns/iter plus the iteration and sample counts. Min bounds the
//! true cost from below, p95 exposes jitter — enough to defend nest-
//! kernel claims across commits; swap the real crate back in for
//! rigorous statistics.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target accumulated time per calibration batch before sampling.
const TARGET: Duration = Duration::from_millis(20);

/// Iteration-count ceiling, so trivially fast closures still terminate.
const MAX_ITERS: u64 = 1 << 20;

/// Timed samples collected at the calibrated iteration count.
const SAMPLES: usize = 12;

/// Summary statistics of one benchmark, in ns/iter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Fastest sample — the best lower bound on the true cost.
    pub min_ns: f64,
    /// Mean over all samples.
    pub mean_ns: f64,
    /// 95th-percentile sample (nearest-rank), exposing jitter.
    pub p95_ns: f64,
    /// Iterations per sample (calibrated by doubling).
    pub iters: u64,
    /// Number of samples taken.
    pub samples: usize,
}

impl Stats {
    /// Computes nearest-rank order statistics over per-sample ns/iter.
    fn from_samples(mut per_iter: Vec<f64>, iters: u64) -> Self {
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        let n = per_iter.len().max(1);
        let mean = per_iter.iter().sum::<f64>() / n as f64;
        let p95_idx = ((n as f64 * 0.95).ceil() as usize).clamp(1, n) - 1;
        Self {
            min_ns: per_iter.first().copied().unwrap_or(0.0),
            mean_ns: mean,
            p95_ns: per_iter.get(p95_idx).copied().unwrap_or(0.0),
            iters,
            samples: n,
        }
    }
}

/// Benchmark driver (subset of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().label, &mut f);
        self
    }
}

/// A named group of benchmarks (subset of `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the simple timer ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the simple timer ignores it.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let stats = measure(f);
    println!(
        "bench: {label:<60} min {:>12.0}  mean {:>12.0}  p95 {:>12.0} ns/iter (iters={}, samples={})",
        stats.min_ns, stats.mean_ns, stats.p95_ns, stats.iters, stats.samples
    );
}

/// Calibrates the iteration count (doubling until one batch reaches
/// [`TARGET`]), then times [`SAMPLES`] batches at that count.
fn measure(f: &mut dyn FnMut(&mut Bencher)) -> Stats {
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    loop {
        bencher.elapsed = Duration::ZERO;
        f(&mut bencher);
        if bencher.elapsed >= TARGET || bencher.iters >= MAX_ITERS {
            break;
        }
        bencher.iters *= 2;
    }
    let iters = bencher.iters.max(1);
    // The calibration batch is sample 0 (it ran at the final count).
    let mut per_iter = Vec::with_capacity(SAMPLES);
    per_iter.push(bencher.elapsed.as_nanos() as f64 / iters as f64);
    for _ in 1..SAMPLES {
        bencher.elapsed = Duration::ZERO;
        f(&mut bencher);
        per_iter.push(bencher.elapsed.as_nanos() as f64 / iters as f64);
    }
    Stats::from_samples(per_iter, iters)
}

/// Timing harness handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the current iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Benchmark label, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A label of the form `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// A label that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { label: s }
    }
}

/// Declared throughput of a benchmark (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Batch sizing hint for `iter_batched` (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running one or more `criterion_group!`s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_returns() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn stats_report_min_mean_p95_and_counts() {
        let stats = Stats::from_samples(vec![30.0, 10.0, 20.0, 40.0], 256);
        assert_eq!(stats.min_ns, 10.0);
        assert_eq!(stats.mean_ns, 25.0);
        assert_eq!(stats.p95_ns, 40.0, "nearest rank on 4 samples is the max");
        assert_eq!(stats.iters, 256);
        assert_eq!(stats.samples, 4);
    }

    #[test]
    fn measure_collects_all_samples() {
        let mut calls = 0u64;
        let stats = measure(&mut |b: &mut Bencher| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert_eq!(stats.samples, SAMPLES);
        assert!(stats.iters >= 1);
        assert!(stats.min_ns <= stats.mean_ns && stats.mean_ns <= stats.p95_ns * 1.0001);
        assert!(calls >= stats.iters * SAMPLES as u64);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function(BenchmarkId::from_parameter(3), |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
