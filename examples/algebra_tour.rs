//! A tour of the NF² algebra: interaction laws and the plan optimizer.
//!
//! Walks the Jaeschke–Schek laws (reference [7]) on live data — where
//! NEST/UNNEST invert each other and where they don't — then lets the
//! rule-based optimizer rewrite a select-over-join plan and verifies the
//! rewrite is tuple-identical.
//!
//! Run with: `cargo run --example algebra_tour`

use std::collections::HashMap;

use nf2::algebra::laws;
use nf2::algebra::optimize::{estimate, optimize, RewriteMode, SchemaCatalog};
use nf2::core::display::render_nf;
use nf2::core::nest::nest;
use nf2::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Example 1 relation — the canonical nest-order witness.
    let rel = laws::example1_counterexample();
    let mut dict = Dictionary::new();
    for v in ["a1", "a2", "a3"] {
        dict.intern(v);
    }
    // Example 1 uses atoms 1..3 and 11..12; re-intern for display.
    println!("Example 1 relation (flat):\n{}", render_nf(&rel, &dict));

    // L1/L2: unnest∘nest collapses to unnest; nest∘unnest to nest.
    assert!(laws::law_unnest_nest(&rel, 0).holds());
    assert!(laws::law_nest_unnest(&rel, 0).holds());
    println!("L1 (μ∘ν = μ) and L2 (ν∘μ = ν) hold on attribute A.");

    // L4: nest orders do NOT commute — Example 1 separates them.
    let ab = nest(&nest(&rel, 1), 0);
    let ba = nest(&nest(&rel, 0), 1);
    assert!(!laws::nests_commute(&rel, 0, 1));
    println!(
        "\nν_A(ν_B): {} tuples, ν_B(ν_A): {} tuples — nest order matters,",
        ab.tuple_count(),
        ba.tuple_count()
    );
    assert_eq!(ab.expand(), ba.expand());
    println!("but both expand to the same R* (realization view, Theorem 1).");

    // L7's structural counterexample: selection before vs after a nest.
    let (r, nest_attr, sel_attr, allow) = laws::select_nest_structural_counterexample();
    let constraint = [(sel_attr, allow)];
    let lhs = nf2::algebra::select_box(&nest(&r, nest_attr), &constraint)?;
    let rhs = nest(&nf2::algebra::select_box(&r, &constraint)?, nest_attr);
    assert_ne!(lhs, rhs);
    assert_eq!(lhs.expand(), rhs.expand());
    println!(
        "\nL7: σ then ν groups tighter than ν then σ ({} vs {} tuples) —\n\
         same R*, different structure. This is exactly why the optimizer\n\
         distinguishes structural from realization-view rewrites.",
        rhs.tuple_count(),
        lhs.tuple_count()
    );

    // The full law battery, as the property tests run it.
    let failures = laws::check_all(&rel);
    assert!(failures.is_empty());
    println!("\nAll universally-quantified laws hold on Example 1: {failures:?}");

    // Optimizer: push a selection below a join, structurally.
    let mut env = Env::new();
    let sc = Schema::new("sc", &["Student", "Course"])?;
    let rows: Vec<Vec<Atom>> = (0..60u32)
        .flat_map(|s| (0..3u32).map(move |c| vec![Atom(s), Atom(1000 + (s + c) % 20)]))
        .collect();
    let sc_flat = FlatRelation::from_rows(sc, rows)?;
    env.insert("sc", canonical_of_flat(&sc_flat, &NestOrder::identity(2)));
    let cp = Schema::new("cp", &["Course", "Prof"])?;
    let cp_flat = FlatRelation::from_rows(
        cp,
        (0..20u32)
            .map(|c| vec![Atom(1000 + c), Atom(2000 + c % 4)])
            .collect::<Vec<_>>(),
    )?;
    env.insert("cp", canonical_of_flat(&cp_flat, &NestOrder::identity(2)));

    let plan = Expr::SelectBox {
        input: Box::new(Expr::Join(
            Box::new(Expr::rel("sc")),
            Box::new(Expr::rel("cp")),
        )),
        constraints: vec![("Prof".into(), vec![Atom(2000)])],
    };
    let catalog = SchemaCatalog::from_env(&env);
    let optimized = optimize(&plan, &catalog, RewriteMode::Structural);
    println!("\noriginal plan:  {plan}");
    println!("optimized plan: {}", optimized.expr);
    for step in &optimized.trace {
        println!("  applied [{}]", step.rule);
    }
    let sizes: HashMap<String, usize> = [("sc".to_string(), 60), ("cp".to_string(), 20)].into();
    println!(
        "estimated work: {:.0} -> {:.0}",
        estimate(&plan, &sizes).total_work,
        estimate(&optimized.expr, &sizes).total_work
    );
    let a = plan.eval(&env)?;
    let b = optimized.expr.eval(&env)?;
    assert_eq!(a, b);
    println!(
        "results are tuple-identical ({} tuples, {} flat rows).",
        a.tuple_count(),
        a.flat_count()
    );
    Ok(())
}
