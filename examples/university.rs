//! The paper's §2 motivating scenario, end to end on the query engine.
//!
//! Recreates Fig. 1's `R1(Student, Course, Club)` and
//! `R2(Student, Course, Semester)`, then performs the update the paper
//! analyses — student s1 stops taking course c1 — and prints the Fig. 2
//! results. `R1` enjoys the MVD `Student →→ Course | Club`, so the edit
//! is local; `R2` has no MVD and the §4 machinery reshapes several
//! tuples.
//!
//! Run with: `cargo run --example university`

use nf2::query::Engine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = Engine::builder().build().unwrap();
    let mut db = engine.session();

    // Fig. 1 R1: every student takes c1, c2, c3; clubs per student.
    db.run("CREATE TABLE r1 (Student, Course, Club) NEST ORDER (Course, Student, Club)")?;
    for student in ["s1", "s2", "s3"] {
        let club = if student == "s2" { "b2" } else { "b1" };
        for course in ["c1", "c2", "c3"] {
            db.run(&format!(
                "INSERT INTO r1 VALUES ('{student}','{course}','{club}')"
            ))?;
        }
    }

    // Fig. 1 R2: courses per semester.
    db.run("CREATE TABLE r2 (Student, Course, Semester) NEST ORDER (Student, Course, Semester)")?;
    for (s, c, t) in [
        ("s1", "c1", "t1"),
        ("s2", "c1", "t1"),
        ("s3", "c1", "t1"),
        ("s1", "c2", "t1"),
        ("s2", "c2", "t1"),
        ("s3", "c2", "t1"),
        ("s1", "c3", "t1"),
        ("s3", "c3", "t1"),
        ("s2", "c3", "t2"),
    ] {
        db.run(&format!("INSERT INTO r2 VALUES ('{s}','{c}','{t}')"))?;
    }

    println!("=== Fig. 1 (before the update) ===\n");
    println!("{}", db.run("SHOW r1")?.to_text());
    println!("{}", db.run("SHOW r2")?.to_text());

    // The update: student s1 stops taking course c1.
    println!("=== Update: DELETE ... WHERE Student='s1' AND Course='c1' ===\n");
    let out = db.run("DELETE FROM r1 WHERE Student = 's1' AND Course = 'c1'")?;
    println!("r1: {}", out.to_text());
    let out = db.run("DELETE FROM r2 WHERE Student = 's1' AND Course = 'c1'")?;
    println!("r2: {}\n", out.to_text());

    println!("=== Fig. 2 (after the update) ===\n");
    println!("{}", db.run("SHOW r1")?.to_text());
    println!("{}", db.run("SHOW r2")?.to_text());

    // R1's edit stayed local because of the MVD; inspect the structure.
    println!("=== Why R1 was easy: Student ->-> Course | Club ===\n");
    println!("Courses of s1 after the update:");
    println!(
        "{}",
        db.run("SELECT Course FROM r1 WHERE Student = 's1'")?
            .to_text()
    );

    // The maintenance cost the §4 algorithms paid, straight from the
    // storage engine.
    for name in ["r1", "r2"] {
        let cost = db.engine().table(name)?.maintenance_cost();
        println!(
            "{name}: lifetime maintenance cost = {} compositions, {} decompositions",
            cost.compositions, cost.decompositions
        );
    }
    Ok(())
}
