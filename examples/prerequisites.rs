//! §2's compound-value distinction, end to end.
//!
//! The paper opens with two kinds of "compoundness":
//!
//! * `SC(Student, Course)` — a set of courses per student is just
//!   shorthand for several rows: `(a, {c1, c2})` *means* `(a,c1), (a,c2)`.
//!   This is the NFR case; nest/unnest moves between the views freely.
//! * `CP(Course, Prerequisite)` — a prerequisite *set* `{c1, c2}` is one
//!   indivisible value ("c1 and c2 together satisfy the requirement");
//!   `(c0, {c1,c2})` and `(c0, {c1,c3})` are *alternative* requirements
//!   and must not be merged or split.
//!
//! We model the second kind by interning each set as an atom — and then
//! show that the NFR machinery still applies one level up: courses with
//! the same alternatives nest together.
//!
//! Run with: `cargo run --example prerequisites`

use nf2::core::display::render_nf;
use nf2::prelude::*;
use nf2::workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The paper's own instance: c0 requires (c1 and c2) OR (c1 and c3).
    let mut dict = Dictionary::new();
    let schema = Schema::new("CP", &["Course", "Prerequisite"])?;
    let c0 = dict.intern("c0");
    let set_a = dict.intern("{c1,c2}"); // one atom: the conjunction c1∧c2
    let set_b = dict.intern("{c1,c3}");
    let cp = FlatRelation::from_rows(schema, vec![vec![c0, set_a], vec![c0, set_b]])?;
    println!("CP with set-valued prerequisites (each set is ONE atom):");
    println!("{}", render_nf(&NfRelation::from_flat(&cp), &dict));
    println!(
        "Two rows for c0 = two ALTERNATIVE requirements. Splitting {{c1,c2}} into\n\
         rows would wrongly claim c1 alone suffices — the paper's point about\n\
         power-set domains.\n"
    );

    // 2. Nesting still applies one level up: alternative sets that several
    //    courses share group together.
    let nested = canonical_of_flat(&cp, &NestOrder::new(vec![1, 0], 2)?);
    println!("ν over Prerequisite (alternatives grouped per course):");
    println!("{}", render_nf(&nested, &dict));
    assert_eq!(nested.expand(), cp, "Theorem 1 survives interned sets");

    // 3. At scale: the generator builds a whole curriculum this way.
    let (w, sets) = workload::prerequisites(40, 3, 3, 7);
    println!(
        "Generated curriculum: {} (course, requirement-set) facts over {} distinct sets",
        w.flat.len(),
        sets.len()
    );
    let nested = canonical_of_flat(&w.flat, &NestOrder::new(vec![1, 0], 2)?);
    println!(
        "Canonical NFR: {} tuples (compression {:.2}x), still {} flat facts",
        nested.tuple_count(),
        w.flat.len() as f64 / nested.tuple_count() as f64,
        nested.flat_count()
    );

    // 4. Decode a few interned sets to show nothing was lost.
    let sample = w.flat.rows().take(3);
    println!("\nSample decoded requirements:");
    for row in sample {
        let course = row[0].id();
        let set = &sets[(row[1].id() - 1_000_000) as usize];
        let names: Vec<String> = set.iter().map(|c| format!("c{c}")).collect();
        println!("  c{course} requires all of {{{}}}", names.join(", "));
    }
    Ok(())
}
