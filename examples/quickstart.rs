//! Quickstart: the NF² model in five minutes.
//!
//! Builds the paper's student/course relation, nests it into canonical
//! form, updates it incrementally, and shows that nothing is ever lost
//! (Theorem 1).
//!
//! Run with: `cargo run --example quickstart`

use nf2::core::display::render_nf;
use nf2::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A 1NF relation: students taking courses.
    let mut dict = Dictionary::new();
    let schema = Schema::new("SC", &["Student", "Course"])?;
    let pairs = [
        ("s1", "c1"),
        ("s2", "c1"),
        ("s3", "c1"),
        ("s1", "c2"),
        ("s2", "c2"),
        ("s3", "c2"),
        ("s1", "c3"),
    ];
    let flat = FlatRelation::from_rows(
        schema.clone(),
        pairs
            .iter()
            .map(|(s, c)| vec![dict.intern(s), dict.intern(c)]),
    )?;
    println!("1NF relation: {} rows", flat.len());

    // 2. Canonical form ν_P (Def. 5): nest Student first, Course last.
    let order = NestOrder::identity(2);
    let nfr = canonical_of_flat(&flat, &order);
    println!("\nCanonical NFR ({} tuples):", nfr.tuple_count());
    println!("{}", render_nf(&nfr, &dict));

    // 3. Theorem 1: the expansion recovers the 1NF relation exactly.
    assert_eq!(nfr.expand(), flat);
    println!("Theorem 1 holds: expansion == original 1NF relation\n");

    // 4. Incremental updates (§4): insertion and deletion operate on the
    //    NFR directly and keep it canonical.
    let mut canon = CanonicalRelation::from_flat(&flat, order)?;
    let s4 = dict.intern("s4");
    let c1 = dict.lookup("c1").expect("interned above");
    let mut cost = CostCounter::new();
    canon.insert_counted(vec![s4, c1], &mut cost)?;
    println!(
        "Inserted (s4, c1) with {} compositions / {} decompositions:",
        cost.compositions, cost.decompositions
    );
    println!("{}", render_nf(canon.relation(), &dict));

    let s1 = dict.lookup("s1").expect("interned above");
    let c3 = dict.lookup("c3").expect("interned above");
    canon.delete(&[s1, c3])?;
    println!("Deleted (s1, c3):");
    println!("{}", render_nf(canon.relation(), &dict));

    // 5. The maintained form always equals re-nesting from scratch.
    canon.verify()?;
    println!("Canonical invariant verified.");
    Ok(())
}
