//! Durability of the realization view: WAL replay, checkpoints, and
//! corruption detection.
//!
//! §2 argues the NFR can be the *physical* representation. That claim
//! obliges the storage engine to survive crashes: this example
//! checkpoints an [`NfTable`], keeps updating, "crashes" before the next
//! checkpoint, and recovers the exact canonical relation from checkpoint
//! pages + write-ahead log. It then flips one bit on disk and shows the
//! checksummed page format refuses to load silently-corrupt data.
//!
//! Run with: `cargo run --example crash_recovery`

use nf2::prelude::*;
use nf2::storage::{BufferPool, PagedFile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("nf2_crash_recovery_example");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir)?;

    // 1. Build a table and checkpoint it.
    let dict = SharedDictionary::new();
    let table = NfTable::create(
        "sc",
        &["Student", "Course", "Club"],
        NestOrder::identity(3),
        dict,
    )?;
    for (s, c, b) in [
        ("s1", "c1", "b1"),
        ("s1", "c2", "b1"),
        ("s2", "c1", "b2"),
        ("s2", "c2", "b2"),
        ("s3", "c3", "b1"),
    ] {
        table.insert_row(&[s, c, b])?;
    }
    table.checkpoint(&dir)?;
    println!(
        "checkpointed: {} flat rows in {} NF² tuples",
        table.flat_count(),
        table.tuple_count()
    );

    // 2. More updates, logged to the WAL but not checkpointed.
    table.insert_row(&["s4", "c1", "b1"])?;
    table.delete_row(&["s3", "c3", "b1"])?;
    table.flush_wal(&dir)?;
    println!(
        "post-checkpoint updates in WAL only: now {} rows / {} tuples",
        table.flat_count(),
        table.tuple_count()
    );

    // 3. "Crash": drop the in-memory table; reopen from disk.
    let expected = table.relation().clone();
    drop(table);
    let recovered = NfTable::open(&dir, "sc", SharedDictionary::new())?;
    assert_eq!(recovered.relation(), expected.clone());
    println!(
        "recovered after crash: {} rows / {} tuples — checkpoint + WAL replay \
         reproduced the canonical relation exactly",
        recovered.flat_count(),
        recovered.tuple_count()
    );

    // 4. Corruption: flip one bit in the checkpoint pages. The FNV-1a
    //    page checksum must catch it.
    let pages = dir.join("sc.pages");
    let mut bytes = std::fs::read(&pages)?;
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&pages, &bytes)?;
    match NfTable::open(&dir, "sc", SharedDictionary::new()) {
        Err(e) => println!("bit-flip detected as expected: {e}"),
        Ok(_) => panic!("corrupt checkpoint must not load"),
    }

    // 5. Bounded-memory access: the same page file behind a 2-frame
    //    buffer pool with clock eviction.
    let pool_path = dir.join("pool.pages");
    let mut file = PagedFile::create(&pool_path)?;
    for _ in 0..6 {
        file.allocate()?;
    }
    let mut pool = BufferPool::new(file, 2);
    for round in 0..3 {
        for id in 0..6u32 {
            let page = pool.fetch_mut(id)?;
            page.insert(format!("r{round}-p{id}").as_bytes())?;
        }
    }
    pool.flush_all()?;
    let stats = pool.stats();
    println!(
        "buffer pool (2 frames over 6 pages): {} hits, {} misses, {} evictions, {} write-backs",
        stats.hits, stats.misses, stats.evictions, stats.write_backs
    );
    assert!(stats.evictions > 0, "a 2-frame pool must evict");

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
