//! §2's two kinds of "compoundness": splittable sets vs power-set values.
//!
//! The paper contrasts `SC[Student, Course]` — where `(a, {c1, c2})`
//! just abbreviates two flat tuples and may be split freely — with
//! `CP[Course, Prerequisite]`, where `{c1, c2}` is one *alternative
//! prerequisite condition* defined on the power set of Course and must
//! NOT be split: `(c0, {c1,c2})` and `(c0, {c1,c3})` are different
//! conditions. This example models both faithfully and joins them with
//! the NF² algebra.
//!
//! Run with: `cargo run --example curriculum`

use nf2::algebra::{natural_join, select_box};
use nf2::core::display::render_nf;
use nf2::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut dict = Dictionary::new();

    // --- SC: splittable set semantics (the paper's first pattern). ---
    let sc_schema = Schema::new("SC", &["Student", "Course"])?;
    let sc_flat = FlatRelation::from_rows(
        sc_schema,
        [
            ("a", "c0"),
            ("b", "c0"),
            ("a", "c4"),
            ("b", "c4"),
            ("d", "c4"),
        ]
        .iter()
        .map(|(s, c)| vec![dict.intern(s), dict.intern(c)]),
    )?;
    let sc = canonical_of_flat(&sc_flat, &NestOrder::identity(2));
    println!("SC — set-valued field is just an abbreviation (splittable):");
    println!("{}", render_nf(&sc, &dict));

    // --- CP: power-set domain (the paper's second pattern). ---
    // Each alternative prerequisite condition is one atomic value of a
    // compound domain: we intern the whole set "{c1,c2}" as a single
    // atom, exactly because Def. 2 must not apply inside it.
    let cp_schema = Schema::new("CP", &["Course", "Condition"])?;
    let cp_flat = FlatRelation::from_rows(
        cp_schema,
        [("c0", "{c1,c2}"), ("c0", "{c1,c3}"), ("c4", "{c0}")]
            .iter()
            .map(|(c, p)| vec![dict.intern(c), dict.intern(p)]),
    )?;
    let cp = canonical_of_flat(&cp_flat, &NestOrder::identity(2));
    println!("CP — alternative prerequisite conditions (power-set values, atomic):");
    println!("{}", render_nf(&cp, &dict));
    println!(
        "Note: c0 legitimately nests to [Course(c0) Condition({{c1,c2}}, {{c1,c3}})] — the\n\
         *conditions* collapse as alternatives, but no condition is ever split apart.\n"
    );

    // --- Algebra: which students face which prerequisite conditions? ---
    let joined = natural_join(&sc, &cp)?;
    println!("SC ⋈ CP on Course:");
    println!("{}", render_nf(&joined, &dict));

    // Selection stays on the rectangle level (no expansion).
    let c0 = dict.lookup("c0").expect("interned above");
    let only_c0 = select_box(&joined, &[(1, ValueSet::singleton(c0))])?;
    println!("σ Course=c0 (rectangle-level selection):");
    println!("{}", render_nf(&only_c0, &dict));

    // Sanity: flat semantics agree with the 1NF join.
    let expected = 2 /* a,b × c0 */ * 2 /* two conditions */ + 3 /* a,b,d × c4 */;
    assert_eq!(joined.expand().len(), expected);
    println!("Join cardinality matches 1NF semantics: {expected} rows.");
    Ok(())
}
