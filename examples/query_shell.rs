//! An interactive shell for the NF² data-manipulation language.
//!
//! Run with: `cargo run --example query_shell`
//! Pipe a script: `cargo run --example query_shell < setup.sql`
//!
//! Statements: CREATE TABLE / DROP TABLE / INSERT / DELETE / UPDATE /
//! SELECT (multi-way JOIN, IN lists, COUNT aggregates, ORDER BY
//! [ASC|DESC], LIMIT) / NEST / UNNEST / SHOW [FLAT] / TABLES / STATS /
//! BEGIN / COMMIT / ROLLBACK / EXPLAIN [OPTIMIZED] [VERIFY] [ANALYZE].
//! End each with `;` or a newline.
//!
//! Shell commands: `\timing` toggles per-statement wall time,
//! `\metrics` dumps the engine's metrics snapshot (statement latency
//! histograms + per-table counters).

use std::io::{BufRead, Write};

use nf2::obs::{format_nanos, Stopwatch};
use nf2::query::Engine;

fn main() {
    let engine = Engine::builder().build().unwrap();
    let mut db = engine.session();
    // Seed a demo table so SHOW works immediately.
    db.run_script(
        "CREATE TABLE sc (Student, Course, Club) NEST ORDER (Course, Student, Club);
         INSERT INTO sc VALUES
           ('s1','c1','b1'), ('s1','c2','b1'), ('s1','c3','b1'),
           ('s2','c1','b2'), ('s2','c2','b2'), ('s2','c3','b2'),
           ('s3','c1','b1'), ('s3','c2','b1'), ('s3','c3','b1');",
    )
    .expect("demo seed script is valid");

    let interactive = is_tty();
    if interactive {
        println!("nf2 query shell — seeded with table `sc` (Fig. 1 R1). Try:");
        println!("  SHOW sc;");
        println!("  SELECT Course FROM sc WHERE Student = 's1';");
        println!("  SELECT Student, Course FROM sc ORDER BY Course DESC LIMIT 2;");
        println!("  DELETE FROM sc WHERE Student = 's1' AND Course = 'c1';");
        println!("  SELECT COUNT(DISTINCT Student) FROM sc;");
        println!("  BEGIN; DELETE FROM sc; ROLLBACK;");
        println!("  EXPLAIN OPTIMIZED SELECT Club FROM sc WHERE Student IN ('s1','s2');");
        println!("  EXPLAIN ANALYZE SELECT Student, Course FROM sc ORDER BY Course LIMIT 2;");
        println!("  \\timing   \\metrics");
        println!("  TABLES;   SHOW FLAT sc;   STATS sc;   (Ctrl-D to quit)\n");
    }

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    let mut timing = false;
    loop {
        if interactive {
            print!("nf2> ");
            std::io::stdout().flush().ok();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        buffer.push_str(&line);
        // Execute once the statement terminates (`;`) or on a bare line.
        if buffer.trim_end().ends_with(';') || !line.contains(';') {
            let script = buffer.trim().to_owned();
            buffer.clear();
            if script.is_empty() {
                continue;
            }
            // Backslash commands are shell-local, never sent to the engine.
            match script.trim_end_matches(';').trim() {
                "\\timing" => {
                    timing = !timing;
                    println!("Timing is {}.", if timing { "on" } else { "off" });
                    continue;
                }
                "\\metrics" => {
                    println!("{}", engine.metrics().to_text());
                    continue;
                }
                _ => {}
            }
            let sw = Stopwatch::start();
            match db.run_script(&script) {
                Ok(outputs) => {
                    for out in outputs {
                        println!("{}", out.to_text());
                    }
                }
                Err(e) => eprintln!("error: {e}"),
            }
            if timing {
                println!("Time: {}", format_nanos(sw.elapsed_nanos()));
            }
        }
    }
}

/// Best-effort TTY detection without extra dependencies: honours the
/// common CI/pipe cases by checking whether stdin is the terminal device.
fn is_tty() -> bool {
    #[cfg(unix)]
    {
        use std::os::unix::io::AsRawFd;
        // SAFETY: isatty is a pure query on a file descriptor we own.
        unsafe { libc_isatty(std::io::stdin().as_raw_fd()) }
    }
    #[cfg(not(unix))]
    {
        false
    }
}

#[cfg(unix)]
unsafe fn libc_isatty(fd: i32) -> bool {
    // Minimal FFI shim to avoid pulling in the libc crate.
    extern "C" {
        fn isatty(fd: i32) -> i32;
    }
    isatty(fd) == 1
}
