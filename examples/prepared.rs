//! Prepared statements and streaming cursors — the serving-path API.
//!
//! A REPL-style tour of the three-stage surface: build an [`Engine`],
//! open a [`Session`], `prepare` parameterized statements once, then
//! execute them many times with bound `?` parameters — including a hot
//! loop that shows why the serving tier never re-parses, and a cursor
//! pass that consumes a result tuple-by-tuple without materializing it.
//!
//! Run with: `cargo run --release --example prepared`

use std::time::Instant;

use nf2::query::{Engine, Output, Param};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The engine owns tables + dictionary; the builder configures
    //    persistence (none here: purely in-memory).
    let engine = Engine::builder().build().unwrap();
    let mut session = engine.session();
    session.run_script(
        "CREATE TABLE sc (Student, Course) NEST ORDER (Student, Course);
         CREATE TABLE cp (Course, Prof);
         INSERT INTO cp VALUES ('c1','p1'), ('c2','p2'), ('c3','p1');",
    )?;

    // 2. Prepared DML: one INSERT template, many bindings.
    let mut insert = session.prepare("INSERT INTO sc VALUES (?, ?)")?;
    for (s, c) in [
        ("s1", "c1"),
        ("s1", "c2"),
        ("s2", "c1"),
        ("s3", "c3"),
        ("s3", "c1"),
    ] {
        insert.execute(&mut session, &[s, c])?;
    }
    println!(
        "loaded {} rows into sc\n",
        session.engine().table("sc")?.flat_count()
    );

    // 3. A prepared query, REPL-style: the statement is compiled once,
    //    each "input" only binds the parameter.
    let mut courses_of = session.prepare("SELECT Course FROM sc WHERE Student = ?")?;
    for student in ["s1", "s2", "s3", "ghost"] {
        println!("nf2> SELECT Course FROM sc WHERE Student = '{student}'");
        match courses_of.execute(&mut session, &[student])? {
            Output::Relation { relation, rendered } if !relation.is_empty() => {
                println!("{rendered}")
            }
            _ => println!("(empty)\n"),
        }
    }

    // 4. The cached plan is observable — and stable across executions.
    let mut profs_of = session.prepare("SELECT Prof FROM sc JOIN cp WHERE Student = ?")?;
    let plan_text = profs_of.explain(&session)?;
    println!("cached plan for {:?}:\n{plan_text}\n", profs_of.sql());

    // 5. Streaming: a cursor yields NF² tuples as the scan reaches them;
    //    `flat_rows()` adapts to 1NF rows. Nothing is materialized or
    //    rendered unless asked.
    let cursor = profs_of.query(&session, &[Param::from("s1")])?;
    println!("s1's profs, streamed flat:");
    for row in cursor.flat_rows() {
        println!("  {row:?} (atom ids)");
    }

    // 6. The hot loop: parse-per-call vs the prepared handle.
    let students: Vec<String> = (1..=3).map(|i| format!("s{i}")).collect();
    let iters = 2_000;
    let start = Instant::now();
    for i in 0..iters {
        let s = &students[i % students.len()];
        session.run(&format!(
            "SELECT COUNT(*) FROM sc JOIN cp WHERE Student = '{s}'"
        ))?;
    }
    let parse_per_call = start.elapsed();
    let mut counted = session.prepare("SELECT COUNT(*) FROM sc JOIN cp WHERE Student = ?")?;
    let start = Instant::now();
    for i in 0..iters {
        let s = &students[i % students.len()];
        counted.execute(&mut session, &[s.as_str()])?;
    }
    let prepared = start.elapsed();
    println!(
        "\n{iters} point lookups: parse-per-call {:?}, prepared {:?} ({:.1}x)",
        parse_per_call,
        prepared,
        parse_per_call.as_secs_f64() / prepared.as_secs_f64().max(1e-12)
    );

    // 7. DDL invalidates cached plans transparently: the handle replans.
    session.run("CREATE TABLE audit (Who, What)")?;
    counted.execute(&mut session, &["s1"])?;
    println!("plan survived DDL via transparent re-plan (epoch check)");
    Ok(())
}
