//! Batch updates: when does §4 incremental maintenance stop paying?
//!
//! The paper proves per-operation cost independent of `|R*|`
//! (Theorem A-4), which makes the incremental path unbeatable for small
//! batches. But a batch that rewrites most of the relation amortises one
//! re-nest better than thousands of recons cascades. This example runs
//! the crossover live, shows the shipped `should_rebuild` heuristic
//! picking sides, and rounds off with `STATS` from the query layer.
//!
//! Run with: `cargo run --release --example batch_updates`

use std::time::Instant;

use nf2::core::bulk::{apply_batch, rebuild_batch, should_rebuild};
use nf2::core::maintenance::{CanonicalRelation, CostCounter};
use nf2::prelude::*;
use nf2::workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = workload::university(150, 3, 30, 2, 8, 91);
    let base_rows = w.flat.len();
    let base = CanonicalRelation::from_flat(&w.flat, NestOrder::identity(3))?;
    println!(
        "base relation: {} flat rows in {} NF² tuples\n",
        base_rows,
        base.tuple_count()
    );
    println!(
        "{:>6} | {:>12} | {:>10} | {:>11} | heuristic",
        "batch", "incremental", "re-nest", "faster"
    );
    println!("{}", "-".repeat(62));

    for pct in [1usize, 5, 20, 50, 100] {
        let ops = workload::op_trace(&w, (base_rows * pct / 100).max(1), 40, pct as u64);

        let mut incremental = base.clone();
        let mut cost = CostCounter::new();
        let start = Instant::now();
        apply_batch(&mut incremental, &ops, &mut cost)?;
        let t_inc = start.elapsed();

        let start = Instant::now();
        let rebuilt = rebuild_batch(&base, &ops)?;
        let t_re = start.elapsed();
        assert_eq!(
            incremental.relation(),
            rebuilt.relation(),
            "strategies agree"
        );

        let faster = if t_inc <= t_re {
            "incremental"
        } else {
            "re-nest"
        };
        let heuristic = if should_rebuild(ops.len(), base.flat_count()) {
            "re-nest"
        } else {
            "incremental"
        };
        println!(
            "{:>5}% | {:>10}µs | {:>8}µs | {:>11} | {}",
            pct,
            t_inc.as_micros(),
            t_re.as_micros(),
            faster,
            heuristic
        );
    }

    // The same trade is visible through the DML: STATS exposes the
    // accumulated §4 costs.
    let engine = nf2::query::Engine::new();
    let mut session = engine.session();
    session.run("CREATE TABLE sc (Student, Course) NEST ORDER (Student, Course)")?;
    let mut insert = session.prepare("INSERT INTO sc VALUES (?, ?)")?;
    for (s, c) in [("s1", "c1"), ("s2", "c1"), ("s1", "c2"), ("s3", "c3")] {
        insert.execute(&mut session, &[s, c])?;
    }
    session.run("DELETE FROM sc WHERE Student = 's3'")?;
    println!("\n{}", session.run("STATS sc")?.to_text());
    Ok(())
}
