//! §3.4 end to end: from data to a dependency-driven canonical design.
//!
//! 1. Generate entity-style data (the MVD is a property of the data);
//! 2. mine the FDs and MVDs it satisfies;
//! 3. synthesise 3NF fragments (the paper assumes these are
//!    "mechanically obtained" via Bernstein);
//! 4. pick the nest order suggested by the dependencies;
//! 5. show the resulting canonical NFR is fixed on the determinant and
//!    compare its size against every other order.
//!
//! Run with: `cargo run --example schema_design`

use nf2::core::nest::canonical_of_flat;
use nf2::core::properties::is_fixed_on;
use nf2::core::schema::NestOrder;
use nf2::deps::{mine_fds, mine_mvds, suggest_nest_order, synthesize_3nf};
use nf2::workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Entity data: students with course sets and club sets (Fig. 1 R1 at
    // scale). The MVD Student ->-> Course | Club holds by construction —
    // but we *discover* it rather than assume it, per §2.
    let w = workload::university(60, 3, 15, 2, 6, 2024);
    println!("workload: {} ({} flat rows)\n", w.label, w.flat.len());

    // Mine dependencies from the instance.
    let fds = mine_fds(&w.flat);
    println!("mined FDs ({}):", fds.len());
    for fd in &fds {
        println!("  {fd}");
    }
    let mvds = mine_mvds(&w.flat, &fds);
    println!("mined MVDs ({}):", mvds.len());
    for mvd in &mvds {
        println!("  {mvd}");
    }

    // 3NF synthesis from the mined FDs (reference [13]).
    let syn = synthesize_3nf(w.flat.schema().arity(), &fds);
    println!(
        "\n3NF synthesis: {} fragment(s), keys {:?}",
        syn.fragments.len(),
        syn.keys.len()
    );
    for frag in &syn.fragments {
        println!(
            "  fragment {} ({})",
            frag.attrs,
            if frag.is_key_fragment {
                "key fragment"
            } else {
                "FD group"
            }
        );
    }

    // Dependency-driven nest order: determinants last (Theorem 5 makes
    // the canonical form fixed on them).
    let suggested = suggest_nest_order(w.flat.schema().arity(), &fds, &mvds);
    println!("\nsuggested nest order (application order): {suggested}");

    println!("\norder -> canonical tuples, fixed on Student?");
    let mut best = (usize::MAX, None::<NestOrder>);
    for order in NestOrder::all(w.flat.schema().arity()) {
        let canon = canonical_of_flat(&w.flat, &order);
        let fixed = is_fixed_on(&canon, &[0]);
        let marker = if order == suggested {
            "  <= suggested"
        } else {
            ""
        };
        println!(
            "  {order}: {} tuples, fixed={fixed}{marker}",
            canon.tuple_count(),
        );
        if canon.tuple_count() < best.0 {
            best = (canon.tuple_count(), Some(order));
        }
    }
    let canon = canonical_of_flat(&w.flat, &suggested);
    assert!(
        is_fixed_on(&canon, &[0]),
        "the suggested order must yield a form fixed on the MVD determinant"
    );
    println!(
        "\nsuggested order: {} tuples ({}x compression), fixed on the determinant — \
         ready for key-style access.",
        canon.tuple_count(),
        w.flat.len() / canon.tuple_count().max(1)
    );
    Ok(())
}
